//! The original clone-per-expansion prover, kept as the semantic reference.
//!
//! This is the implementation the goal-stack prover in the parent module
//! replaced: every rule expansion materializes a fresh `Vec<(Literal, u32)>`
//! with `offset_vars` clones of the rule head and body. It is retained
//! verbatim so that (a) regression tests can assert the optimized prover
//! reports identical `(proved, steps, depth_cuts, aborted)` on the same
//! queries, and (b) benchmarks can pin the speedup against the true
//! pre-refactor baseline rather than a reconstruction.

use super::{ProofLimits, ProofStats};
use crate::builtins::solve_builtin;
use crate::clause::Literal;
use crate::kb::KnowledgeBase;
use crate::subst::Bindings;
use crate::term::VarId;

/// Flow control for the backtracking search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Control {
    More,
    Done,
    Abort,
}

/// The pre-refactor bounded SLD prover (clone-per-expansion).
pub struct Prover<'a> {
    kb: &'a KnowledgeBase,
    limits: ProofLimits,
}

impl<'a> Prover<'a> {
    /// Creates a reference prover for `kb` with the given limits.
    pub fn new(kb: &'a KnowledgeBase, limits: ProofLimits) -> Self {
        Prover { kb, limits }
    }

    /// Proves a single goal, stopping at the first solution.
    pub fn prove_ground(&self, goal: &Literal) -> (bool, ProofStats) {
        self.prove_goals(std::slice::from_ref(goal))
    }

    /// Proves a conjunction, stopping at the first solution.
    pub fn prove_goals(&self, goals: &[Literal]) -> (bool, ProofStats) {
        self.prove_with_bindings(goals, Bindings::new())
    }

    /// Proves a conjunction under pre-established bindings.
    pub fn prove_with_bindings(&self, goals: &[Literal], bindings: Bindings) -> (bool, ProofStats) {
        let mut found = false;
        let stats = self.run(goals, bindings, &mut |_| {
            found = true;
            false // stop at first solution
        });
        (found, stats)
    }

    /// Runs the search, invoking `on_solution` at every solution.
    pub fn run(
        &self,
        goals: &[Literal],
        mut bindings: Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        let mut next_var: VarId = goals
            .iter()
            .filter_map(Literal::max_var)
            .max()
            .map_or(0, |v| v + 1)
            .max(bindings.len() as VarId);
        bindings.ensure(next_var as usize);
        let tagged: Vec<(Literal, u32)> = goals.iter().map(|g| (g.clone(), 0)).collect();
        let mut ctx = Ctx {
            kb: self.kb,
            limits: self.limits,
            stats: ProofStats::default(),
            bindings,
            next_var: &mut next_var,
        };
        ctx.solve(&tagged, on_solution);
        ctx.stats
    }
}

struct Ctx<'a, 'v> {
    kb: &'a KnowledgeBase,
    limits: ProofLimits,
    stats: ProofStats,
    bindings: Bindings,
    next_var: &'v mut VarId,
}

impl Ctx<'_, '_> {
    #[inline]
    fn tick(&mut self) -> bool {
        self.stats.steps += 1;
        if self.stats.steps > self.limits.max_steps {
            self.stats.aborted = true;
            false
        } else {
            true
        }
    }

    /// Solves the goal list; restores `bindings` to its entry state before
    /// returning, so callers' choice points stay clean.
    fn solve(
        &mut self,
        goals: &[(Literal, u32)],
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        let Some(((goal, depth), rest)) = goals.split_first() else {
            return if on_solution(&mut self.bindings) {
                Control::More
            } else {
                Control::Done
            };
        };

        // Builtins: deterministic, at most one continuation.
        if let Some(b) = self.kb.builtins().get(goal.pred) {
            if !self.tick() {
                return Control::Abort;
            }
            let mark = self.bindings.mark();
            let ok = solve_builtin(b, goal, &mut self.bindings, self.kb.symbols());
            let ctrl = if ok == Some(true) {
                self.solve(rest, on_solution)
            } else {
                Control::More
            };
            self.bindings.undo_to(mark);
            return ctrl;
        }

        let kb = self.kb;
        let key = goal.key();

        // Facts, through the first-argument index where possible. The
        // iterator yields row literals — the resident originals under the
        // `row-oracle` feature (every test build), lazily rebuilt from the
        // columnar store otherwise; either way this path unifies rows
        // exactly as the seed implementation did.
        let first = goal.args.first().map(|t| self.bindings.walk(t).clone());
        for fact in kb.candidate_facts(key, first.as_ref()) {
            if !self.tick() {
                return Control::Abort;
            }
            let mark = self.bindings.mark();
            if self.bindings.unify_literals(goal, &fact, false) {
                match self.solve(rest, on_solution) {
                    Control::More => {}
                    c => {
                        self.bindings.undo_to(mark);
                        return c;
                    }
                }
            }
            self.bindings.undo_to(mark);
        }

        // Rules: rename apart, push the body at depth+1.
        for rule in kb.rules_for(key) {
            if *depth + 1 > self.limits.max_depth {
                self.stats.depth_cuts += 1;
                continue;
            }
            if !self.tick() {
                return Control::Abort;
            }
            let offset = *self.next_var;
            *self.next_var += rule.var_span();
            let head = rule.head.offset_vars(offset);
            let mark = self.bindings.mark();
            if self.bindings.unify_literals(goal, &head, false) {
                let mut new_goals: Vec<(Literal, u32)> =
                    Vec::with_capacity(rule.body.len() + rest.len());
                for l in &rule.body {
                    new_goals.push((l.offset_vars(offset), depth + 1));
                }
                new_goals.extend_from_slice(rest);
                match self.solve(&new_goals, on_solution) {
                    Control::More => {}
                    c => {
                        self.bindings.undo_to(mark);
                        return c;
                    }
                }
            }
            self.bindings.undo_to(mark);
        }

        Control::More
    }
}
