//! First-order logic substrate for the `p2mdie` workspace.
//!
//! This crate plays the role YAP Prolog played for the April ILP system in
//! Fonseca et al. (CLUSTER 2005): it provides term representation,
//! unification, θ-subsumption, an indexed clause store, and a depth- and
//! step-bounded SLD resolution engine that *meters its own inference steps*
//! (the fuel used by the cluster substrate's virtual-time model).
//!
//! The engine is deliberately not a full Prolog: ILP coverage testing only
//! requires proving (mostly ground) goals against a largely extensional
//! background knowledge base, with arithmetic builtins and bounded search.
//!
//! # Quick tour
//!
//! ```
//! use p2mdie_logic::{Program, ProofLimits, Prover};
//!
//! let mut prog = Program::new();
//! prog.consult(
//!     "parent(ann, bob).
//!      parent(bob, carl).
//!      grandparent(X, Z) :- parent(X, Y), parent(Y, Z).",
//! )
//! .unwrap();
//!
//! let goal = prog.parse_query("grandparent(ann, carl)").unwrap();
//! let prover = Prover::new(prog.kb(), ProofLimits::default());
//! let (proved, _stats) = prover.prove_ground(&goal);
//! assert!(proved);
//! ```

pub mod arena;
pub mod builtins;
pub mod clause;
pub mod fxhash;
pub mod kb;
pub mod parser;
pub mod program;
pub mod prover;
pub mod snapshot;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod theta;

pub use arena::{TermArena, TermId};
pub use clause::{
    Clause, CompiledClause, CompiledGoals, CompiledGoalsRef, CompiledLiteral, LitKind, Literal,
    PredId,
};
pub use kb::KnowledgeBase;
pub use parser::{ParseError, Parser};
pub use program::Program;
pub use prover::{ProofLimits, ProofStats, Prover};
pub use snapshot::{KbSnapshot, PredSnapshot, SnapshotError};
pub use subst::Bindings;
pub use symbol::{SymbolId, SymbolTable};
pub use term::{Term, VarId, F64};
pub use theta::{subsumes, variants};
