//! Variable bindings with an undo trail, plus unification.
//!
//! The prover backtracks constantly, so bindings are stored in a flat slot
//! vector indexed by [`VarId`], and every binding is recorded on a trail.
//! [`Bindings::mark`]/[`Bindings::undo_to`] give O(1)-amortized backtracking
//! without cloning substitutions — the same trick a WAM uses.
//!
//! Unification is *offset-aware*: both sides carry a variable offset that is
//! applied on the fly, so the prover can unify a goal against a knowledge-
//! base clause without first renaming the clause apart (no `offset_vars`
//! clone per candidate). A term is only materialized (cloned, with its
//! offset baked in) at the moment a variable is bound to it.

use crate::arena::{Probe, TermArena, TermId};
use crate::clause::Literal;
use crate::symbol::SymbolId;
use crate::term::{Term, VarId, F64};

/// A mutable binding store with trail-based undo.
#[derive(Default, Debug)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
    trail: Vec<VarId>,
}

/// A checkpoint returned by [`Bindings::mark`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark(usize);

/// A term walked down to its binding, with variable offsets resolved.
/// Constants are carried by value; compounds stay borrowed unless they came
/// out of a binding slot (then one clone surfaces them).
pub(crate) enum View<'i> {
    /// An unbound variable (absolute id).
    Var(VarId),
    /// An atomic constant.
    Sym(SymbolId),
    /// An integer constant.
    Int(i64),
    /// A float constant.
    Float(F64),
    /// A compound borrowed from the input term; the offset applies to every
    /// variable inside it.
    App(&'i Term, VarId),
    /// A compound cloned out of a binding slot (absolute variable ids).
    OwnedApp(Term),
}

impl Bindings {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with capacity for `n` variables.
    pub fn with_capacity(n: usize) -> Self {
        Bindings {
            slots: vec![None; n],
            trail: Vec::with_capacity(n),
        }
    }

    /// Grows the slot vector so ids `0..n` are addressable.
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// Number of addressable variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot exists yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns a checkpoint; bindings made after it can be undone with
    /// [`Bindings::undo_to`].
    #[inline]
    pub fn mark(&self) -> Mark {
        Mark(self.trail.len())
    }

    /// Undoes every binding made since `mark`.
    pub fn undo_to(&mut self, mark: Mark) {
        while self.trail.len() > mark.0 {
            let v = self.trail.pop().expect("trail length checked");
            self.slots[v as usize] = None;
        }
    }

    /// Binds variable `v` to `t`, recording the binding on the trail.
    /// `v` must be unbound.
    #[inline]
    pub fn bind(&mut self, v: VarId, t: Term) {
        self.ensure(v as usize + 1);
        debug_assert!(self.slots[v as usize].is_none(), "rebinding bound var");
        self.slots[v as usize] = Some(t);
        self.trail.push(v);
    }

    /// The raw binding of `v`, if any (not dereferenced).
    #[inline]
    pub fn lookup(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v as usize).and_then(|s| s.as_ref())
    }

    /// Follows variable-to-variable bindings until hitting an unbound
    /// variable or a non-variable term. Returns the final term (shallow: the
    /// arguments of a compound are *not* resolved).
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        while let Term::Var(v) = cur {
            match self.lookup(*v) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Fully applies the substitution to `t`, producing a new term with
    /// every bound variable replaced (recursively).
    pub fn resolve(&self, t: &Term) -> Term {
        let w = self.walk(t);
        match w {
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| self.resolve(a)).collect()),
            other => other.clone(),
        }
    }

    /// Fully applies the substitution to a literal.
    pub fn resolve_literal(&self, l: &Literal) -> Literal {
        Literal {
            pred: l.pred,
            args: l.args.iter().map(|a| self.resolve(a)).collect(),
        }
    }

    /// True when `t` is ground under the current bindings.
    pub fn is_ground(&self, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(|a| self.is_ground(a)),
            _ => true,
        }
    }

    /// Walks `t` under offset `off` down to a [`View`]: the variable offset
    /// is applied on the fly, and slot-resident terms are surfaced without
    /// cloning except when a slot holds a compound (rare in ILP workloads,
    /// where bound values are almost always constants).
    pub(crate) fn resolve_view<'i>(&self, t: &'i Term, off: VarId) -> View<'i> {
        match t {
            Term::Var(v) => {
                let mut abs = v + off;
                loop {
                    match self.lookup(abs) {
                        None => return View::Var(abs),
                        // Slot terms are stored with absolute variable ids.
                        Some(Term::Var(w)) => abs = *w,
                        Some(Term::Sym(s)) => return View::Sym(*s),
                        Some(Term::Int(i)) => return View::Int(*i),
                        Some(Term::Float(f)) => return View::Float(*f),
                        Some(app @ Term::App(..)) => return View::OwnedApp(app.clone()),
                    }
                }
            }
            Term::Sym(s) => View::Sym(*s),
            Term::Int(i) => View::Int(*i),
            Term::Float(f) => View::Float(*f),
            Term::App(..) => View::App(t, off),
        }
    }

    /// A goal argument as an owned *ground* term, if its top-level walk
    /// lands on one — the key a posting list is probed with (atomic
    /// constants and ground compounds alike; an atomic-only variant would
    /// silently degrade compound-bound goals back to scans). Matches the
    /// reference prover's shallow `walk`: a compound whose own variables are
    /// bound but not substituted in place is not considered ground, so both
    /// provers agree on when the index applies (the step contract).
    pub fn resolved_ground(&self, t: &Term, off: VarId) -> Option<Term> {
        match self.resolve_view(t, off) {
            View::Sym(s) => Some(Term::Sym(s)),
            View::Int(i) => Some(Term::Int(i)),
            View::Float(f) => Some(Term::Float(f)),
            View::App(app, _) if app.is_ground() => Some(app.clone()),
            View::OwnedApp(app) if app.is_ground() => Some(app),
            View::Var(_) | View::App(..) | View::OwnedApp(_) => None,
        }
    }

    /// [`Bindings::resolved_ground`] compressed to its index-probing
    /// essence: the same shallow-walk groundness decision, but returning the
    /// arena's verdict as a [`Probe`] instead of an owned `Term`, so the
    /// atomic-constant cases (the overwhelming majority of bound goal
    /// arguments in ILP workloads) allocate nothing. The equivalence is
    /// load-bearing for the step contract: `probe(t, off, arena)` is
    /// `Probe::Free` exactly when `resolved_ground(t, off)` is `None`, and
    /// `Probe::Id(i)` exactly when it is `Some(g)` with `arena.lookup(&g) ==
    /// Some(i)` (otherwise `Probe::Miss`) — in particular a compound whose
    /// own variables are bound but not substituted in place stays `Free`,
    /// matching the reference prover's shallow `walk`.
    pub fn probe(&self, t: &Term, off: VarId, arena: &TermArena) -> Probe {
        let ground = |t: &Term| arena.lookup(t).map_or(Probe::Miss, Probe::Id);
        match self.resolve_view(t, off) {
            View::Sym(s) => ground(&Term::Sym(s)),
            View::Int(i) => ground(&Term::Int(i)),
            View::Float(f) => ground(&Term::Float(f)),
            View::App(app, _) if app.is_ground() => ground(app),
            View::OwnedApp(ref app) if app.is_ground() => ground(app),
            View::Var(_) | View::App(..) | View::OwnedApp(_) => Probe::Free,
        }
    }

    /// Unifies a goal argument (under offset `aoff`) directly against an
    /// interned *ground* term — the column-native unification step: a fact's
    /// argument is its arena id, and no row `Literal` is materialized.
    ///
    /// The fact side is ground by construction (only ground terms intern),
    /// which licenses an occurs-free fast path: binding a goal variable to a
    /// ground term can never create a cycle, and the constant-vs-constant
    /// cases are single compares against the arena-resident term. Partial
    /// bindings of a failed compound match are NOT undone here — callers
    /// bracket the whole fact attempt with [`Bindings::mark`] /
    /// [`Bindings::undo_to`], exactly as they do for
    /// [`Bindings::unify_literals_off`].
    #[inline]
    pub fn unify_term_id(&mut self, a: &Term, aoff: VarId, tid: TermId, arena: &TermArena) -> bool {
        debug_assert!(!tid.is_none(), "column cell must be interned");
        let ground = arena.term(tid);
        match self.resolve_view(a, aoff) {
            // Ground fast path: no occurs check, no materialize round-trip —
            // the arena term is cloned straight into the slot.
            View::Var(x) => {
                self.bind(x, ground.clone());
                true
            }
            View::Sym(s) => matches!(ground, Term::Sym(g) if *g == s),
            View::Int(i) => matches!(ground, Term::Int(g) if *g == i),
            View::Float(f) => matches!(ground, Term::Float(g) if *g == f),
            View::App(t, off) => self.unify_off(t, off, ground, 0, false),
            View::OwnedApp(t) => self.unify_off(&t, 0, ground, 0, false),
        }
    }

    /// Turns a view into an owned term with absolute variable ids (the value
    /// stored in a slot when a variable is bound to the view).
    fn materialize(view: View<'_>) -> Term {
        match view {
            View::Var(v) => Term::Var(v),
            View::Sym(s) => Term::Sym(s),
            View::Int(i) => Term::Int(i),
            View::Float(f) => Term::Float(f),
            View::App(t, 0) => t.clone(),
            View::App(t, off) => t.offset_vars(off),
            View::OwnedApp(t) => t,
        }
    }

    /// Unifies `a` and `b` under the current bindings, extending them on
    /// success. On failure the bindings are left as they were at entry.
    ///
    /// `occurs_check` guards against cyclic terms; coverage queries in ILP
    /// are against ground facts, so the check is usually disabled for speed.
    pub fn unify(&mut self, a: &Term, b: &Term, occurs_check: bool) -> bool {
        self.unify_pair(a, 0, b, 0, occurs_check)
    }

    /// Offset-aware [`Bindings::unify`]: shifts `a`'s variables by `aoff`
    /// and `b`'s by `boff` on the fly, undoing partial bindings on failure.
    /// This is the entry point for offset-aware builtins (`=`, `is`), which
    /// previously had to clone their goal literal to bake the offset in.
    pub fn unify_pair(
        &mut self,
        a: &Term,
        aoff: VarId,
        b: &Term,
        boff: VarId,
        occurs_check: bool,
    ) -> bool {
        let mark = self.mark();
        if self.unify_off(a, aoff, b, boff, occurs_check) {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    /// Offset-aware unification: every variable in `a` is shifted by `aoff`
    /// and every variable in `b` by `boff`, without cloning either term.
    /// Partial bindings of a failed attempt are NOT undone here — callers
    /// bracket the attempt with [`Bindings::mark`]/[`Bindings::undo_to`].
    pub fn unify_off(
        &mut self,
        a: &Term,
        aoff: VarId,
        b: &Term,
        boff: VarId,
        occurs_check: bool,
    ) -> bool {
        let va = self.resolve_view(a, aoff);
        let vb = self.resolve_view(b, boff);
        match (va, vb) {
            (View::Var(x), View::Var(y)) => {
                if x != y {
                    self.bind(x, Term::Var(y));
                }
                true
            }
            (View::Var(x), vb) => {
                if occurs_check && self.occurs_view(x, &vb) {
                    return false;
                }
                let t = Self::materialize(vb);
                self.bind(x, t);
                true
            }
            (va, View::Var(y)) => {
                if occurs_check && self.occurs_view(y, &va) {
                    return false;
                }
                let t = Self::materialize(va);
                self.bind(y, t);
                true
            }
            (View::Sym(x), View::Sym(y)) => x == y,
            (View::Int(x), View::Int(y)) => x == y,
            (View::Float(x), View::Float(y)) => x == y,
            (View::App(ta, oa), View::App(tb, ob)) => self.unify_args(ta, oa, tb, ob, occurs_check),
            (View::App(ta, oa), View::OwnedApp(tb)) => {
                self.unify_args(ta, oa, &tb, 0, occurs_check)
            }
            (View::OwnedApp(ta), View::App(tb, ob)) => {
                self.unify_args(&ta, 0, tb, ob, occurs_check)
            }
            (View::OwnedApp(ta), View::OwnedApp(tb)) => {
                self.unify_args(&ta, 0, &tb, 0, occurs_check)
            }
            _ => false,
        }
    }

    /// Pairwise unification of two compounds' arguments.
    fn unify_args(
        &mut self,
        a: &Term,
        aoff: VarId,
        b: &Term,
        boff: VarId,
        occurs_check: bool,
    ) -> bool {
        let (Term::App(f, xs), Term::App(g, ys)) = (a, b) else {
            unreachable!("unify_args called on non-compounds");
        };
        if f != g || xs.len() != ys.len() {
            return false;
        }
        xs.iter()
            .zip(ys.iter())
            .all(|(x, y)| self.unify_off(x, aoff, y, boff, occurs_check))
    }

    /// Occurs check against a walked view.
    fn occurs_view(&self, v: VarId, view: &View<'_>) -> bool {
        match view {
            View::Var(w) => *w == v,
            View::App(t, off) => self.occurs_in_args(v, t, *off),
            View::OwnedApp(t) => self.occurs_in_args(v, t, 0),
            _ => false,
        }
    }

    fn occurs_in_args(&self, v: VarId, t: &Term, off: VarId) -> bool {
        let Term::App(_, args) = t else { return false };
        args.iter().any(|a| {
            let view = self.resolve_view(a, off);
            self.occurs_view(v, &view)
        })
    }

    /// Unifies two literals (same predicate, same arity, pairwise args).
    pub fn unify_literals(&mut self, a: &Literal, b: &Literal, occurs_check: bool) -> bool {
        self.unify_literals_off(a, 0, b, 0, occurs_check)
    }

    /// Offset-aware literal unification (see [`Bindings::unify_off`]); undoes
    /// its partial bindings on failure.
    pub fn unify_literals_off(
        &mut self,
        a: &Literal,
        aoff: VarId,
        b: &Literal,
        boff: VarId,
        occurs_check: bool,
    ) -> bool {
        if a.pred != b.pred || a.args.len() != b.args.len() {
            return false;
        }
        let mark = self.mark();
        for (x, y) in a.args.iter().zip(b.args.iter()) {
            if !self.unify_off(x, aoff, y, boff, occurs_check) {
                self.undo_to(mark);
                return false;
            }
        }
        true
    }

    /// Clears all bindings and the trail, keeping slot capacity.
    pub fn clear(&mut self) {
        for v in self.trail.drain(..) {
            self.slots[v as usize] = None;
        }
    }

    /// Clears all bindings and shrinks the slot vector back to `keep`
    /// addressable variables. Hot loops that reuse one store across many
    /// proofs call this between proofs so rename-apart offsets from one
    /// proof don't inflate the slot vector (and the fresh-variable base) of
    /// the next.
    pub fn reset(&mut self, keep: usize) {
        self.clear();
        self.slots.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn app(t: &SymbolTable, f: &str, args: Vec<Term>) -> Term {
        Term::app(t.intern(f), args)
    }

    #[test]
    fn unify_binds_and_resolves() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        let x = Term::Var(0);
        let a = Term::Sym(t.intern("a"));
        assert!(b.unify(&x, &a, false));
        assert_eq!(b.resolve(&x), a);
    }

    #[test]
    fn unify_failure_undoes_partial_bindings() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        // f(X, a) vs f(b, c): X gets bound to b before a/c clash; must undo.
        let lhs = app(&t, "f", vec![Term::Var(0), Term::Sym(t.intern("a"))]);
        let rhs = app(
            &t,
            "f",
            vec![Term::Sym(t.intern("b")), Term::Sym(t.intern("c"))],
        );
        assert!(!b.unify(&lhs, &rhs, false));
        assert!(b.lookup(0).is_none());
    }

    #[test]
    fn var_var_chains_walk() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        assert!(b.unify(&Term::Var(0), &Term::Var(1), false));
        let a = Term::Sym(t.intern("a"));
        assert!(b.unify(&Term::Var(1), &a, false));
        assert_eq!(b.resolve(&Term::Var(0)), a);
    }

    #[test]
    fn occurs_check_blocks_cycles() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        let fx = app(&t, "f", vec![Term::Var(0)]);
        assert!(!b.unify(&Term::Var(0), &fx, true));
        // Without the check, the cyclic binding is permitted (Prolog-style).
        assert!(b.unify(&Term::Var(0), &fx, false));
    }

    #[test]
    fn mark_undo_restores_state() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        assert!(b.unify(&Term::Var(0), &Term::Sym(t.intern("a")), false));
        let m = b.mark();
        assert!(b.unify(&Term::Var(1), &Term::Sym(t.intern("b")), false));
        b.undo_to(m);
        assert!(b.lookup(0).is_some());
        assert!(b.lookup(1).is_none());
    }

    #[test]
    fn literal_unification_checks_pred_and_arity() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        let p = crate::clause::Literal::new(t.intern("p"), vec![Term::Var(0)]);
        let q = crate::clause::Literal::new(t.intern("q"), vec![Term::Int(1)]);
        assert!(!b.unify_literals(&p, &q, false));
        let p2 = crate::clause::Literal::new(t.intern("p"), vec![Term::Int(1)]);
        assert!(b.unify_literals(&p, &p2, false));
        assert_eq!(b.resolve(&Term::Var(0)), Term::Int(1));
    }
}
