//! Variable bindings with an undo trail, plus unification.
//!
//! The prover backtracks constantly, so bindings are stored in a flat slot
//! vector indexed by [`VarId`], and every binding is recorded on a trail.
//! [`Bindings::mark`]/[`Bindings::undo_to`] give O(1)-amortized backtracking
//! without cloning substitutions — the same trick a WAM uses.

use crate::clause::Literal;
use crate::term::{Term, VarId};

/// A mutable binding store with trail-based undo.
#[derive(Default, Debug)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
    trail: Vec<VarId>,
}

/// A checkpoint returned by [`Bindings::mark`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark(usize);

impl Bindings {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with capacity for `n` variables.
    pub fn with_capacity(n: usize) -> Self {
        Bindings { slots: vec![None; n], trail: Vec::with_capacity(n) }
    }

    /// Grows the slot vector so ids `0..n` are addressable.
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// Number of addressable variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot exists yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns a checkpoint; bindings made after it can be undone with
    /// [`Bindings::undo_to`].
    #[inline]
    pub fn mark(&self) -> Mark {
        Mark(self.trail.len())
    }

    /// Undoes every binding made since `mark`.
    pub fn undo_to(&mut self, mark: Mark) {
        while self.trail.len() > mark.0 {
            let v = self.trail.pop().expect("trail length checked");
            self.slots[v as usize] = None;
        }
    }

    /// Binds variable `v` to `t`, recording the binding on the trail.
    /// `v` must be unbound.
    #[inline]
    pub fn bind(&mut self, v: VarId, t: Term) {
        self.ensure(v as usize + 1);
        debug_assert!(self.slots[v as usize].is_none(), "rebinding bound var");
        self.slots[v as usize] = Some(t);
        self.trail.push(v);
    }

    /// The raw binding of `v`, if any (not dereferenced).
    #[inline]
    pub fn lookup(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v as usize).and_then(|s| s.as_ref())
    }

    /// Follows variable-to-variable bindings until hitting an unbound
    /// variable or a non-variable term. Returns the final term (shallow: the
    /// arguments of a compound are *not* resolved).
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        while let Term::Var(v) = cur {
            match self.lookup(*v) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Fully applies the substitution to `t`, producing a new term with
    /// every bound variable replaced (recursively).
    pub fn resolve(&self, t: &Term) -> Term {
        let w = self.walk(t);
        match w {
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| self.resolve(a)).collect()),
            other => other.clone(),
        }
    }

    /// Fully applies the substitution to a literal.
    pub fn resolve_literal(&self, l: &Literal) -> Literal {
        Literal { pred: l.pred, args: l.args.iter().map(|a| self.resolve(a)).collect() }
    }

    /// True when `t` is ground under the current bindings.
    pub fn is_ground(&self, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(|a| self.is_ground(a)),
            _ => true,
        }
    }

    /// Occurs check: does variable `v` occur in `t` (under bindings)?
    fn occurs(&self, v: VarId, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(w) => *w == v,
            Term::App(_, args) => args.iter().any(|a| self.occurs(v, a)),
            _ => false,
        }
    }

    /// Unifies `a` and `b` under the current bindings, extending them on
    /// success. On failure the bindings are left as they were at entry.
    ///
    /// `occurs_check` guards against cyclic terms; coverage queries in ILP
    /// are against ground facts, so the check is usually disabled for speed.
    pub fn unify(&mut self, a: &Term, b: &Term, occurs_check: bool) -> bool {
        let mark = self.mark();
        if self.unify_inner(a, b, occurs_check) {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    fn unify_inner(&mut self, a: &Term, b: &Term, occurs_check: bool) -> bool {
        let wa = self.walk(a).clone();
        let wb = self.walk(b).clone();
        match (wa, wb) {
            (Term::Var(x), Term::Var(y)) if x == y => true,
            (Term::Var(x), t) => {
                if occurs_check && self.occurs(x, &t) {
                    return false;
                }
                self.bind(x, t);
                true
            }
            (t, Term::Var(y)) => {
                if occurs_check && self.occurs(y, &t) {
                    return false;
                }
                self.bind(y, t);
                true
            }
            (Term::Sym(x), Term::Sym(y)) => x == y,
            (Term::Int(x), Term::Int(y)) => x == y,
            (Term::Float(x), Term::Float(y)) => x == y,
            (Term::App(f, xs), Term::App(g, ys)) => {
                if f != g || xs.len() != ys.len() {
                    return false;
                }
                xs.iter().zip(ys.iter()).all(|(x, y)| self.unify_inner(x, y, occurs_check))
            }
            _ => false,
        }
    }

    /// Unifies two literals (same predicate, same arity, pairwise args).
    pub fn unify_literals(&mut self, a: &Literal, b: &Literal, occurs_check: bool) -> bool {
        if a.pred != b.pred || a.args.len() != b.args.len() {
            return false;
        }
        let mark = self.mark();
        for (x, y) in a.args.iter().zip(b.args.iter()) {
            if !self.unify_inner(x, y, occurs_check) {
                self.undo_to(mark);
                return false;
            }
        }
        true
    }

    /// Clears all bindings and the trail, keeping slot capacity.
    pub fn clear(&mut self) {
        for v in self.trail.drain(..) {
            self.slots[v as usize] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn app(t: &SymbolTable, f: &str, args: Vec<Term>) -> Term {
        Term::app(t.intern(f), args)
    }

    #[test]
    fn unify_binds_and_resolves() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        let x = Term::Var(0);
        let a = Term::Sym(t.intern("a"));
        assert!(b.unify(&x, &a, false));
        assert_eq!(b.resolve(&x), a);
    }

    #[test]
    fn unify_failure_undoes_partial_bindings() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        // f(X, a) vs f(b, c): X gets bound to b before a/c clash; must undo.
        let lhs = app(&t, "f", vec![Term::Var(0), Term::Sym(t.intern("a"))]);
        let rhs = app(&t, "f", vec![Term::Sym(t.intern("b")), Term::Sym(t.intern("c"))]);
        assert!(!b.unify(&lhs, &rhs, false));
        assert!(b.lookup(0).is_none());
    }

    #[test]
    fn var_var_chains_walk() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        assert!(b.unify(&Term::Var(0), &Term::Var(1), false));
        let a = Term::Sym(t.intern("a"));
        assert!(b.unify(&Term::Var(1), &a, false));
        assert_eq!(b.resolve(&Term::Var(0)), a);
    }

    #[test]
    fn occurs_check_blocks_cycles() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        let fx = app(&t, "f", vec![Term::Var(0)]);
        assert!(!b.unify(&Term::Var(0), &fx, true));
        // Without the check, the cyclic binding is permitted (Prolog-style).
        assert!(b.unify(&Term::Var(0), &fx, false));
    }

    #[test]
    fn mark_undo_restores_state() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        assert!(b.unify(&Term::Var(0), &Term::Sym(t.intern("a")), false));
        let m = b.mark();
        assert!(b.unify(&Term::Var(1), &Term::Sym(t.intern("b")), false));
        b.undo_to(m);
        assert!(b.lookup(0).is_some());
        assert!(b.lookup(1).is_none());
    }

    #[test]
    fn literal_unification_checks_pred_and_arity() {
        let t = SymbolTable::new();
        let mut b = Bindings::new();
        let p = crate::clause::Literal::new(t.intern("p"), vec![Term::Var(0)]);
        let q = crate::clause::Literal::new(t.intern("q"), vec![Term::Int(1)]);
        assert!(!b.unify_literals(&p, &q, false));
        let p2 = crate::clause::Literal::new(t.intern("p"), vec![Term::Int(1)]);
        assert!(b.unify_literals(&p, &p2, false));
        assert_eq!(b.resolve(&Term::Var(0)), Term::Int(1));
    }
}
