//! String interning.
//!
//! Every functor, predicate and constant name is interned once into a
//! [`SymbolTable`] and referred to by a compact [`SymbolId`]. The table is
//! cheaply cloneable (shared behind an `Arc`), append-only, and thread-safe,
//! so the cluster substrate can ship terms between ranks as raw ids: all
//! ranks of a run share one table, exactly like all nodes of the paper's
//! Beowulf cluster loaded identical data files and therefore agreed on the
//! meaning of every name.

use crate::fxhash::FxHashMap;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// Compact identifier for an interned string.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    names: Vec<Arc<str>>,
    map: FxHashMap<Arc<str>, SymbolId>,
}

/// A shared, append-only string interner.
///
/// Cloning a `SymbolTable` clones the *handle*; both handles observe the
/// same set of symbols. Interning the same string twice always yields the
/// same [`SymbolId`].
#[derive(Clone, Default)]
pub struct SymbolTable {
    inner: Arc<RwLock<Inner>>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&self, name: &str) -> SymbolId {
        if let Some(&id) = self.inner.read().map.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        Self::intern_locked(&mut inner, name)
    }

    /// Interns a whole batch of names in order under **one** lock
    /// acquisition, returning their ids. This is the snapshot-load path:
    /// a dictionary of thousands of names interns in one critical section
    /// instead of paying a read-probe + write-lock round trip per name.
    pub fn intern_all<S: AsRef<str>>(&self, names: &[S]) -> Vec<SymbolId> {
        let mut inner = self.inner.write();
        inner.names.reserve(names.len());
        inner.map.reserve(names.len());
        names
            .iter()
            .map(|n| Self::intern_locked(&mut inner, n.as_ref()))
            .collect()
    }

    fn intern_locked(inner: &mut Inner, name: &str) -> SymbolId {
        if let Some(&id) = inner.map.get(name) {
            return id;
        }
        let id = SymbolId(inner.names.len() as u32);
        let arc: Arc<str> = Arc::from(name);
        inner.names.push(arc.clone());
        inner.map.insert(arc, id);
        id
    }

    /// Returns the string for `id`. Panics if `id` was not produced by this
    /// table (or a clone of it).
    pub fn name(&self, id: SymbolId) -> Arc<str> {
        self.inner.read().names[id.index()].clone()
    }

    /// Looks up an already-interned string without inserting.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.inner.read().map.get(name).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True when no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if both handles refer to the same underlying table.
    pub fn same_table(&self, other: &SymbolTable) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Every interned name in id order (a point-in-time copy; the table may
    /// grow concurrently). This is the symbol dictionary a
    /// [`crate::snapshot::KbSnapshot`] carries so a restore into a *fresh*
    /// table reproduces the exact same ids.
    pub fn names(&self) -> Vec<Arc<str>> {
        self.inner.read().names.clone()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolTable({} symbols)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(&*t.name(a), "foo");
        assert_eq!(&*t.name(b), "bar");
    }

    #[test]
    fn clones_share_storage() {
        let t = SymbolTable::new();
        let t2 = t.clone();
        let a = t.intern("shared");
        assert_eq!(t2.lookup("shared"), Some(a));
        assert!(t.same_table(&t2));
    }

    #[test]
    fn intern_all_matches_one_by_one() {
        let a = SymbolTable::new();
        let b = SymbolTable::new();
        b.intern("pre_existing");
        let names = ["x", "y", "x", "pre_existing", "z"];
        let batch = a.intern_all(&names);
        let single: Vec<SymbolId> = names.iter().map(|n| a.intern(n)).collect();
        assert_eq!(batch, single);
        // Batched interning into a non-empty table reuses existing ids.
        let batch_b = b.intern_all(&names);
        assert_eq!(batch_b[3], b.lookup("pre_existing").unwrap());
        assert_eq!(batch_b[0], batch_b[2]);
    }

    #[test]
    fn lookup_missing_is_none() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("nope"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let t = SymbolTable::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| t.intern(&format!("s{i}")).0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(t.len(), 100);
    }
}
