//! Depth- and step-bounded SLD resolution with inference-step metering.
//!
//! This is the workhorse behind ILP coverage testing: prove a (mostly
//! ground) goal conjunction against the background KB. Two resource bounds
//! keep every proof finite — a recursion *depth* bound on rule expansions
//! and a *step* budget counting every unification candidate tried and every
//! builtin evaluated. The step count doubles as the *fuel* consumed by the
//! cluster substrate's virtual-time model: compute time on a rank is
//! `steps × t_step` (DESIGN.md §3, substitution 1).
//!
//! The search strategy is standard Prolog: goals left-to-right, clauses in
//! assertion order, facts before rules, backtracking on failure.
//!
//! # Zero-allocation inner loop
//!
//! Pending goals live in an immutable cons-list of [`Frame`]s allocated on
//! the Rust call stack: each frame borrows a run of literals straight out of
//! the query or a KB clause, together with the variable offset that renames
//! that clause apart. Pushing a rule body is O(1) pointer work — no literal
//! is ever cloned — and unification applies the offsets on the fly (see
//! [`crate::subst::Bindings::unify_off`]). The previous implementation,
//! which materialized a fresh `Vec<(Literal, u32)>` with `offset_vars`
//! clones on every rule expansion, is preserved verbatim in [`reference`]
//! for differential testing and benchmarking.

pub mod reference;

use crate::builtins::solve_builtin;
use crate::clause::Literal;
use crate::kb::KnowledgeBase;
use crate::subst::Bindings;
use crate::term::VarId;

/// Resource limits for a single proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProofLimits {
    /// Maximum rule-expansion depth (facts are depth-free).
    pub max_depth: u32,
    /// Maximum inference steps for one proof attempt.
    pub max_steps: u64,
}

impl Default for ProofLimits {
    fn default() -> Self {
        ProofLimits {
            max_depth: 10,
            max_steps: 100_000,
        }
    }
}

/// What a proof attempt cost and whether bounds were hit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Inference steps consumed (unification candidates + builtin calls).
    pub steps: u64,
    /// Number of branches pruned by the depth bound.
    pub depth_cuts: u64,
    /// True when the step budget ran out (result is then "not proved").
    pub aborted: bool,
}

impl ProofStats {
    /// Accumulates another proof's stats into this one.
    pub fn absorb(&mut self, other: ProofStats) {
        self.steps += other.steps;
        self.depth_cuts += other.depth_cuts;
        self.aborted |= other.aborted;
    }
}

/// Flow control for the backtracking search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Control {
    /// Keep enumerating alternatives.
    More,
    /// A callback asked to stop (enough solutions).
    Done,
    /// The step budget is exhausted.
    Abort,
}

/// A segment of pending goals: a run of literals borrowed from one clause
/// (or the query), the variable offset renaming that clause apart, the rule
/// depth, and the continuation. Frames are allocated on the call stack and
/// shared immutably across choice points.
struct Frame<'a> {
    lits: &'a [Literal],
    offset: VarId,
    depth: u32,
    next: Option<&'a Frame<'a>>,
}

/// A bounded SLD prover over a knowledge base.
pub struct Prover<'a> {
    kb: &'a KnowledgeBase,
    limits: ProofLimits,
}

impl<'a> Prover<'a> {
    /// Creates a prover for `kb` with the given limits.
    pub fn new(kb: &'a KnowledgeBase, limits: ProofLimits) -> Self {
        Prover { kb, limits }
    }

    /// The limits in force.
    pub fn limits(&self) -> ProofLimits {
        self.limits
    }

    /// Proves a single goal, stopping at the first solution.
    /// Typically used with ground goals ("is this example derivable?").
    pub fn prove_ground(&self, goal: &Literal) -> (bool, ProofStats) {
        self.prove_goals(std::slice::from_ref(goal))
    }

    /// Proves a conjunction, stopping at the first solution.
    pub fn prove_goals(&self, goals: &[Literal]) -> (bool, ProofStats) {
        self.prove_with_bindings(goals, Bindings::new())
    }

    /// Proves a conjunction under pre-established bindings (the ILP coverage
    /// path: head variables are already bound to the example's constants).
    pub fn prove_with_bindings(
        &self,
        goals: &[Literal],
        mut bindings: Bindings,
    ) -> (bool, ProofStats) {
        self.prove_reusing(goals, &mut bindings)
    }

    /// Like [`Prover::prove_with_bindings`], but borrows the binding store so
    /// hot loops (coverage testing) can reuse one allocation across proofs.
    /// The caller clears the store between proofs.
    pub fn prove_reusing(&self, goals: &[Literal], bindings: &mut Bindings) -> (bool, ProofStats) {
        let mut found = false;
        let stats = self.run_reusing(goals, bindings, &mut |_| {
            found = true;
            false // stop at first solution
        });
        (found, stats)
    }

    /// Enumerates up to `max` solutions of `goal`, returning the distinct
    /// fully-resolved instances in discovery order (duplicates collapsed, as
    /// saturation only cares about distinct bindings).
    pub fn solutions(&self, goal: &Literal, max: usize) -> (Vec<Literal>, ProofStats) {
        let mut out: Vec<Literal> = Vec::new();
        if max == 0 {
            return (out, ProofStats::default());
        }
        let mut seen: crate::fxhash::FxHashSet<Literal> = crate::fxhash::FxHashSet::default();
        let stats = self.run(std::slice::from_ref(goal), Bindings::new(), &mut |b| {
            let inst = b.resolve_literal(goal);
            if seen.insert(inst.clone()) {
                out.push(inst);
            }
            out.len() < max
        });
        (out, stats)
    }

    /// Runs the search, invoking `on_solution` at every solution. The
    /// callback returns `true` to continue enumerating, `false` to stop.
    /// Returns the accumulated stats.
    pub fn run(
        &self,
        goals: &[Literal],
        mut bindings: Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        self.run_reusing(goals, &mut bindings, on_solution)
    }

    /// [`Prover::run`] over a borrowed binding store.
    pub fn run_reusing(
        &self,
        goals: &[Literal],
        bindings: &mut Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        let mut next_var: VarId = goals
            .iter()
            .filter_map(Literal::max_var)
            .max()
            .map_or(0, |v| v + 1)
            .max(bindings.len() as VarId);
        bindings.ensure(next_var as usize);
        let mut ctx = Ctx {
            kb: self.kb,
            limits: self.limits,
            stats: ProofStats::default(),
            bindings,
            next_var: &mut next_var,
        };
        let root = Frame {
            lits: goals,
            offset: 0,
            depth: 0,
            next: None,
        };
        ctx.solve(Some(&root), on_solution);
        ctx.stats
    }
}

struct Ctx<'a, 'v> {
    kb: &'a KnowledgeBase,
    limits: ProofLimits,
    stats: ProofStats,
    bindings: &'v mut Bindings,
    next_var: &'v mut VarId,
}

impl Ctx<'_, '_> {
    #[inline]
    fn tick(&mut self) -> bool {
        self.stats.steps += 1;
        if self.stats.steps > self.limits.max_steps {
            self.stats.aborted = true;
            false
        } else {
            true
        }
    }

    /// Solves the goal stack; restores `bindings` to its entry state before
    /// returning, so callers' choice points stay clean.
    fn solve(
        &mut self,
        frame: Option<&Frame<'_>>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        let Some(f) = frame else {
            return if on_solution(self.bindings) {
                Control::More
            } else {
                Control::Done
            };
        };
        let Some((goal, rest_lits)) = f.lits.split_first() else {
            return self.solve(f.next, on_solution);
        };
        let goff = f.offset;
        let depth = f.depth;
        let rest = Frame {
            lits: rest_lits,
            offset: goff,
            depth,
            next: f.next,
        };

        // Builtins: deterministic, at most one continuation.
        if let Some(b) = self.kb.builtins().get(goal.pred) {
            if !self.tick() {
                return Control::Abort;
            }
            let mark = self.bindings.mark();
            // Builtins take a plain literal; goals from the query are at
            // offset 0, so the rename-apart clone only happens for builtins
            // inside KB rule bodies (rare, and those literals are tiny).
            let ok = if goff == 0 {
                solve_builtin(b, goal, self.bindings, self.kb.symbols())
            } else {
                let shifted = goal.offset_vars(goff);
                solve_builtin(b, &shifted, self.bindings, self.kb.symbols())
            };
            let ctrl = if ok == Some(true) {
                self.solve(Some(&rest), on_solution)
            } else {
                Control::More
            };
            self.bindings.undo_to(mark);
            return ctrl;
        }

        let kb = self.kb;
        let key = goal.key();

        // Facts, through the first-argument index where possible.
        let first = goal
            .args
            .first()
            .and_then(|t| self.bindings.resolved_constant(t, goff));
        for fact in kb.candidate_facts(key, first.as_ref()) {
            if !self.tick() {
                return Control::Abort;
            }
            let mark = self.bindings.mark();
            if self.bindings.unify_literals_off(goal, goff, fact, 0, false) {
                match self.solve(Some(&rest), on_solution) {
                    Control::More => {}
                    c => {
                        self.bindings.undo_to(mark);
                        return c;
                    }
                }
            }
            self.bindings.undo_to(mark);
        }

        // Rules: rename apart via a fresh offset, push the body at depth+1.
        for rule in kb.rules_for(key) {
            if depth + 1 > self.limits.max_depth {
                self.stats.depth_cuts += 1;
                continue;
            }
            if !self.tick() {
                return Control::Abort;
            }
            let offset = *self.next_var;
            *self.next_var += rule.var_span();
            let mark = self.bindings.mark();
            if self
                .bindings
                .unify_literals_off(goal, goff, &rule.head, offset, false)
            {
                let body = Frame {
                    lits: &rule.body,
                    offset,
                    depth: depth + 1,
                    next: Some(&rest),
                };
                match self.solve(Some(&body), on_solution) {
                    Control::More => {}
                    c => {
                        self.bindings.undo_to(mark);
                        return c;
                    }
                }
            }
            self.bindings.undo_to(mark);
        }

        Control::More
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::symbol::SymbolTable;
    use crate::term::Term;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    fn family_kb() -> (SymbolTable, KnowledgeBase) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let c = |n: &str| Term::Sym(t.intern(n));
        for (a, b) in [("ann", "bob"), ("bob", "carl"), ("carl", "dee")] {
            kb.assert_fact(lit(&t, "parent", vec![c(a), c(b)]));
        }
        // ancestor(X,Y) :- parent(X,Y).
        kb.assert_rule(Clause::new(
            lit(&t, "ancestor", vec![Term::Var(0), Term::Var(1)]),
            vec![lit(&t, "parent", vec![Term::Var(0), Term::Var(1)])],
        ));
        // ancestor(X,Z) :- parent(X,Y), ancestor(Y,Z).
        kb.assert_rule(Clause::new(
            lit(&t, "ancestor", vec![Term::Var(0), Term::Var(2)]),
            vec![
                lit(&t, "parent", vec![Term::Var(0), Term::Var(1)]),
                lit(&t, "ancestor", vec![Term::Var(1), Term::Var(2)]),
            ],
        ));
        (t, kb)
    }

    #[test]
    fn facts_prove_directly() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let (ok, st) = p.prove_ground(&lit(&t, "parent", vec![c("ann"), c("bob")]));
        assert!(ok);
        assert!(st.steps >= 1);
        let (ok, _) = p.prove_ground(&lit(&t, "parent", vec![c("bob"), c("ann")]));
        assert!(!ok);
    }

    #[test]
    fn recursive_rules_chain() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let (ok, _) = p.prove_ground(&lit(&t, "ancestor", vec![c("ann"), c("dee")]));
        assert!(ok);
        let (ok, _) = p.prove_ground(&lit(&t, "ancestor", vec![c("dee"), c("ann")]));
        assert!(!ok);
    }

    #[test]
    fn depth_bound_cuts_recursion() {
        let (t, kb) = family_kb();
        // Depth 1 allows only the base case: ancestor(ann,dee) needs 3 hops.
        let p = Prover::new(
            &kb,
            ProofLimits {
                max_depth: 1,
                max_steps: 10_000,
            },
        );
        let c = |n: &str| Term::Sym(t.intern(n));
        let (ok, st) = p.prove_ground(&lit(&t, "ancestor", vec![c("ann"), c("dee")]));
        assert!(!ok);
        assert!(st.depth_cuts > 0);
        let (ok, _) = p.prove_ground(&lit(&t, "ancestor", vec![c("ann"), c("bob")]));
        assert!(ok);
    }

    #[test]
    fn step_budget_aborts() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        // loop(X) :- loop(X). — infinite without bounds.
        kb.assert_rule(Clause::new(
            lit(&t, "loop", vec![Term::Var(0)]),
            vec![lit(&t, "loop", vec![Term::Var(0)])],
        ));
        let p = Prover::new(
            &kb,
            ProofLimits {
                max_depth: u32::MAX,
                max_steps: 500,
            },
        );
        let (ok, st) = p.prove_ground(&lit(&t, "loop", vec![Term::Int(1)]));
        assert!(!ok);
        assert!(st.aborted);
        assert!(st.steps >= 500);
    }

    #[test]
    fn solutions_enumerates_with_recall_bound() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let goal = lit(&t, "parent", vec![Term::Var(0), Term::Var(1)]);
        let (sols, _) = p.solutions(&goal, 10);
        assert_eq!(sols.len(), 3);
        let (sols, _) = p.solutions(&goal, 2);
        assert_eq!(sols.len(), 2);
        let (sols, _) = p.solutions(&goal, 0);
        assert!(sols.is_empty());
    }

    #[test]
    fn solutions_are_deduplicated() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1), Term::Int(1)]));
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1), Term::Int(2)]));
        // p(X) :- q(X, _): X=1 twice, but only one distinct instance p(1).
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0), Term::Var(1)])],
        ));
        let p = Prover::new(&kb, ProofLimits::default());
        let (sols, _) = p.solutions(&lit(&t, "p", vec![Term::Var(0)]), 10);
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn builtins_interleave_with_facts() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=5 {
            kb.assert_fact(lit(&t, "val", vec![Term::Int(i)]));
        }
        // big(X) :- val(X), X >= 4.
        kb.assert_rule(Clause::new(
            lit(&t, "big", vec![Term::Var(0)]),
            vec![
                lit(&t, "val", vec![Term::Var(0)]),
                lit(&t, ">=", vec![Term::Var(0), Term::Int(4)]),
            ],
        ));
        let p = Prover::new(&kb, ProofLimits::default());
        let (sols, _) = p.solutions(&lit(&t, "big", vec![Term::Var(0)]), 10);
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn prove_with_prebound_head_vars() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        // Simulate coverage: head var 0 bound to ann, prove parent(V0, bob).
        let mut b = Bindings::new();
        b.bind(0, Term::Sym(t.intern("ann")));
        let body = vec![lit(
            &t,
            "parent",
            vec![Term::Var(0), Term::Sym(t.intern("bob"))],
        )];
        let (ok, _) = p.prove_with_bindings(&body, b);
        assert!(ok);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = ProofStats {
            steps: 5,
            depth_cuts: 1,
            aborted: false,
        };
        a.absorb(ProofStats {
            steps: 7,
            depth_cuts: 0,
            aborted: true,
        });
        assert_eq!(a.steps, 12);
        assert_eq!(a.depth_cuts, 1);
        assert!(a.aborted);
    }

    #[test]
    fn reused_bindings_give_identical_results() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let goals = [
            lit(&t, "ancestor", vec![c("ann"), c("dee")]),
            lit(&t, "ancestor", vec![c("bob"), c("dee")]),
            lit(&t, "ancestor", vec![c("dee"), c("ann")]),
        ];
        let mut scratch = Bindings::new();
        for g in &goals {
            let fresh = p.prove_ground(g);
            scratch.clear();
            let reused = p.prove_reusing(std::slice::from_ref(g), &mut scratch);
            assert_eq!(fresh.0, reused.0);
            assert_eq!(fresh.1.steps, reused.1.steps);
        }
    }
}
