//! Depth- and step-bounded SLD resolution with inference-step metering.
//!
//! This is the workhorse behind ILP coverage testing: prove a (mostly
//! ground) goal conjunction against the background KB. Two resource bounds
//! keep every proof finite — a recursion *depth* bound on rule expansions
//! and a *step* budget counting every unification candidate tried and every
//! builtin evaluated. The step count doubles as the *fuel* consumed by the
//! cluster substrate's virtual-time model: compute time on a rank is
//! `steps × t_step` (DESIGN.md §3, substitution 1).
//!
//! The search strategy is standard Prolog: goals left-to-right, clauses in
//! assertion order, facts before rules, backtracking on failure.
//!
//! # Compiled goals, zero-allocation inner loop
//!
//! The prover runs [`CompiledGoals`]: each literal carries its dispatch
//! ([`LitKind`]) resolved once at compile time — builtin slot, dense
//! [`crate::clause::PredId`], or unknown — so per-goal dispatch is array
//! reads instead of hash probes. Pending goals live in an immutable
//! cons-list of `Frame`s allocated on the Rust call stack: each frame
//! borrows a run of compiled literals straight out of the query or a KB
//! clause (the KB stores [`crate::clause::CompiledClause`]s), together with
//! the variable offset that renames that clause apart. Pushing a rule body
//! is O(1) pointer work — no literal is ever cloned — and unification
//! applies the offsets on the fly (see [`crate::subst::Bindings::unify_off`]).
//!
//! # Multi-argument indexing with pinned step accounting
//!
//! Fact retrieval goes through [`KnowledgeBase::fact_plan`], which may pick
//! a *more selective* bound argument position than the first (hash-join
//! choice). The inference-step fuel stays bit-identical to the seed
//! semantics: candidates the narrower index skips are exactly those that
//! provably fail unification on the chosen position, so the prover
//! *bulk-charges* their steps by rank without touching
//! them. `(proved, steps, depth_cuts, aborted)` — and solution order — are
//! pinned equal to [`mod@reference`], the seed implementation preserved
//! verbatim for differential testing and benchmarking.

pub mod reference;

use crate::arena::Probe;
use crate::builtins::solve_builtin_off;
use crate::clause::{CompiledGoals, CompiledGoalsRef, CompiledLiteral, LitKind, Literal, PredId};
use crate::kb::{FactCols, FactPlan, KnowledgeBase, PlanScratch};
use crate::subst::Bindings;
use crate::term::VarId;
use std::cell::RefCell;

/// Resource limits for a single proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProofLimits {
    /// Maximum rule-expansion depth (facts are depth-free).
    pub max_depth: u32,
    /// Maximum inference steps for one proof attempt.
    pub max_steps: u64,
}

impl Default for ProofLimits {
    fn default() -> Self {
        ProofLimits {
            max_depth: 10,
            max_steps: 100_000,
        }
    }
}

/// What a proof attempt cost and whether bounds were hit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Inference steps consumed (unification candidates + builtin calls).
    pub steps: u64,
    /// Number of branches pruned by the depth bound.
    pub depth_cuts: u64,
    /// True when the step budget ran out (result is then "not proved").
    pub aborted: bool,
}

impl ProofStats {
    /// Accumulates another proof's stats into this one.
    pub fn absorb(&mut self, other: ProofStats) {
        self.steps += other.steps;
        self.depth_cuts += other.depth_cuts;
        self.aborted |= other.aborted;
    }
}

/// Flow control for the backtracking search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Control {
    /// Keep enumerating alternatives.
    More,
    /// A callback asked to stop (enough solutions).
    Done,
    /// The step budget is exhausted.
    Abort,
}

/// A segment of pending goals: a run of compiled literals borrowed from one
/// clause (or the query), the variable offset renaming that clause apart,
/// the rule depth, and the continuation. Frames are allocated on the call
/// stack and shared immutably across choice points.
struct Frame<'a> {
    lits: &'a [CompiledLiteral],
    offset: VarId,
    depth: u32,
    next: Option<&'a Frame<'a>>,
}

/// A bounded SLD prover over a knowledge base.
///
/// Owns a [`PlanScratch`] pool so steady-state retrieval planning allocates
/// nothing (the pool is behind a `RefCell`; don't re-enter the prover from
/// inside an `on_solution` callback).
pub struct Prover<'a> {
    kb: &'a KnowledgeBase,
    limits: ProofLimits,
    scratch: RefCell<PlanScratch>,
    all_ground_kernel: bool,
}

impl<'a> Prover<'a> {
    /// Creates a prover for `kb` with the given limits.
    pub fn new(kb: &'a KnowledgeBase, limits: ProofLimits) -> Self {
        Prover {
            kb,
            limits,
            scratch: RefCell::new(PlanScratch::new()),
            all_ground_kernel: true,
        }
    }

    /// Disables/enables the all-ground compare kernel. Benchmark plumbing
    /// only (measuring the kernel against the per-row unify path it
    /// replaced); results are bit-identical either way.
    #[doc(hidden)]
    pub fn set_all_ground_kernel(&mut self, on: bool) {
        self.all_ground_kernel = on;
    }

    /// The limits in force.
    pub fn limits(&self) -> ProofLimits {
        self.limits
    }

    /// Compiles a goal conjunction for repeated proving (the coverage hot
    /// path compiles a rule body once and proves it per example).
    pub fn compile(&self, goals: &[Literal]) -> CompiledGoals {
        self.kb.compile_goals(goals)
    }

    /// Proves a single goal, stopping at the first solution.
    /// Typically used with ground goals ("is this example derivable?").
    pub fn prove_ground(&self, goal: &Literal) -> (bool, ProofStats) {
        self.prove_goals(std::slice::from_ref(goal))
    }

    /// Proves a conjunction, stopping at the first solution.
    pub fn prove_goals(&self, goals: &[Literal]) -> (bool, ProofStats) {
        self.prove_with_bindings(goals, Bindings::new())
    }

    /// Proves a conjunction under pre-established bindings (the ILP coverage
    /// path: head variables are already bound to the example's constants).
    pub fn prove_with_bindings(
        &self,
        goals: &[Literal],
        mut bindings: Bindings,
    ) -> (bool, ProofStats) {
        self.prove_reusing(goals, &mut bindings)
    }

    /// Like [`Prover::prove_with_bindings`], but borrows the binding store so
    /// hot loops (coverage testing) can reuse one allocation across proofs.
    /// The caller clears the store between proofs.
    pub fn prove_reusing(&self, goals: &[Literal], bindings: &mut Bindings) -> (bool, ProofStats) {
        let compiled = self.compile(goals);
        self.prove_compiled_reusing(&compiled, bindings)
    }

    /// [`Prover::prove_reusing`] over pre-compiled goals: no dispatch
    /// resolution, no allocation — prove thousands of times per compile.
    pub fn prove_compiled_reusing(
        &self,
        goals: &CompiledGoals,
        bindings: &mut Bindings,
    ) -> (bool, ProofStats) {
        let mut found = false;
        let stats = self.run_compiled_reusing(goals, bindings, &mut |_| {
            found = true;
            false // stop at first solution
        });
        (found, stats)
    }

    /// Enumerates up to `max` solutions of `goal`, returning the distinct
    /// fully-resolved instances in discovery order (duplicates collapsed, as
    /// saturation only cares about distinct bindings).
    pub fn solutions(&self, goal: &Literal, max: usize) -> (Vec<Literal>, ProofStats) {
        let mut scratch = Bindings::new();
        self.solutions_reusing(goal, max, &mut scratch)
    }

    /// [`Prover::solutions`] over a borrowed binding store (cleared here), so
    /// saturation's many queries share one allocation.
    pub fn solutions_reusing(
        &self,
        goal: &Literal,
        max: usize,
        scratch: &mut Bindings,
    ) -> (Vec<Literal>, ProofStats) {
        let compiled = CompiledLiteral {
            kind: self.kb.litkind(goal),
            lit: goal.clone(),
        };
        self.solutions_compiled_reusing(&compiled, max, scratch)
    }

    /// [`Prover::solutions_reusing`] over a *borrowed* pre-compiled goal
    /// (see [`KnowledgeBase::compile_query`]): the query literal is never
    /// cloned and no goals vector is allocated, which keeps saturation's
    /// per-recall-round query loop allocation-free — the same discipline as
    /// coverage's `PreparedRule` path.
    pub fn solutions_compiled_reusing(
        &self,
        goal: &CompiledLiteral,
        max: usize,
        scratch: &mut Bindings,
    ) -> (Vec<Literal>, ProofStats) {
        let mut out: Vec<Literal> = Vec::new();
        if max == 0 {
            return (out, ProofStats::default());
        }
        scratch.reset(0);
        let mut seen: crate::fxhash::FxHashSet<Literal> = crate::fxhash::FxHashSet::default();
        let stats = self.run_borrowed_reusing(CompiledGoalsRef::single(goal), scratch, &mut |b| {
            let inst = b.resolve_literal(&goal.lit);
            if seen.insert(inst.clone()) {
                out.push(inst);
            }
            out.len() < max
        });
        (out, stats)
    }

    /// Runs the search, invoking `on_solution` at every solution. The
    /// callback returns `true` to continue enumerating, `false` to stop.
    /// Returns the accumulated stats.
    pub fn run(
        &self,
        goals: &[Literal],
        mut bindings: Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        self.run_reusing(goals, &mut bindings, on_solution)
    }

    /// [`Prover::run`] over a borrowed binding store.
    pub fn run_reusing(
        &self,
        goals: &[Literal],
        bindings: &mut Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        let compiled = self.compile(goals);
        self.run_compiled_reusing(&compiled, bindings, on_solution)
    }

    /// [`Prover::run`] over pre-compiled goals and a borrowed binding store.
    pub fn run_compiled_reusing(
        &self,
        goals: &CompiledGoals,
        bindings: &mut Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        self.run_borrowed_reusing(CompiledGoalsRef::from(goals), bindings, on_solution)
    }

    /// [`Prover::run`] over *borrowed* compiled goals — the fully
    /// allocation-free entry point: the literals stay wherever the caller
    /// compiled them.
    pub fn run_borrowed_reusing(
        &self,
        goals: CompiledGoalsRef<'_>,
        bindings: &mut Bindings,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> ProofStats {
        let mut next_var: VarId = goals.var_span.max(bindings.len() as VarId);
        bindings.ensure(next_var as usize);
        let mut plan_scratch = self.scratch.borrow_mut();
        let mut ctx = Ctx {
            kb: self.kb,
            limits: self.limits,
            stats: ProofStats::default(),
            bindings,
            next_var: &mut next_var,
            plan_scratch: &mut plan_scratch,
            all_ground_kernel: self.all_ground_kernel,
        };
        let root = Frame {
            lits: goals.lits,
            offset: 0,
            depth: 0,
            next: None,
        };
        ctx.solve(Some(&root), on_solution);
        ctx.stats
    }

    /// Batched [`Prover::solutions_compiled_reusing`]: enumerates each query
    /// independently (same solutions, order, and per-query stats — pinned by
    /// the batch differential proptest), but when every query targets the
    /// same dense predicate the retrieval plans are built in one
    /// [`KnowledgeBase::fact_plan_batch`] pass — goals probing the same
    /// first-argument key share one posting fetch, and their narrowing
    /// stripe compares ride a single scan over the shared reference walk.
    /// The saturation loop ([`bottom`] combo queries) and single-literal
    /// coverage are the natural callers.
    ///
    /// Queries are planned under the *empty* binding store, exactly as each
    /// would be when run standalone (the per-query `scratch.reset(0)`).
    ///
    /// [`bottom`]: https://en.wikipedia.org/wiki/Inductive_logic_programming
    pub fn solutions_compiled_batch(
        &self,
        queries: &[CompiledLiteral],
        max: usize,
        scratch: &mut Bindings,
    ) -> Vec<(Vec<Literal>, ProofStats)> {
        let same_pid = queries.first().and_then(|q0| match q0.kind {
            LitKind::Pred(pid) if queries.iter().all(|q| q.kind == LitKind::Pred(pid)) => Some(pid),
            _ => None,
        });
        let Some(pid) = same_pid else {
            // Mixed dispatch (builtins, unknowns, several predicates):
            // nothing to share, run each query through the one-goal path.
            return queries
                .iter()
                .map(|q| self.solutions_compiled_reusing(q, max, scratch))
                .collect();
        };
        if max == 0 {
            return queries
                .iter()
                .map(|_| (Vec::new(), ProofStats::default()))
                .collect();
        }

        let mut guard = self.scratch.borrow_mut();
        let plan_scratch = &mut *guard;
        scratch.reset(0);
        let arena = self.kb.arena();
        let mut all_probes: Vec<Vec<Probe>> = Vec::with_capacity(queries.len());
        for q in queries {
            let mut probes = plan_scratch.take_probes();
            probes.extend(q.lit.args.iter().map(|a| scratch.probe(a, 0, arena)));
            all_probes.push(probes);
        }
        let plans = self.kb.fact_plan_batch(pid, &all_probes, plan_scratch);

        // Per query, replicate `solutions_compiled_reusing` exactly — reset,
        // dedup against resolved instances, stop at `max` — but hand
        // `solve_pred` the pre-built plan. (Inlined rather than delegated:
        // the `PlanScratch` cell is already borrowed for the whole batch.)
        let mut out = Vec::with_capacity(queries.len());
        for ((q, plan), probes) in queries.iter().zip(plans).zip(&all_probes) {
            let mut sols: Vec<Literal> = Vec::new();
            scratch.reset(0);
            let mut seen: crate::fxhash::FxHashSet<Literal> = crate::fxhash::FxHashSet::default();
            let goals = CompiledGoalsRef::single(q);
            let mut next_var: VarId = goals.var_span.max(scratch.len() as VarId);
            scratch.ensure(next_var as usize);
            let mut ctx = Ctx {
                kb: self.kb,
                limits: self.limits,
                stats: ProofStats::default(),
                bindings: scratch,
                next_var: &mut next_var,
                plan_scratch: &mut *plan_scratch,
                all_ground_kernel: self.all_ground_kernel,
            };
            // An exhausted goal list under the empty continuation — what
            // `solve` builds after splitting off a single-literal frame.
            let rest = Frame {
                lits: &[],
                offset: 0,
                depth: 0,
                next: None,
            };
            ctx.solve_pred(pid, plan, probes, &q.lit, 0, 0, &rest, &mut |b| {
                let inst = b.resolve_literal(&q.lit);
                if seen.insert(inst.clone()) {
                    sols.push(inst);
                }
                sols.len() < max
            });
            out.push((sols, ctx.stats));
        }
        for probes in all_probes {
            plan_scratch.recycle_probes(probes);
        }
        out
    }

    /// Batched [`Prover::prove_compiled_reusing`] over one compiled body
    /// and many seed binding sets — the coverage hot path: one rule, a
    /// block of examples. `seed(k, bindings)` must fully establish seed
    /// `k`'s bindings (typically a reset plus head unification) and return
    /// whether the example is admissible; it is called up to twice per
    /// seed and must be deterministic. Returns one entry per seed: `None`
    /// where `seed` declined, otherwise exactly
    /// [`Prover::prove_compiled_reusing`]'s `(proved, stats)`.
    ///
    /// When the body is a single dense-predicate literal, retrieval plans
    /// for the whole block are built in one
    /// [`KnowledgeBase::fact_plan_batch`] pass — plan construction is
    /// never step-charged, so per-example stats stay bit-identical to the
    /// one-proof-at-a-time loop. Any other body shape falls back to
    /// per-seed proving.
    pub fn prove_compiled_batch(
        &self,
        goals: &CompiledGoals,
        n: usize,
        seed: &mut dyn FnMut(usize, &mut Bindings) -> bool,
        scratch: &mut Bindings,
    ) -> Vec<Option<(bool, ProofStats)>> {
        let single_pred = match goals.lits.first() {
            Some(l) if goals.lits.len() == 1 => match l.kind {
                LitKind::Pred(pid) => Some((l, pid)),
                _ => None,
            },
            _ => None,
        };
        let Some((goal, pid)) = single_pred else {
            return (0..n)
                .map(|k| seed(k, scratch).then(|| self.prove_compiled_reusing(goals, scratch)))
                .collect();
        };

        let mut guard = self.scratch.borrow_mut();
        let plan_scratch = &mut *guard;
        let arena = self.kb.arena();

        // Pass 1: per admissible seed, resolve the goal's probes under
        // that seed's bindings (probe resolution is step-free).
        let mut seeded: Vec<usize> = Vec::with_capacity(n);
        let mut all_probes: Vec<Vec<Probe>> = Vec::with_capacity(n);
        for k in 0..n {
            if seed(k, scratch) {
                scratch.ensure(goals.var_span.max(scratch.len() as VarId) as usize);
                let mut probes = plan_scratch.take_probes();
                probes.extend(goal.lit.args.iter().map(|a| scratch.probe(a, 0, arena)));
                seeded.push(k);
                all_probes.push(probes);
            }
        }
        // Pass 2: one batched planning pass for the whole block.
        let plans = self.kb.fact_plan_batch(pid, &all_probes, plan_scratch);

        // Pass 3: prove each admissible seed with its pre-built plan.
        let mut out: Vec<Option<(bool, ProofStats)>> = (0..n).map(|_| None).collect();
        for ((&k, plan), probes) in seeded.iter().zip(plans).zip(&all_probes) {
            let readmitted = seed(k, scratch);
            debug_assert!(readmitted, "seed must be deterministic");
            if !readmitted {
                plan_scratch.recycle(plan);
                continue;
            }
            let mut next_var: VarId = goals.var_span.max(scratch.len() as VarId);
            scratch.ensure(next_var as usize);
            let mut found = false;
            let mut ctx = Ctx {
                kb: self.kb,
                limits: self.limits,
                stats: ProofStats::default(),
                bindings: scratch,
                next_var: &mut next_var,
                plan_scratch: &mut *plan_scratch,
                all_ground_kernel: self.all_ground_kernel,
            };
            let rest = Frame {
                lits: &[],
                offset: 0,
                depth: 0,
                next: None,
            };
            ctx.solve_pred(pid, plan, probes, &goal.lit, 0, 0, &rest, &mut |_| {
                found = true;
                false // stop at first solution
            });
            out[k] = Some((found, ctx.stats));
        }
        for probes in all_probes {
            plan_scratch.recycle_probes(probes);
        }
        out
    }
}

struct Ctx<'a, 'v> {
    kb: &'a KnowledgeBase,
    limits: ProofLimits,
    stats: ProofStats,
    bindings: &'v mut Bindings,
    next_var: &'v mut VarId,
    /// Pooled plan buffers (`tried` vectors, merge scratch, probe vectors)
    /// — drawn per goal, returned when the goal's plan is consumed.
    plan_scratch: &'v mut PlanScratch,
    /// Whether the all-ground compare kernel may replace per-row
    /// `unify_term_id` (results are bit-identical either way; the toggle
    /// exists so the benchmark can measure the kernel against the path it
    /// replaced).
    all_ground_kernel: bool,
}

impl<'a> Ctx<'a, '_> {
    #[inline]
    fn tick(&mut self) -> bool {
        self.stats.steps += 1;
        if self.stats.steps > self.limits.max_steps {
            self.stats.aborted = true;
            false
        } else {
            true
        }
    }

    /// Bulk-charges `k` steps for candidates the retrieval plan skipped
    /// (each would have cost exactly one step and failed unification).
    /// Reproduces the per-candidate abort point: if the budget is crossed
    /// inside the run, steps land on `max_steps + 1` exactly as
    /// [`Ctx::tick`] would have left them.
    #[inline]
    fn charge(&mut self, k: u64) -> bool {
        if k == 0 {
            return true;
        }
        if k > self.limits.max_steps.saturating_sub(self.stats.steps) {
            self.stats.steps = self.limits.max_steps.saturating_add(1);
            self.stats.aborted = true;
            false
        } else {
            self.stats.steps += k;
            true
        }
    }

    /// Solves the goal stack; restores `bindings` to its entry state before
    /// returning, so callers' choice points stay clean.
    fn solve(
        &mut self,
        frame: Option<&Frame<'_>>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        let Some(f) = frame else {
            return if on_solution(self.bindings) {
                Control::More
            } else {
                Control::Done
            };
        };
        let Some((goal, rest_lits)) = f.lits.split_first() else {
            return self.solve(f.next, on_solution);
        };
        let goff = f.offset;
        let depth = f.depth;
        let rest = Frame {
            lits: rest_lits,
            offset: goff,
            depth,
            next: f.next,
        };

        let pid = match goal.kind {
            // Builtins: deterministic, at most one continuation; evaluated
            // offset-aware (no rename-apart clone).
            LitKind::Builtin(b) => {
                if !self.tick() {
                    return Control::Abort;
                }
                let mark = self.bindings.mark();
                let ok = solve_builtin_off(b, &goal.lit, goff, self.bindings, self.kb.symbols());
                let ctrl = if ok == Some(true) {
                    self.solve(Some(&rest), on_solution)
                } else {
                    Control::More
                };
                self.bindings.undo_to(mark);
                return ctrl;
            }
            // No KB entry existed at compile time: no facts, no rules, no
            // steps — the goal just fails (seed semantics).
            LitKind::Unknown => return Control::More,
            LitKind::Pred(pid) => pid,
        };

        let kb = self.kb;
        let glit = &goal.lit;

        // Resolve every goal argument to a `Probe` once: shared by plan
        // construction (every indexed position probes the cached id instead
        // of re-walking and re-hashing the argument) and, when the goal is
        // all ground over an all-regular relation, by the stripe compare
        // kernel.
        let mut probes = self.plan_scratch.take_probes();
        {
            let arena = kb.arena();
            let bindings = &*self.bindings;
            probes.extend(glit.args.iter().map(|a| bindings.probe(a, goff, arena)));
        }
        let plan = kb.fact_plan(pid, &probes, self.plan_scratch);
        let ctrl = self.solve_pred(pid, plan, &probes, glit, goff, depth, &rest, on_solution);
        self.plan_scratch.recycle_probes(probes);
        ctrl
    }

    /// Facts then rules for one dense-predicate goal — the shared tail of
    /// [`Ctx::solve`] and the batch runner
    /// ([`Prover::solutions_compiled_batch`], which injects a pre-built
    /// plan).
    #[allow(clippy::too_many_arguments)]
    fn solve_pred(
        &mut self,
        pid: PredId,
        plan: FactPlan<'a>,
        probes: &[Probe],
        glit: &Literal,
        goff: VarId,
        depth: u32,
        rest: &Frame<'_>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        // Facts, through the most selective available argument index; step
        // accounting stays pinned to the first-argument reference plan.
        // Candidates unify column-natively — goal arguments match straight
        // against the fact's arena-id tuple, no row literal involved.
        match self.solve_facts(pid, plan, probes, glit, goff, rest, on_solution) {
            Control::More => {}
            c => return c,
        }

        // Rules: rename apart via a fresh offset (the span is precompiled),
        // push the compiled body at depth+1.
        let kb = self.kb;
        for crule in kb.rules_compiled(pid) {
            if depth + 1 > self.limits.max_depth {
                self.stats.depth_cuts += 1;
                continue;
            }
            if !self.tick() {
                return Control::Abort;
            }
            let offset = *self.next_var;
            *self.next_var += crule.var_span;
            let mark = self.bindings.mark();
            if self
                .bindings
                .unify_literals_off(glit, goff, &crule.head, offset, false)
            {
                let body = Frame {
                    lits: &crule.body,
                    offset,
                    depth: depth + 1,
                    next: Some(rest),
                };
                match self.solve(Some(&body), on_solution) {
                    Control::More => {}
                    c => {
                        self.bindings.undo_to(mark);
                        return c;
                    }
                }
            }
            self.bindings.undo_to(mark);
        }

        Control::More
    }

    /// Enumerates one plan's fact candidates, then recycles the plan's
    /// buffers. Dispatches to the all-ground compare kernel when licensed.
    #[allow(clippy::too_many_arguments)]
    fn solve_facts(
        &mut self,
        pid: PredId,
        plan: FactPlan<'a>,
        probes: &[Probe],
        glit: &Literal,
        goff: VarId,
        rest: &Frame<'_>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        let facts = self.kb.fact_cols(pid);
        let ctrl = self.run_plan(&facts, &plan, probes, glit, goff, rest, on_solution);
        self.plan_scratch.recycle(plan);
        ctrl
    }

    /// The plan walk. Kernel licensing: when every goal argument resolves
    /// ground ([`Probe::is_ground`]) and every row is regular
    /// ([`FactCols::all_regular`]), unification binds nothing and a
    /// candidate matches iff each stripe cell equals the goal's probe id —
    /// so per-row [`crate::subst::Bindings::unify_term_id`] collapses to
    /// plain `u32` compares over contiguous stripes (block-masked for the
    /// full-relation scan), with identical solutions, order, and steps.
    #[allow(clippy::too_many_arguments)]
    fn run_plan(
        &mut self,
        facts: &FactCols<'a>,
        plan: &FactPlan<'a>,
        probes: &[Probe],
        glit: &Literal,
        goff: VarId,
        rest: &Frame<'_>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        let kernel =
            self.all_ground_kernel && facts.all_regular() && probes.iter().all(|p| p.is_ground());
        match plan {
            FactPlan::Empty => Control::More,
            FactPlan::All { n } if kernel => {
                self.scan_all_ground(facts, probes, *n, rest, on_solution)
            }
            FactPlan::All { n } => {
                for row in 0..*n {
                    match self.try_fact(facts, row, glit, goff, rest, on_solution) {
                        Control::More => {}
                        c => return c,
                    }
                }
                Control::More
            }
            FactPlan::Seq { indexed, unindexed } => {
                for &row in indexed.iter().chain(unindexed.iter()) {
                    let ctrl = if kernel {
                        self.try_fact_ground(facts, probes, row, rest, on_solution)
                    } else {
                        self.try_fact(facts, row, glit, goff, rest, on_solution)
                    };
                    match ctrl {
                        Control::More => {}
                        c => return c,
                    }
                }
                Control::More
            }
            FactPlan::Narrowed { tried, total } => {
                let mut charged: u64 = 0;
                for &(row, rank) in tried {
                    if !self.charge(rank - charged) {
                        return Control::Abort;
                    }
                    charged = rank;
                    let ctrl = if kernel {
                        self.try_fact_ground(facts, probes, row, rest, on_solution)
                    } else {
                        self.try_fact(facts, row, glit, goff, rest, on_solution)
                    };
                    match ctrl {
                        Control::More => {}
                        c => return c,
                    }
                    charged += 1;
                }
                if !self.charge(total - charged) {
                    return Control::Abort;
                }
                Control::More
            }
        }
    }

    /// The vectorizable all-ground scan for a full-relation plan: rows are
    /// tested in 64-row blocks via [`FactCols::match_mask`] — per-stripe
    /// chunked equality the compiler autovectorizes — and only matching
    /// rows take the per-candidate [`Ctx::tick`]/recurse path. Failed rows
    /// are bulk-charged in reference order ([`Ctx::charge`] lands on the
    /// same abort point consecutive ticks would), so
    /// `(proved, steps, depth_cuts, aborted)` stays bit-identical.
    fn scan_all_ground(
        &mut self,
        facts: &FactCols<'a>,
        probes: &[Probe],
        n: u32,
        rest: &Frame<'_>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        // Failed candidates seen since the last charge; charging is
        // deferred to the next match (or the end of the scan), which cannot
        // change the observable abort point — failed rows produce no
        // solutions and touch no bindings.
        let mut pending: u64 = 0;
        let mut base: u32 = 0;
        while base < n {
            let blk = (n - base).min(64);
            let mut mask = facts.match_mask(probes, base, blk);
            let mut prev: u32 = 0;
            while mask != 0 {
                let bit = mask.trailing_zeros();
                mask &= mask - 1;
                pending += u64::from(bit - prev);
                prev = bit + 1;
                if !self.charge(pending) {
                    return Control::Abort;
                }
                pending = 0;
                debug_assert!(facts.row_matches(probes, base + bit));
                if !self.tick() {
                    return Control::Abort;
                }
                match self.solve(Some(rest), on_solution) {
                    Control::More => {}
                    c => return c,
                }
            }
            pending += u64::from(blk - prev);
            base += blk;
        }
        if !self.charge(pending) {
            return Control::Abort;
        }
        Control::More
    }

    /// All-ground kernel candidate for an index-selected row: tick,
    /// stripe-compare, recurse. No binding mark is taken — an all-ground
    /// match binds nothing, so there is nothing to undo.
    #[inline]
    fn try_fact_ground(
        &mut self,
        facts: &FactCols<'a>,
        probes: &[Probe],
        row: u32,
        rest: &Frame<'_>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        if !self.tick() {
            return Control::Abort;
        }
        if facts.row_matches(probes, row) {
            self.solve(Some(rest), on_solution)
        } else {
            Control::More
        }
    }

    /// One fact candidate: tick, unify the goal's arguments directly
    /// against the fact's column cells (arena ids), recurse on success. The
    /// rare irregular row — a fact with a non-ground argument, which the
    /// arena cannot hold — falls back to row-at-a-time literal unification
    /// against its stored original.
    #[inline]
    fn try_fact(
        &mut self,
        facts: &FactCols<'a>,
        row: u32,
        goal: &Literal,
        goff: VarId,
        rest: &Frame<'_>,
        on_solution: &mut dyn FnMut(&mut Bindings) -> bool,
    ) -> Control {
        if !self.tick() {
            return Control::Abort;
        }
        let mark = self.bindings.mark();
        let ok = match facts.irregular_row(row) {
            Some(fact) => self.bindings.unify_literals_off(goal, goff, fact, 0, false),
            None => {
                let arena = facts.arena();
                goal.args.iter().enumerate().all(|(p, a)| {
                    self.bindings
                        .unify_term_id(a, goff, facts.cell(p, row), arena)
                })
            }
        };
        if ok {
            match self.solve(Some(rest), on_solution) {
                Control::More => {}
                c => {
                    self.bindings.undo_to(mark);
                    return c;
                }
            }
        }
        self.bindings.undo_to(mark);
        Control::More
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::symbol::SymbolTable;
    use crate::term::Term;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    fn family_kb() -> (SymbolTable, KnowledgeBase) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let c = |n: &str| Term::Sym(t.intern(n));
        for (a, b) in [("ann", "bob"), ("bob", "carl"), ("carl", "dee")] {
            kb.assert_fact(lit(&t, "parent", vec![c(a), c(b)]));
        }
        // ancestor(X,Y) :- parent(X,Y).
        kb.assert_rule(Clause::new(
            lit(&t, "ancestor", vec![Term::Var(0), Term::Var(1)]),
            vec![lit(&t, "parent", vec![Term::Var(0), Term::Var(1)])],
        ));
        // ancestor(X,Z) :- parent(X,Y), ancestor(Y,Z).
        kb.assert_rule(Clause::new(
            lit(&t, "ancestor", vec![Term::Var(0), Term::Var(2)]),
            vec![
                lit(&t, "parent", vec![Term::Var(0), Term::Var(1)]),
                lit(&t, "ancestor", vec![Term::Var(1), Term::Var(2)]),
            ],
        ));
        (t, kb)
    }

    #[test]
    fn facts_prove_directly() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let (ok, st) = p.prove_ground(&lit(&t, "parent", vec![c("ann"), c("bob")]));
        assert!(ok);
        assert!(st.steps >= 1);
        let (ok, _) = p.prove_ground(&lit(&t, "parent", vec![c("bob"), c("ann")]));
        assert!(!ok);
    }

    #[test]
    fn recursive_rules_chain() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let (ok, _) = p.prove_ground(&lit(&t, "ancestor", vec![c("ann"), c("dee")]));
        assert!(ok);
        let (ok, _) = p.prove_ground(&lit(&t, "ancestor", vec![c("dee"), c("ann")]));
        assert!(!ok);
    }

    #[test]
    fn depth_bound_cuts_recursion() {
        let (t, kb) = family_kb();
        // Depth 1 allows only the base case: ancestor(ann,dee) needs 3 hops.
        let p = Prover::new(
            &kb,
            ProofLimits {
                max_depth: 1,
                max_steps: 10_000,
            },
        );
        let c = |n: &str| Term::Sym(t.intern(n));
        let (ok, st) = p.prove_ground(&lit(&t, "ancestor", vec![c("ann"), c("dee")]));
        assert!(!ok);
        assert!(st.depth_cuts > 0);
        let (ok, _) = p.prove_ground(&lit(&t, "ancestor", vec![c("ann"), c("bob")]));
        assert!(ok);
    }

    #[test]
    fn step_budget_aborts() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        // loop(X) :- loop(X). — infinite without bounds.
        kb.assert_rule(Clause::new(
            lit(&t, "loop", vec![Term::Var(0)]),
            vec![lit(&t, "loop", vec![Term::Var(0)])],
        ));
        let p = Prover::new(
            &kb,
            ProofLimits {
                max_depth: u32::MAX,
                max_steps: 500,
            },
        );
        let (ok, st) = p.prove_ground(&lit(&t, "loop", vec![Term::Int(1)]));
        assert!(!ok);
        assert!(st.aborted);
        assert!(st.steps >= 500);
    }

    #[test]
    fn solutions_enumerates_with_recall_bound() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let goal = lit(&t, "parent", vec![Term::Var(0), Term::Var(1)]);
        let (sols, _) = p.solutions(&goal, 10);
        assert_eq!(sols.len(), 3);
        let (sols, _) = p.solutions(&goal, 2);
        assert_eq!(sols.len(), 2);
        let (sols, _) = p.solutions(&goal, 0);
        assert!(sols.is_empty());
    }

    #[test]
    fn solutions_are_deduplicated() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1), Term::Int(1)]));
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1), Term::Int(2)]));
        // p(X) :- q(X, _): X=1 twice, but only one distinct instance p(1).
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0), Term::Var(1)])],
        ));
        let p = Prover::new(&kb, ProofLimits::default());
        let (sols, _) = p.solutions(&lit(&t, "p", vec![Term::Var(0)]), 10);
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn builtins_interleave_with_facts() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=5 {
            kb.assert_fact(lit(&t, "val", vec![Term::Int(i)]));
        }
        // big(X) :- val(X), X >= 4.
        kb.assert_rule(Clause::new(
            lit(&t, "big", vec![Term::Var(0)]),
            vec![
                lit(&t, "val", vec![Term::Var(0)]),
                lit(&t, ">=", vec![Term::Var(0), Term::Int(4)]),
            ],
        ));
        let p = Prover::new(&kb, ProofLimits::default());
        let (sols, _) = p.solutions(&lit(&t, "big", vec![Term::Var(0)]), 10);
        assert_eq!(sols.len(), 2);
    }

    /// The allocation-free borrowed-goal path must agree with the owned
    /// compile path on solutions and stats (the saturation contract).
    #[test]
    fn borrowed_compiled_solutions_match_owned() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let goals = [
            lit(&t, "ancestor", vec![Term::Var(0), Term::Var(1)]),
            lit(&t, "parent", vec![Term::Sym(t.intern("ann")), Term::Var(0)]),
            lit(&t, "missing", vec![Term::Var(0)]),
        ];
        let mut scratch = Bindings::new();
        for goal in goals {
            for max in [0, 1, 5] {
                let owned = p.solutions_reusing(&goal, max, &mut scratch);
                let compiled = kb.compile_query(goal.clone());
                let borrowed = p.solutions_compiled_reusing(&compiled, max, &mut scratch);
                assert_eq!(owned, borrowed, "diverged on {goal:?} max {max}");
            }
        }
    }

    #[test]
    fn prove_with_prebound_head_vars() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        // Simulate coverage: head var 0 bound to ann, prove parent(V0, bob).
        let mut b = Bindings::new();
        b.bind(0, Term::Sym(t.intern("ann")));
        let body = vec![lit(
            &t,
            "parent",
            vec![Term::Var(0), Term::Sym(t.intern("bob"))],
        )];
        let (ok, _) = p.prove_with_bindings(&body, b);
        assert!(ok);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = ProofStats {
            steps: 5,
            depth_cuts: 1,
            aborted: false,
        };
        a.absorb(ProofStats {
            steps: 7,
            depth_cuts: 0,
            aborted: true,
        });
        assert_eq!(a.steps, 12);
        assert_eq!(a.depth_cuts, 1);
        assert!(a.aborted);
    }

    #[test]
    fn reused_bindings_give_identical_results() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let goals = [
            lit(&t, "ancestor", vec![c("ann"), c("dee")]),
            lit(&t, "ancestor", vec![c("bob"), c("dee")]),
            lit(&t, "ancestor", vec![c("dee"), c("ann")]),
        ];
        let mut scratch = Bindings::new();
        for g in &goals {
            let fresh = p.prove_ground(g);
            scratch.reset(0);
            let reused = p.prove_reusing(std::slice::from_ref(g), &mut scratch);
            assert_eq!(fresh.0, reused.0);
            assert_eq!(fresh.1.steps, reused.1.steps);
        }
    }

    #[test]
    fn compiled_goals_match_one_shot_proofs() {
        let (t, kb) = family_kb();
        let p = Prover::new(&kb, ProofLimits::default());
        let c = |n: &str| Term::Sym(t.intern(n));
        let goals = vec![lit(&t, "ancestor", vec![Term::Var(0), c("dee")])];
        let compiled = p.compile(&goals);
        let mut scratch = Bindings::new();
        for who in ["ann", "bob", "carl", "dee"] {
            scratch.reset(1);
            scratch.bind(0, c(who));
            let (ok_c, st_c) = p.prove_compiled_reusing(&compiled, &mut scratch);
            let mut fresh = Bindings::new();
            fresh.bind(0, c(who));
            let (ok_f, st_f) = p.prove_with_bindings(&goals, fresh);
            assert_eq!((ok_c, st_c), (ok_f, st_f), "seed {who} diverged");
        }
    }

    /// Second-argument-bound retrieval must agree with the reference prover
    /// on the full stats tuple even under tight step budgets (the
    /// bulk-charge path lands on the same abort point).
    #[test]
    fn narrowed_plans_stay_bit_identical_to_reference() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..20i64 {
            for a in 0..12i64 {
                kb.assert_fact(lit(
                    &t,
                    "bond",
                    vec![
                        Term::Int(m),
                        Term::Int(m * 100 + a),
                        Term::Int(m * 100 + a + 1),
                        Term::Int(a % 3),
                    ],
                ));
            }
        }
        let goals = [
            // Second arg bound, first unbound: reference scans all facts.
            lit(
                &t,
                "bond",
                vec![Term::Var(0), Term::Int(507), Term::Var(1), Term::Var(2)],
            ),
            // Third arg bound.
            lit(
                &t,
                "bond",
                vec![Term::Var(0), Term::Var(1), Term::Int(1103), Term::Var(2)],
            ),
            // Both bound, no hit.
            lit(
                &t,
                "bond",
                vec![Term::Int(3), Term::Int(9999), Term::Var(0), Term::Var(1)],
            ),
        ];
        for max_steps in [2, 17, 63, 100, 150, 239, 240, 241, 5000] {
            let limits = ProofLimits {
                max_depth: 8,
                max_steps,
            };
            let new = Prover::new(&kb, limits);
            let old = reference::Prover::new(&kb, limits);
            for g in &goals {
                let a = new.prove_ground(g);
                let b = old.prove_ground(g);
                assert_eq!(a, b, "goal {g:?} max_steps {max_steps} diverged");
            }
        }
    }
}
