//! θ-subsumption (Plotkin 1970) — the generality order ILP search spaces
//! are structured by (paper §3.1).
//!
//! Clause `C` θ-subsumes clause `D` iff there is a substitution θ such that
//! `Cθ ⊆ D` (literals compared as sets). `C` is then *at least as general*
//! as `D`. Deciding subsumption is NP-complete in general; clauses here are
//! short (bounded by the ILP length constraint), so a backtracking matcher
//! with predicate-key pruning is entirely adequate.

use crate::clause::{Clause, Literal};
use crate::term::{Term, VarId};
use std::collections::HashMap;

/// One-way matcher: only variables of the *subsumer* may bind; variables of
/// the subsumee behave as constants (standard skolemization-free trick).
#[derive(Default)]
struct Matcher {
    bound: HashMap<VarId, Term>,
    trail: Vec<VarId>,
}

impl Matcher {
    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail non-empty");
            self.bound.remove(&v);
        }
    }

    /// Matches subsumer term `a` against subsumee term `b`; `b` is rigid.
    fn match_term(&mut self, a: &Term, b: &Term) -> bool {
        match a {
            Term::Var(v) => {
                if let Some(t) = self.bound.get(v) {
                    // Must map consistently: previously-bound image equals b.
                    t == b
                } else {
                    self.bound.insert(*v, b.clone());
                    self.trail.push(*v);
                    true
                }
            }
            Term::Sym(x) => matches!(b, Term::Sym(y) if x == y),
            Term::Int(x) => matches!(b, Term::Int(y) if x == y),
            Term::Float(x) => matches!(b, Term::Float(y) if x == y),
            Term::App(f, xs) => match b {
                Term::App(g, ys) if f == g && xs.len() == ys.len() => {
                    xs.iter().zip(ys.iter()).all(|(x, y)| self.match_term(x, y))
                }
                _ => false,
            },
        }
    }

    fn match_literal(&mut self, a: &Literal, b: &Literal) -> bool {
        if a.pred != b.pred || a.args.len() != b.args.len() {
            return false;
        }
        let m = self.mark();
        if a.args
            .iter()
            .zip(b.args.iter())
            .all(|(x, y)| self.match_term(x, y))
        {
            true
        } else {
            self.undo_to(m);
            false
        }
    }
}

/// Returns true iff `general` θ-subsumes `specific`.
///
/// The head must map onto the head; each body literal of `general` must map
/// onto *some* body literal of `specific` under a single consistent θ.
pub fn subsumes(general: &Clause, specific: &Clause) -> bool {
    // Standardize apart: shift the subsumer's variables above the subsumee's
    // so a subsumer variable is never confused with an identical subsumee id.
    let shift = specific.var_span();
    let general = general.offset_vars(shift);

    let mut m = Matcher::default();
    if !m.match_literal(&general.head, &specific.head) {
        return false;
    }
    // Order body literals most-constrained first: fewer candidate targets
    // means earlier failure.
    let mut order: Vec<usize> = (0..general.body.len()).collect();
    let candidates: Vec<Vec<usize>> = general
        .body
        .iter()
        .map(|gl| {
            specific
                .body
                .iter()
                .enumerate()
                .filter(|(_, sl)| sl.key() == gl.key())
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    order.sort_by_key(|&i| candidates[i].len());

    fn assign(
        m: &mut Matcher,
        order: &[usize],
        pos: usize,
        general: &Clause,
        specific: &Clause,
        candidates: &[Vec<usize>],
    ) -> bool {
        let Some(&gi) = order.get(pos) else {
            return true;
        };
        for &si in &candidates[gi] {
            let mark = m.mark();
            if m.match_literal(&general.body[gi], &specific.body[si])
                && assign(m, order, pos + 1, general, specific, candidates)
            {
                return true;
            }
            m.undo_to(mark);
        }
        false
    }

    assign(&mut m, &order, 0, &general, specific, &candidates)
}

/// True when the clauses are equal up to a consistent renaming of variables.
pub fn variants(a: &Clause, b: &Clause) -> bool {
    a.normalize() == b.normalize()
}

/// True when the clauses subsume each other (θ-equivalence).
pub fn equivalent(a: &Clause, b: &Clause) -> bool {
    subsumes(a, b) && subsumes(b, a)
}

/// Plotkin reduction: removes body literals that are redundant under
/// θ-subsumption, returning an equivalent, minimal clause.
pub fn reduce(c: &Clause) -> Clause {
    let mut cur = c.clone();
    let mut i = 0;
    while i < cur.body.len() {
        let mut shorter = cur.clone();
        shorter.body.remove(i);
        // Removing a literal always generalizes; the removal is sound iff the
        // shorter clause is still subsumed by the original (θ-equivalent).
        if subsumes(&cur, &shorter) {
            cur = shorter;
        } else {
            i += 1;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    fn setup() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn clause_subsumes_itself() {
        let t = setup();
        let c = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0), Term::Var(1)])],
        );
        assert!(subsumes(&c, &c));
    }

    #[test]
    fn more_general_subsumes_specialization() {
        let t = setup();
        // p(X) :- q(X,Y)   subsumes   p(X) :- q(X,a), r(X)
        let g = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0), Term::Var(1)])],
        );
        let s = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0), Term::Sym(t.intern("a"))]),
                lit(&t, "r", vec![Term::Var(0)]),
            ],
        );
        assert!(subsumes(&g, &s));
        assert!(!subsumes(&s, &g));
    }

    #[test]
    fn theta_must_be_consistent_across_literals() {
        let t = setup();
        // p(X) :- q(X), r(X)  does NOT subsume  p(a) :- q(a), r(b)
        let g = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0)]),
                lit(&t, "r", vec![Term::Var(0)]),
            ],
        );
        let s = Clause::new(
            lit(&t, "p", vec![Term::Sym(t.intern("a"))]),
            vec![
                lit(&t, "q", vec![Term::Sym(t.intern("a"))]),
                lit(&t, "r", vec![Term::Sym(t.intern("b"))]),
            ],
        );
        assert!(!subsumes(&g, &s));
    }

    #[test]
    fn subsumee_vars_are_rigid() {
        let t = setup();
        // p(a) does not subsume p(X): constants cannot generalize to vars.
        let g = Clause::fact(lit(&t, "p", vec![Term::Sym(t.intern("a"))]));
        let s = Clause::fact(lit(&t, "p", vec![Term::Var(0)]));
        assert!(!subsumes(&g, &s));
        assert!(subsumes(&s, &g));
    }

    #[test]
    fn same_variable_ids_do_not_alias() {
        let t = setup();
        // Both clauses use Var(0); standardize-apart must keep them distinct.
        let g = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        );
        let s = Clause::new(
            lit(&t, "p", vec![Term::Sym(t.intern("c"))]),
            vec![lit(&t, "q", vec![Term::Sym(t.intern("c"))])],
        );
        assert!(subsumes(&g, &s));
    }

    #[test]
    fn variant_detection() {
        let t = setup();
        let a = Clause::new(
            lit(&t, "p", vec![Term::Var(2)]),
            vec![lit(&t, "q", vec![Term::Var(2), Term::Var(5)])],
        );
        let b = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0), Term::Var(1)])],
        );
        assert!(variants(&a, &b));
        let c = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(1), Term::Var(0)])],
        );
        assert!(!variants(&a, &c));
    }

    #[test]
    fn reduction_removes_duplicate_literal() {
        let t = setup();
        // p(X) :- q(X,Y), q(X,Z)  reduces to  p(X) :- q(X,Y)
        let c = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0), Term::Var(1)]),
                lit(&t, "q", vec![Term::Var(0), Term::Var(2)]),
            ],
        );
        let r = reduce(&c);
        assert_eq!(r.body.len(), 1);
        assert!(equivalent(&c, &r));
    }

    #[test]
    fn reduction_keeps_needed_literals() {
        let t = setup();
        let c = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0)]),
                lit(&t, "r", vec![Term::Var(0)]),
            ],
        );
        assert_eq!(reduce(&c).body.len(), 2);
    }
}
