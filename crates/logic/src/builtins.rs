//! Arithmetic and comparison builtins.
//!
//! ILP background knowledge leans on numeric tests (`Charge >= 0.3`,
//! `Size1 < Size2`) and occasionally `is/2`. All builtins here are
//! deterministic: they either fail or succeed exactly once, possibly
//! binding variables (`is`, `=`).

use crate::clause::Literal;
use crate::fxhash::FxHashMap;
use crate::subst::{Bindings, View};
use crate::symbol::{SymbolId, SymbolTable};
use crate::term::{Term, VarId};

/// The builtin predicates understood by the prover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// `X = Y` — unification.
    Unify,
    /// `X \= Y` — not unifiable (checked without residue; both sides should
    /// be sufficiently instantiated).
    NotUnify,
    /// `X < Y` on numbers.
    Lt,
    /// `X =< Y` on numbers.
    Le,
    /// `X > Y` on numbers.
    Gt,
    /// `X >= Y` on numbers.
    Ge,
    /// `X =:= Y` — arithmetic equality.
    ArithEq,
    /// `X =\= Y` — arithmetic inequality.
    ArithNeq,
    /// `X is Expr` — evaluate and unify.
    Is,
    /// `true/0`.
    True,
    /// `fail/0`.
    Fail,
}

impl Builtin {
    /// Stable wire code of this builtin, for serialized compiled clauses
    /// (see [`crate::snapshot::KbSnapshot`]). Codes are part of the snapshot
    /// format: append new builtins, never renumber.
    pub fn code(self) -> u8 {
        match self {
            Builtin::Unify => 0,
            Builtin::NotUnify => 1,
            Builtin::Lt => 2,
            Builtin::Le => 3,
            Builtin::Gt => 4,
            Builtin::Ge => 5,
            Builtin::ArithEq => 6,
            Builtin::ArithNeq => 7,
            Builtin::Is => 8,
            Builtin::True => 9,
            Builtin::Fail => 10,
        }
    }

    /// Inverse of [`Builtin::code`]; `None` for an unknown code (a corrupt
    /// or future-format snapshot).
    pub fn from_code(code: u8) -> Option<Builtin> {
        Some(match code {
            0 => Builtin::Unify,
            1 => Builtin::NotUnify,
            2 => Builtin::Lt,
            3 => Builtin::Le,
            4 => Builtin::Gt,
            5 => Builtin::Ge,
            6 => Builtin::ArithEq,
            7 => Builtin::ArithNeq,
            8 => Builtin::Is,
            9 => Builtin::True,
            10 => Builtin::Fail,
            _ => return None,
        })
    }
}

/// Maps predicate symbols to builtins. Both the Prolog spellings (`=<`) and
/// the word aliases used in generated datasets (`lteq`) are registered.
#[derive(Clone, Debug)]
pub struct BuiltinTable {
    /// Dense, indexed by `SymbolId`: the table is probed once per goal the
    /// prover solves, and builtin names are interned at KB creation, so
    /// their ids are small — an array probe beats any hash.
    dense: Vec<Option<Builtin>>,
}

impl BuiltinTable {
    /// Interns every builtin name into `syms` and builds the lookup table.
    pub fn new(syms: &SymbolTable) -> Self {
        let mut map = FxHashMap::default();
        let mut reg = |name: &str, b: Builtin| {
            map.insert(syms.intern(name), b);
        };
        reg("=", Builtin::Unify);
        reg("\\=", Builtin::NotUnify);
        reg("<", Builtin::Lt);
        reg("=<", Builtin::Le);
        reg(">", Builtin::Gt);
        reg(">=", Builtin::Ge);
        reg("=:=", Builtin::ArithEq);
        reg("=\\=", Builtin::ArithNeq);
        reg("is", Builtin::Is);
        reg("true", Builtin::True);
        reg("fail", Builtin::Fail);
        // Word aliases (friendlier for generated data files).
        reg("lt", Builtin::Lt);
        reg("lteq", Builtin::Le);
        reg("gt", Builtin::Gt);
        reg("gteq", Builtin::Ge);
        reg("neq", Builtin::NotUnify);
        let top = map
            .keys()
            .map(|s: &SymbolId| s.index())
            .max()
            .expect("builtins registered");
        let mut dense = vec![None; top + 1];
        for (sym, b) in map {
            dense[sym.index()] = Some(b);
        }
        BuiltinTable { dense }
    }

    /// Looks up the builtin for a predicate symbol.
    #[inline]
    pub fn get(&self, pred: SymbolId) -> Option<Builtin> {
        self.dense.get(pred.index()).copied().flatten()
    }

    /// True when `pred` names a builtin.
    #[inline]
    pub fn is_builtin(&self, pred: SymbolId) -> bool {
        self.get(pred).is_some()
    }
}

/// A number produced by arithmetic evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Num {
    fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Float(f) => f,
        }
    }

    fn to_term(self) -> Term {
        match self {
            Num::Int(i) => Term::Int(i),
            Num::Float(f) => Term::Float(crate::term::F64(f)),
        }
    }
}

/// Evaluates an arithmetic expression under `bindings`.
///
/// Supported: numeric constants, bound variables, and the functors
/// `+/2, -/2, *-/2, //2, mod/2, min/2, max/2, abs/1, -/1`.
pub fn eval_arith(t: &Term, bindings: &Bindings, syms: &SymbolTable) -> Option<Num> {
    eval_arith_off(t, 0, bindings, syms)
}

/// Offset-aware [`eval_arith`]: every variable in `t` is shifted by `off`
/// on the fly, so expressions inside knowledge-base rule bodies evaluate
/// without a rename-apart clone of the term tree.
pub fn eval_arith_off(
    t: &Term,
    off: VarId,
    bindings: &Bindings,
    syms: &SymbolTable,
) -> Option<Num> {
    match bindings.resolve_view(t, off) {
        View::Int(i) => Some(Num::Int(i)),
        View::Float(f) => Some(Num::Float(f.0)),
        View::Var(_) | View::Sym(_) => None,
        // Slot-resident terms carry absolute variable ids (offset 0).
        View::App(app, app_off) => eval_app(app, app_off, bindings, syms),
        View::OwnedApp(app) => eval_app(&app, 0, bindings, syms),
    }
}

/// Evaluates a compound arithmetic functor whose variables are at `off`.
fn eval_app(t: &Term, off: VarId, bindings: &Bindings, syms: &SymbolTable) -> Option<Num> {
    let Term::App(f, args) = t else {
        unreachable!("eval_app called on non-compound");
    };
    let name = syms.name(*f);
    let ev = |i: usize| eval_arith_off(&args[i], off, bindings, syms);
    match (&*name, args.len()) {
        ("+", 2) => bin(ev(0)?, ev(1)?, |a, b| a + b, |a, b| a.checked_add(b)),
        ("-", 2) => bin(ev(0)?, ev(1)?, |a, b| a - b, |a, b| a.checked_sub(b)),
        ("*", 2) => bin(ev(0)?, ev(1)?, |a, b| a * b, |a, b| a.checked_mul(b)),
        ("/", 2) => {
            let a = ev(0)?;
            let b = ev(1)?;
            let d = b.as_f64();
            if d == 0.0 {
                return None;
            }
            Some(Num::Float(a.as_f64() / d))
        }
        ("mod", 2) => match (ev(0)?, ev(1)?) {
            (Num::Int(x), Num::Int(y)) if y != 0 => Some(Num::Int(x.rem_euclid(y))),
            _ => None,
        },
        ("min", 2) => {
            let a = ev(0)?;
            let b = ev(1)?;
            Some(if a.as_f64() <= b.as_f64() { a } else { b })
        }
        ("max", 2) => {
            let a = ev(0)?;
            let b = ev(1)?;
            Some(if a.as_f64() >= b.as_f64() { a } else { b })
        }
        ("abs", 1) => match ev(0)? {
            Num::Int(i) => Some(Num::Int(i.abs())),
            Num::Float(f) => Some(Num::Float(f.abs())),
        },
        ("-", 1) => match ev(0)? {
            Num::Int(i) => Some(Num::Int(-i)),
            Num::Float(f) => Some(Num::Float(-f)),
        },
        _ => None,
    }
}

fn bin(
    a: Num,
    b: Num,
    ff: impl Fn(f64, f64) -> f64,
    ii: impl Fn(i64, i64) -> Option<i64>,
) -> Option<Num> {
    match (a, b) {
        (Num::Int(x), Num::Int(y)) => ii(x, y).map(Num::Int),
        _ => Some(Num::Float(ff(a.as_f64(), b.as_f64()))),
    }
}

/// Executes builtin `b` on `goal` under `bindings`.
///
/// Returns `Some(true)` on success (possibly binding variables), `Some(false)`
/// on clean failure, and `None` when the goal is insufficiently instantiated
/// (treated as failure by the bounded prover, matching its resource-bounded
/// semantics).
pub fn solve_builtin(
    b: Builtin,
    goal: &Literal,
    bindings: &mut Bindings,
    syms: &SymbolTable,
) -> Option<bool> {
    solve_builtin_off(b, goal, 0, bindings, syms)
}

/// Offset-aware [`solve_builtin`]: every variable in `goal` is shifted by
/// `goff` on the fly. This is how the optimized prover runs builtins inside
/// renamed-apart rule bodies without cloning the goal literal (the seed
/// semantics cloned via `offset_vars`; results and bindings are identical).
pub fn solve_builtin_off(
    b: Builtin,
    goal: &Literal,
    goff: VarId,
    bindings: &mut Bindings,
    syms: &SymbolTable,
) -> Option<bool> {
    match b {
        Builtin::True => Some(true),
        Builtin::Fail => Some(false),
        Builtin::Unify => {
            if goal.args.len() != 2 {
                return None;
            }
            Some(bindings.unify_pair(&goal.args[0], goff, &goal.args[1], goff, false))
        }
        Builtin::NotUnify => {
            if goal.args.len() != 2 {
                return None;
            }
            let mark = bindings.mark();
            let unified = bindings.unify_off(&goal.args[0], goff, &goal.args[1], goff, false);
            bindings.undo_to(mark);
            Some(!unified)
        }
        Builtin::Is => {
            if goal.args.len() != 2 {
                return None;
            }
            let v = eval_arith_off(&goal.args[1], goff, bindings, syms)?;
            Some(bindings.unify_pair(&goal.args[0], goff, &v.to_term(), 0, false))
        }
        Builtin::Lt
        | Builtin::Le
        | Builtin::Gt
        | Builtin::Ge
        | Builtin::ArithEq
        | Builtin::ArithNeq => {
            if goal.args.len() != 2 {
                return None;
            }
            let x = eval_arith_off(&goal.args[0], goff, bindings, syms)?.as_f64();
            let y = eval_arith_off(&goal.args[1], goff, bindings, syms)?.as_f64();
            Some(match b {
                Builtin::Lt => x < y,
                Builtin::Le => x <= y,
                Builtin::Gt => x > y,
                Builtin::Ge => x >= y,
                Builtin::ArithEq => x == y,
                Builtin::ArithNeq => x != y,
                _ => unreachable!("numeric comparison"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SymbolTable, BuiltinTable) {
        let t = SymbolTable::new();
        let b = BuiltinTable::new(&t);
        (t, b)
    }

    #[test]
    fn registry_covers_spellings_and_aliases() {
        let (t, b) = setup();
        assert_eq!(b.get(t.intern("=<")), Some(Builtin::Le));
        assert_eq!(b.get(t.intern("lteq")), Some(Builtin::Le));
        assert_eq!(b.get(t.intern("gteq")), Some(Builtin::Ge));
        assert_eq!(b.get(t.intern("atm")), None);
    }

    #[test]
    fn arith_eval_mixed_types() {
        let (t, _) = setup();
        let bnd = Bindings::new();
        let plus = t.intern("+");
        let e = Term::app(plus, vec![Term::Int(1), Term::Float(crate::term::F64(0.5))]);
        assert_eq!(eval_arith(&e, &bnd, &t), Some(Num::Float(1.5)));
        let e2 = Term::app(plus, vec![Term::Int(1), Term::Int(2)]);
        assert_eq!(eval_arith(&e2, &bnd, &t), Some(Num::Int(3)));
    }

    #[test]
    fn arith_on_unbound_var_is_none() {
        let (t, _) = setup();
        let bnd = Bindings::new();
        assert_eq!(eval_arith(&Term::Var(0), &bnd, &t), None);
    }

    #[test]
    fn comparison_and_is() {
        let (t, b) = setup();
        let mut bnd = Bindings::new();
        let lt = Literal::new(t.intern("<"), vec![Term::Int(1), Term::Int(2)]);
        assert_eq!(
            solve_builtin(b.get(lt.pred).unwrap(), &lt, &mut bnd, &t),
            Some(true)
        );

        let is = Literal::new(
            t.intern("is"),
            vec![
                Term::Var(0),
                Term::app(t.intern("*"), vec![Term::Int(3), Term::Int(4)]),
            ],
        );
        assert_eq!(solve_builtin(Builtin::Is, &is, &mut bnd, &t), Some(true));
        assert_eq!(bnd.resolve(&Term::Var(0)), Term::Int(12));
    }

    #[test]
    fn not_unify_leaves_no_bindings() {
        let (t, _) = setup();
        let mut bnd = Bindings::new();
        let g = Literal::new(t.intern("\\="), vec![Term::Var(0), Term::Int(1)]);
        // X \= 1 with X unbound: they unify, so \= fails...
        assert_eq!(
            solve_builtin(Builtin::NotUnify, &g, &mut bnd, &t),
            Some(false)
        );
        // ...and must not leave X bound.
        assert!(bnd.lookup(0).is_none());
    }

    #[test]
    fn division_by_zero_fails() {
        let (t, _) = setup();
        let bnd = Bindings::new();
        let e = Term::app(t.intern("/"), vec![Term::Int(1), Term::Int(0)]);
        assert_eq!(eval_arith(&e, &bnd, &t), None);
    }
}
