//! A small Prolog-syntax reader.
//!
//! Covers the fragment ILP applications need: facts, Horn rules with `:-`
//! and `,`, integers, floats, quoted atoms, variables, infix comparison
//! operators (`<`, `=<`, `>`, `>=`, `=:=`, `=\=`, `=`, `\=`, `is`), and
//! arithmetic expressions with the usual precedence (`+ - * / mod`).
//! Comments: `% line` and `/* block */`.

use crate::clause::{Clause, Literal};
use crate::symbol::SymbolTable;
use crate::term::{Term, VarId, F64};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    Comma,
    Dot,
    Neck, // :-
    Op(&'static str),
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(Tok, usize, usize)>, ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Tok::Neck
                } else {
                    return Err(self.err("expected ':-'"));
                }
            }
            b'\'' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => break,
                        Some(ch) => s.push(ch as char),
                        None => return Err(self.err("unterminated quoted atom")),
                    }
                }
                Tok::Atom(s)
            }
            b'0'..=b'9' => self.lex_number()?,
            b'_' | b'A'..=b'Z' => {
                let s = self.lex_ident();
                Tok::Var(s)
            }
            b'a'..=b'z' => {
                let s = self.lex_ident();
                Tok::Atom(s)
            }
            b'=' => {
                self.bump();
                match self.peek() {
                    Some(b'<') => {
                        self.bump();
                        Tok::Op("=<")
                    }
                    Some(b':') => {
                        self.bump();
                        if self.bump() != Some(b'=') {
                            return Err(self.err("expected '=:='"));
                        }
                        Tok::Op("=:=")
                    }
                    Some(b'\\') => {
                        self.bump();
                        if self.bump() != Some(b'=') {
                            return Err(self.err("expected '=\\='"));
                        }
                        Tok::Op("=\\=")
                    }
                    _ => Tok::Op("="),
                }
            }
            b'\\' => {
                self.bump();
                if self.bump() != Some(b'=') {
                    return Err(self.err("expected '\\='"));
                }
                Tok::Op("\\=")
            }
            b'<' => {
                self.bump();
                Tok::Op("<")
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Op(">=")
                } else {
                    Tok::Op(">")
                }
            }
            b'+' => {
                self.bump();
                Tok::Op("+")
            }
            b'-' => {
                self.bump();
                Tok::Op("-")
            }
            b'*' => {
                self.bump();
                Tok::Op("*")
            }
            b'/' => {
                self.bump();
                Tok::Op("/")
            }
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        };
        Ok(Some((tok, line, col)))
    }

    fn lex_ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E'))
            && matches!(self.peek2(), Some(b'0'..=b'9' | b'-' | b'+'))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'-' | b'+')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.err(e.to_string()))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.err(e.to_string()))
        }
    }
}

/// Recursive-descent parser producing [`Clause`]s and [`Literal`]s against a
/// shared [`SymbolTable`].
pub struct Parser<'s> {
    syms: &'s SymbolTable,
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
    vars: HashMap<String, VarId>,
    next_var: VarId,
}

const REL_OPS: &[&str] = &["<", "=<", ">", ">=", "=:=", "=\\=", "=", "\\="];

impl<'s> Parser<'s> {
    /// Tokenizes `src` for parsing against `syms`.
    pub fn new(syms: &'s SymbolTable, src: &str) -> Result<Self, ParseError> {
        let mut lx = Lexer::new(src);
        let mut toks = Vec::new();
        while let Some(t) = lx.next_token()? {
            toks.push(t);
        }
        Ok(Parser {
            syms,
            toks,
            pos: 0,
            vars: HashMap::new(),
            next_var: 0,
        })
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|&(_, l, c)| (l, c))
            .or_else(|| self.toks.last().map(|&(_, l, c)| (l, c)))
            .unwrap_or((1, 1));
        ParseError {
            message: msg.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {want:?}, found {:?}", self.peek())))
        }
    }

    fn fresh_scope(&mut self) {
        self.vars.clear();
        self.next_var = 0;
    }

    fn var_id(&mut self, name: &str) -> VarId {
        if name == "_" {
            let v = self.next_var;
            self.next_var += 1;
            return v;
        }
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.next_var;
        self.next_var += 1;
        self.vars.insert(name.to_owned(), v);
        v
    }

    /// Parses a whole program (sequence of clauses).
    pub fn parse_program(&mut self) -> Result<Vec<Clause>, ParseError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            out.push(self.parse_clause()?);
        }
        Ok(out)
    }

    /// Parses one clause `head [:- body] .` with a fresh variable scope.
    pub fn parse_clause(&mut self) -> Result<Clause, ParseError> {
        self.fresh_scope();
        let head = self.parse_literal()?;
        let body = if self.peek() == Some(&Tok::Neck) {
            self.bump();
            self.parse_conjunction()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::Dot)?;
        Ok(Clause::new(head, body))
    }

    /// Parses a conjunction of literals separated by commas (no final dot).
    pub fn parse_conjunction(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut out = vec![self.parse_literal()?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            out.push(self.parse_literal()?);
        }
        Ok(out)
    }

    /// Parses one literal: either `p(args)` or `Expr RELOP Expr`.
    pub fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        let lhs = self.parse_expr()?;
        if let Some(Tok::Op(op)) = self.peek() {
            if REL_OPS.contains(op) {
                let op = *op;
                self.bump();
                let rhs = self.parse_expr()?;
                return Ok(Literal::new(self.syms.intern(op), vec![lhs, rhs]));
            }
        }
        // `is` is an atom token, so detect it by lookahead on atoms.
        if let Some(Tok::Atom(a)) = self.peek() {
            if a == "is" {
                self.bump();
                let rhs = self.parse_expr()?;
                return Ok(Literal::new(self.syms.intern("is"), vec![lhs, rhs]));
            }
        }
        match lhs {
            Term::Sym(s) => Ok(Literal::new(s, vec![])),
            Term::App(f, args) => Ok(Literal::new(f, args.into_vec())),
            other => Err(self.err_here(format!("expected a literal, found term {other:?}"))),
        }
    }

    /// Parses an arithmetic expression (lowest precedence: `+`/`-`).
    pub fn parse_expr(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_muldiv()?;
        while let Some(Tok::Op(op @ ("+" | "-"))) = self.peek() {
            let f = self.syms.intern(op);
            self.bump();
            let rhs = self.parse_muldiv()?;
            lhs = Term::app(f, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_muldiv(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(Tok::Op(op @ ("*" | "/"))) => {
                    let f = self.syms.intern(op);
                    self.bump();
                    let rhs = self.parse_unary()?;
                    lhs = Term::app(f, vec![lhs, rhs]);
                }
                Some(Tok::Atom(a)) if a == "mod" => {
                    let f = self.syms.intern("mod");
                    self.bump();
                    let rhs = self.parse_unary()?;
                    lhs = Term::app(f, vec![lhs, rhs]);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Term, ParseError> {
        if let Some(Tok::Op("-")) = self.peek() {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Term::Int(i) => Term::Int(-i),
                Term::Float(f) => Term::Float(F64(-f.0)),
                other => Term::app(self.syms.intern("-"), vec![other]),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Term::Int(i)),
            Some(Tok::Float(f)) => Ok(Term::Float(F64(f))),
            Some(Tok::Var(v)) => Ok(Term::Var(self.var_id(&v))),
            Some(Tok::Atom(a)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = vec![self.parse_expr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        args.push(self.parse_expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Term::app(self.syms.intern(&a), args))
                } else {
                    Ok(Term::Sym(self.syms.intern(&a)))
                }
            }
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err_here(format!("expected a term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> (SymbolTable, Clause) {
        let t = SymbolTable::new();
        let c = Parser::new(&t, src).unwrap().parse_clause().unwrap();
        (t, c)
    }

    #[test]
    fn fact_roundtrips() {
        let (t, c) = parse_one("parent(ann, bob).");
        assert!(c.is_fact());
        assert_eq!(format!("{}", c.display(&t)), "parent(ann,bob).");
    }

    #[test]
    fn rule_with_shared_vars() {
        let (t, c) = parse_one("grandparent(X, Z) :- parent(X, Y), parent(Y, Z).");
        assert_eq!(c.body.len(), 2);
        assert_eq!(c.distinct_vars().len(), 3);
        // Ids follow first occurrence: X=A, Z=B, Y=C.
        assert_eq!(
            format!("{}", c.display(&t)),
            "grandparent(A,B) :- parent(A,C), parent(C,B)."
        );
    }

    #[test]
    fn infix_comparisons_become_literals() {
        let (t, c) = parse_one("big(X) :- size(X, S), S >= 4.");
        assert_eq!(c.body.len(), 2);
        assert_eq!(&*t.name(c.body[1].pred), ">=");
    }

    #[test]
    fn is_with_arith_precedence() {
        let (t, c) = parse_one("p(X, Y) :- Y is X * 2 + 1.");
        let lit = &c.body[0];
        assert_eq!(&*t.name(lit.pred), "is");
        // X*2+1 parses as +( *(X,2), 1 )
        match &lit.args[1] {
            Term::App(f, args) => {
                assert_eq!(&*t.name(*f), "+");
                assert!(matches!(&args[0], Term::App(g, _) if &*t.name(*g) == "*"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_numbers_fold() {
        let (_, c) = parse_one("q(-3, -2.5).");
        assert_eq!(c.head.args[0], Term::Int(-3));
        assert_eq!(c.head.args[1], Term::Float(F64(-2.5)));
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let (_, c) = parse_one("p(_, _).");
        assert_ne!(c.head.args[0], c.head.args[1]);
    }

    #[test]
    fn comments_are_skipped() {
        let t = SymbolTable::new();
        let src = "% line comment\np(a). /* block\ncomment */ q(b).";
        let prog = Parser::new(&t, src).unwrap().parse_program().unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn quoted_atoms() {
        let (t, c) = parse_one("elem('Cl').");
        assert_eq!(
            &*t.name(match c.head.args[0] {
                Term::Sym(s) => s,
                _ => panic!(),
            }),
            "Cl"
        );
    }

    #[test]
    fn errors_carry_position() {
        let t = SymbolTable::new();
        let e = Parser::new(&t, "p(a)").unwrap().parse_clause().unwrap_err();
        assert!(e.line >= 1);
        let e = Parser::new(&t, "p(a) :- .")
            .unwrap()
            .parse_clause()
            .unwrap_err();
        assert!(!e.message.is_empty());
    }

    #[test]
    fn var_scope_resets_between_clauses() {
        let t = SymbolTable::new();
        let prog = Parser::new(&t, "p(X) :- q(X). r(X).")
            .unwrap()
            .parse_program()
            .unwrap();
        assert_eq!(prog[0].distinct_vars(), vec![0]);
        assert_eq!(prog[1].distinct_vars(), vec![0]);
    }
}
