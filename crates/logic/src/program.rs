//! A convenience bundle of symbol table + knowledge base + parser.

use crate::clause::Literal;
use crate::kb::KnowledgeBase;
use crate::parser::{ParseError, Parser};
use crate::symbol::SymbolTable;

/// A logic program: interner plus knowledge base, with textual loading.
///
/// This is the entry point for examples and tests; the ILP engine works
/// against the underlying [`KnowledgeBase`] directly.
#[derive(Clone, Debug)]
pub struct Program {
    syms: SymbolTable,
    kb: KnowledgeBase,
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

impl Program {
    /// Creates an empty program with a fresh symbol table.
    pub fn new() -> Self {
        let syms = SymbolTable::new();
        let kb = KnowledgeBase::new(syms.clone());
        Program { syms, kb }
    }

    /// Creates a program sharing an existing symbol table.
    pub fn with_symbols(syms: SymbolTable) -> Self {
        let kb = KnowledgeBase::new(syms.clone());
        Program { syms, kb }
    }

    /// Parses `src` and asserts every clause, returning how many were added.
    pub fn consult(&mut self, src: &str) -> Result<usize, ParseError> {
        let clauses = Parser::new(&self.syms, src)?.parse_program()?;
        let n = clauses.len();
        for c in clauses {
            self.kb.assert(c);
        }
        Ok(n)
    }

    /// Parses a single goal literal, e.g. `"parent(ann, X)"`.
    pub fn parse_query(&self, src: &str) -> Result<Literal, ParseError> {
        let mut p = Parser::new(&self.syms, src)?;
        let goals = p.parse_conjunction()?;
        match <[Literal; 1]>::try_from(goals) {
            Ok([g]) => Ok(g),
            Err(gs) => Err(ParseError {
                message: format!(
                    "expected a single goal, found a conjunction of {}",
                    gs.len()
                ),
                line: 1,
                col: 1,
            }),
        }
    }

    /// Parses a conjunction of goals sharing one variable scope.
    pub fn parse_goals(&self, src: &str) -> Result<Vec<Literal>, ParseError> {
        Parser::new(&self.syms, src)?.parse_conjunction()
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// The knowledge base (shared reference).
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The knowledge base (mutable).
    pub fn kb_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::{ProofLimits, Prover};

    #[test]
    fn consult_and_prove() {
        let mut p = Program::new();
        let n = p
            .consult(
                "parent(ann, bob).
                 parent(bob, carl).
                 grandparent(X, Z) :- parent(X, Y), parent(Y, Z).",
            )
            .unwrap();
        assert_eq!(n, 3);
        let goal = p.parse_query("grandparent(ann, carl)").unwrap();
        let prover = Prover::new(p.kb(), ProofLimits::default());
        let (ok, _) = prover.prove_ground(&goal);
        assert!(ok);
    }

    #[test]
    fn query_rejects_conjunction() {
        let p = Program::new();
        assert!(p.parse_query("a(X), b(X)").is_err());
    }

    #[test]
    fn goals_share_scope() {
        let mut p = Program::new();
        p.consult("n(1). n(2). m(2).").unwrap();
        let goals = p.parse_goals("n(X), m(X)").unwrap();
        let prover = Prover::new(p.kb(), ProofLimits::default());
        let (ok, _) = prover.prove_goals(&goals);
        assert!(ok);
    }

    #[test]
    fn parse_error_propagates() {
        let mut p = Program::new();
        assert!(p.consult("p(a").is_err());
    }
}
