//! Serialized snapshots of a compiled [`KnowledgeBase`].
//!
//! The paper's workers all hold the background knowledge locally and pay
//! its startup cost once per rank. A [`KbSnapshot`] makes that startup
//! near-instant: it captures every *compiled* artifact of a KB — the
//! symbol dictionary, the [`crate::arena::TermArena`] contents, the
//! columnar fact tuples, the per-position posting lists, and the compiled
//! rule tables — so a restore performs **no re-interning of fact
//! arguments and no index rebuilding**. The master builds the KB once,
//! snapshots it, and ships the bytes; a worker (thread today, process
//! tomorrow) reconstructs an identical KB from the snapshot alone.
//!
//! # Format
//!
//! A snapshot is plain data (no maps, no shared handles):
//!
//! * `symbols` — every interned name of the source symbol table, in id
//!   order. Restoring into a **fresh** table reproduces the exact ids;
//!   restoring into a table that already interned other names triggers the
//!   (slower, still index-preserving) symbol-remap path.
//! * `terms` — the arena's ground terms in [`TermId`] order. Only the
//!   reverse `Term -> TermId` hash is rebuilt on load (one insert per
//!   *distinct* term, not one per fact-argument occurrence).
//! * `preds` — one [`PredSnapshot`] per dense [`PredId`], in id order
//!   (compiled rule bodies embed `PredId`s, so the order is load-bearing):
//!   the fact count plus the *irregular* rows only (facts with a
//!   non-ground argument; every other row **is** its `TermId` column
//!   cells), the full-arity `TermId` stripes as **one flat position-major
//!   run** (`arity × num_facts` cells, adopted zero-copy as the in-memory
//!   stripe buffer), posting lists in **CSR form** ([`PostingSnapshot`]:
//!   ascending key run + offset run + one contiguous fact-index array,
//!   adopted directly as the in-memory CSR — `None` = index pruned via
//!   [`KnowledgeBase::retain_indexes`]), per-position unindexable fact
//!   lists, and the [`CompiledClause`] rules with their resolved
//!   [`LitKind`] dispatch (builtins travel as stable byte codes, see
//!   [`crate::builtins::Builtin::code`]).
//!
//! The flat-stripe and CSR shapes replaced the per-position column vectors
//! and sorted `(TermId, Vec<u32>)` posting pairs of protocol version 3;
//! the cluster codec's `PROTOCOL_VERSION` was bumped to 4 with the change
//! (the wire encoding is not cross-version compatible).
//!
//! Since the in-memory store became column-native, a restore materializes
//! **no** row literals at all — the loaded KB holds exactly the snapshot's
//! columns plus the irregular side rows
//! ([`KnowledgeBase::resident_rows`] reports 0 even under the
//! `row-oracle` feature), and the prover unifies straight against the
//! column cells.
//!
//! [`KnowledgeBase::from_snapshot`] validates the snapshot *structurally* —
//! every id in range, every per-position vector shaped consistently with
//! its fact table, every index list ascending — and returns a
//! [`SnapshotError`] naming the first violated invariant. This guarantees
//! a loaded KB never indexes out of bounds; it does **not** re-derive the
//! index contents (a snapshot whose posting lists disagree with its
//! columns loads and then retrieves accordingly — semantic fidelity is the
//! producer's contract, pinned by the differential proptests in
//! `crates/logic/tests/snapshot_props.rs`, not re-checked per load).
//! The byte-level encoding lives in the cluster crate's `codec` module
//! (`Wire for KbSnapshot`), which is also how a snapshot travels as a
//! `Msg::KbSnapshot` protocol message.

use crate::arena::{TermArena, TermId};
use crate::builtins::BuiltinTable;
use crate::clause::{Clause, CompiledClause, CompiledLiteral, LitKind, Literal, PredId, PredKey};
use crate::fxhash::FxHashMap;
use crate::kb::{ColumnStripes, KnowledgeBase, PostingCsr, PredEntry, MAX_INDEXED_ARGS};
use crate::symbol::{SymbolId, SymbolTable};
use crate::term::Term;
use std::fmt;

/// One position's serialized posting list, in the same CSR shape the
/// in-memory store probes: key `keys[k]` owns fact indices
/// `idx[offs[k] .. offs[k + 1]]`. Keys are strictly ascending, `offs` has
/// `keys.len() + 1` entries starting at 0, and each run is ascending — a
/// restore adopts all three arrays without rebuilding anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostingSnapshot {
    /// Distinct term ids with at least one posting, strictly ascending.
    pub keys: Vec<TermId>,
    /// Run boundaries into `idx`, `keys.len() + 1` entries.
    pub offs: Vec<u32>,
    /// All fact indices, concatenated in key order.
    pub idx: Vec<u32>,
}

/// A serializable snapshot of one compiled knowledge base.
#[derive(Clone, Debug, PartialEq)]
pub struct KbSnapshot {
    /// Every name of the source symbol table, in [`SymbolId`] order.
    pub symbols: Vec<String>,
    /// The term arena's contents, in [`TermId`] order.
    pub terms: Vec<Term>,
    /// Per-predicate stores, in [`PredId`] order.
    pub preds: Vec<PredSnapshot>,
}

/// One predicate's serialized store (facts, indexes, compiled rules).
///
/// Fact *rows* are not stored when they are derivable: a fact whose every
/// argument is ground is exactly its `TermId` column cells (all positions
/// have columns), so neither the snapshot nor the restored KB holds a row
/// for it. Only "irregular" rows — a non-ground argument the arena cannot
/// intern — travel as full literals. This roughly halves snapshot bytes on
/// ground-heavy ILP background knowledge and is most of the snapshot-load
/// speedup.
#[derive(Clone, Debug, PartialEq)]
pub struct PredSnapshot {
    /// The `(predicate, arity)` key this entry indexes.
    pub key: PredKey,
    /// Total number of facts (row `f` **is** `cols[·][f]` unless listed in
    /// `irregular`).
    pub num_facts: u32,
    /// `(fact index, row)` for rows with a non-ground argument, index-
    /// ascending.
    pub irregular: Vec<(u32, Literal)>,
    /// Columnar view as one flat position-major run of `arity × num_facts`
    /// cells: `cols[p * num_facts + f]` is fact `f`'s argument `p` as an
    /// interned id ([`TermId::NONE`] for a non-ground argument). Exactly
    /// the compacted in-memory stripe buffer, adopted zero-copy on load.
    pub cols: Vec<TermId>,
    /// Posting lists per indexed position, in CSR form; `None` = index
    /// pruned.
    pub postings: Vec<Option<PostingSnapshot>>,
    /// Per indexed position: ascending indices of facts whose argument
    /// there is not ground (they match any probe).
    pub unindexed: Vec<Vec<u32>>,
    /// Compiled rules with resolved dispatch, in assertion order.
    pub rules: Vec<CompiledClause>,
}

/// A snapshot failed structural validation on load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError {
    /// The first invariant found violated.
    pub context: &'static str,
}

impl SnapshotError {
    fn new(context: &'static str) -> Self {
        SnapshotError { context }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid KB snapshot: {}", self.context)
    }
}

impl std::error::Error for SnapshotError {}

/// Checks every symbol id inside `t` against the snapshot dictionary size.
fn check_term_syms(t: &Term, nsyms: usize) -> Result<(), SnapshotError> {
    match t {
        Term::Var(_) | Term::Int(_) | Term::Float(_) => Ok(()),
        Term::Sym(s) => (s.index() < nsyms)
            .then_some(())
            .ok_or_else(|| SnapshotError::new("symbol id out of range")),
        Term::App(f, args) => {
            if f.index() >= nsyms {
                return Err(SnapshotError::new("symbol id out of range"));
            }
            args.iter().try_for_each(|a| check_term_syms(a, nsyms))
        }
    }
}

/// Rewrites every symbol id inside `t` through `remap` (the slow path when
/// the target table already held other names).
fn remap_term(t: &Term, remap: &[SymbolId]) -> Term {
    match t {
        Term::Var(_) | Term::Int(_) | Term::Float(_) => t.clone(),
        Term::Sym(s) => Term::Sym(remap[s.index()]),
        Term::App(f, args) => Term::App(
            remap[f.index()],
            args.iter().map(|a| remap_term(a, remap)).collect(),
        ),
    }
}

fn check_literal_syms(l: &Literal, nsyms: usize) -> Result<(), SnapshotError> {
    if l.pred.index() >= nsyms {
        return Err(SnapshotError::new("symbol id out of range"));
    }
    l.args.iter().try_for_each(|a| check_term_syms(a, nsyms))
}

fn remap_literal(l: &Literal, remap: &[SymbolId]) -> Literal {
    Literal {
        pred: remap[l.pred.index()],
        args: l.args.iter().map(|a| remap_term(a, remap)).collect(),
    }
}

/// True when `idx` is strictly ascending and every element is `< bound`.
fn ascending_in_bounds(idx: &[u32], bound: usize) -> bool {
    idx.iter().all(|&i| (i as usize) < bound) && idx.windows(2).all(|w| w[0] < w[1])
}

impl KnowledgeBase {
    /// Captures this KB as a serializable [`KbSnapshot`].
    ///
    /// The snapshot is self-contained (it embeds the symbol dictionary) and
    /// canonical: two byte-encodings of the same KB are identical, because
    /// posting lists are emitted sorted by term id.
    pub fn to_snapshot(&self) -> KbSnapshot {
        let symbols = self
            .symbols()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let terms = self.arena().terms().to_vec();
        let preds = self
            .keys
            .iter()
            .zip(self.entries.iter())
            .map(|(key, e)| PredSnapshot {
                key: *key,
                num_facts: e.len,
                irregular: e.irregular.clone(),
                cols: e.cols.compact_data(),
                postings: e
                    .postings
                    .iter()
                    .map(|p| {
                        p.as_ref().map(|csr| {
                            let (keys, offs, idx) = csr.merged_parts();
                            PostingSnapshot { keys, offs, idx }
                        })
                    })
                    .collect(),
                unindexed: e.unindexed.clone(),
                rules: e.crules.clone(),
            })
            .collect();
        KbSnapshot {
            symbols,
            terms,
            preds,
        }
    }

    /// Reconstructs a KB from a snapshot, interning the snapshot's symbol
    /// dictionary into `syms`.
    ///
    /// When the resulting ids match the snapshot's (always the case for a
    /// fresh table, or for the very table the snapshot was captured from),
    /// the stored terms, facts, and rules are adopted as-is; otherwise every
    /// symbol id is remapped — still without re-interning fact arguments or
    /// rebuilding posting lists, since [`TermId`]s and fact indices are
    /// arena-local and unaffected by symbol renumbering.
    pub fn from_snapshot(snap: KbSnapshot, syms: SymbolTable) -> Result<Self, SnapshotError> {
        let nsyms = snap.symbols.len();
        let remap: Vec<SymbolId> = syms.intern_all(&snap.symbols);
        let identity = remap.iter().enumerate().all(|(i, s)| s.index() == i);

        // Arena: validate symbol ids, remap if needed, rebuild only the
        // reverse map.
        for t in &snap.terms {
            check_term_syms(t, nsyms)?;
        }
        let terms = if identity {
            snap.terms
        } else {
            snap.terms.iter().map(|t| remap_term(t, &remap)).collect()
        };
        let arena = TermArena::from_terms(terms).map_err(SnapshotError::new)?;
        let nterms = arena.len();
        let npreds = snap.preds.len();

        let mut pred_index = FxHashMap::default();
        let mut keys = Vec::with_capacity(npreds);
        let mut entries = Vec::with_capacity(npreds);
        let mut num_facts = 0usize;
        let mut num_rules = 0usize;

        for (pi, p) in snap.preds.into_iter().enumerate() {
            if p.key.pred.index() >= nsyms {
                return Err(SnapshotError::new("symbol id out of range"));
            }
            let key = PredKey {
                pred: remap[p.key.pred.index()],
                arity: p.key.arity,
            };
            if pred_index.insert(key, PredId(pi as u32)).is_some() {
                return Err(SnapshotError::new("duplicate predicate key"));
            }
            keys.push(key);

            let arity = key.arity as usize;
            let indexed = arity.min(MAX_INDEXED_ARGS);
            if p.postings.len() != indexed || p.unindexed.len() != indexed {
                return Err(SnapshotError::new("per-position vector shape"));
            }
            let nfacts = p.num_facts as usize;

            if p.cols.len() != arity * nfacts {
                return Err(SnapshotError::new("column length"));
            }
            if !p.cols.iter().all(|t| t.is_none() || t.index() < nterms) {
                return Err(SnapshotError::new("term id out of range"));
            }

            // Rows: irregular ones travel as literals; every other row *is*
            // its column cells — nothing is materialized here, the restored
            // KB unifies straight against the columns.
            for (f, lit) in &p.irregular {
                if (*f as usize) >= nfacts {
                    return Err(SnapshotError::new("irregular fact index"));
                }
                check_literal_syms(lit, nsyms)?;
                if lit.pred != p.key.pred || lit.args.len() != arity {
                    return Err(SnapshotError::new("fact under a foreign key"));
                }
            }
            if !p.irregular.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(SnapshotError::new("irregular fact index"));
            }
            // A non-interned cell is only legal for a row whose original
            // literal travels in `irregular` (otherwise the row could be
            // neither unified nor rebuilt). Stripes are position-major, so
            // fact `f`'s cells sit at `f`, `f + nfacts`, `f + 2·nfacts`, …
            for (i, tid) in p.cols.iter().enumerate() {
                if tid.is_none() {
                    let f = (i % nfacts.max(1)) as u32;
                    if p.irregular.binary_search_by_key(&f, |(i, _)| *i).is_err() {
                        return Err(SnapshotError::new("missing irregular row"));
                    }
                }
            }
            let irregular: Vec<(u32, Literal)> = if identity {
                p.irregular
            } else {
                p.irregular
                    .iter()
                    .map(|(f, lit)| (*f, remap_literal(lit, &remap)))
                    .collect()
            };
            let mut postings = Vec::with_capacity(indexed);
            for (pos, posting) in p.postings.into_iter().enumerate() {
                match posting {
                    None if pos == 0 => {
                        return Err(SnapshotError::new("position 0 index pruned"));
                    }
                    None => postings.push(None),
                    Some(ps) => {
                        if !ps.keys.iter().all(|t| !t.is_none() && t.index() < nterms) {
                            return Err(SnapshotError::new("posting term id"));
                        }
                        if ps.keys.windows(2).any(|w| w[0] == w[1]) {
                            return Err(SnapshotError::new("duplicate posting key"));
                        }
                        if !ps.keys.windows(2).all(|w| w[0] < w[1]) {
                            return Err(SnapshotError::new("posting key order"));
                        }
                        let offs_ok = ps.offs.len() == ps.keys.len() + 1
                            && ps.offs.first() == Some(&0)
                            && ps.offs.windows(2).all(|w| w[0] <= w[1])
                            && ps.offs.last() == Some(&(ps.idx.len() as u32));
                        if !offs_ok {
                            return Err(SnapshotError::new("posting run offsets"));
                        }
                        let runs_ok = ps.offs.windows(2).all(|w| {
                            ascending_in_bounds(&ps.idx[w[0] as usize..w[1] as usize], nfacts)
                        });
                        if !runs_ok {
                            return Err(SnapshotError::new("posting fact indices"));
                        }
                        postings.push(Some(PostingCsr::from_parts(ps.keys, ps.offs, ps.idx)));
                    }
                }
            }
            for idx in &p.unindexed {
                if !ascending_in_bounds(idx, nfacts) {
                    return Err(SnapshotError::new("unindexed fact indices"));
                }
            }

            let mut rules = Vec::with_capacity(p.rules.len());
            let mut crules = Vec::with_capacity(p.rules.len());
            for r in &p.rules {
                check_literal_syms(&r.head, nsyms)?;
                let head = if identity {
                    r.head.clone()
                } else {
                    remap_literal(&r.head, &remap)
                };
                let mut body = Vec::with_capacity(r.body.len());
                for cl in r.body.iter() {
                    check_literal_syms(&cl.lit, nsyms)?;
                    if let LitKind::Pred(id) = cl.kind {
                        if id.index() >= npreds {
                            return Err(SnapshotError::new("rule body pred id"));
                        }
                    }
                    body.push(CompiledLiteral {
                        lit: if identity {
                            cl.lit.clone()
                        } else {
                            remap_literal(&cl.lit, &remap)
                        },
                        kind: cl.kind,
                    });
                }
                let plain = Clause::new(head.clone(), body.iter().map(|l| l.lit.clone()).collect());
                if plain.var_span() != r.var_span {
                    return Err(SnapshotError::new("rule variable span"));
                }
                rules.push(plain);
                crules.push(CompiledClause {
                    head,
                    body: body.into_boxed_slice(),
                    var_span: r.var_span,
                });
            }

            num_facts += nfacts;
            num_rules += rules.len();
            entries.push(PredEntry {
                // Deliberately empty even under `row-oracle`: a restore
                // materializes no rows (the oracle view rebuilds lazily).
                #[cfg(feature = "row-oracle")]
                rows: Vec::new(),
                len: p.num_facts,
                cols: ColumnStripes::from_compact(arity, p.num_facts, p.cols),
                irregular,
                postings,
                unindexed: p.unindexed,
                rules,
                crules,
            });
        }

        let builtins = BuiltinTable::new(&syms);
        Ok(KnowledgeBase {
            syms,
            builtins,
            arena,
            pred_index,
            keys,
            entries,
            num_facts,
            num_rules,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    fn sample_kb() -> (SymbolTable, KnowledgeBase) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..4i64 {
            for a in 0..6i64 {
                kb.assert_fact(lit(
                    &t,
                    "bond",
                    vec![Term::Int(m), Term::Int(10 * m + a), Term::Int(a % 3)],
                ));
            }
        }
        kb.assert_fact(lit(
            &t,
            "charge",
            vec![
                Term::app(t.intern("q"), vec![Term::Int(3)]),
                Term::Float(crate::term::F64(0.5)),
            ],
        ));
        kb.assert_rule(Clause::new(
            lit(&t, "linked", vec![Term::Var(0), Term::Var(1)]),
            vec![
                lit(&t, "bond", vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
                lit(&t, ">=", vec![Term::Var(2), Term::Int(1)]),
            ],
        ));
        kb.optimize();
        (t, kb)
    }

    #[test]
    fn roundtrip_into_fresh_table_is_identical() {
        let (t, kb) = sample_kb();
        let snap = kb.to_snapshot();
        let restored = KnowledgeBase::from_snapshot(snap.clone(), SymbolTable::new()).unwrap();
        // The fresh table reproduces the ids, so a re-capture is identical.
        assert_eq!(restored.to_snapshot(), snap);
        assert_eq!(restored.num_facts(), kb.num_facts());
        assert_eq!(restored.num_rules(), kb.num_rules());
        assert_eq!(restored.arena().len(), kb.arena().len());
        // Same plans, same candidates.
        let key = lit(&t, "bond", vec![Term::Int(0); 3]).key();
        let bound = vec![None, Some(Term::Int(12)), None];
        assert_eq!(
            restored.plan_candidates(key, &bound),
            kb.plan_candidates(key, &bound)
        );
    }

    #[test]
    fn roundtrip_into_shared_table_is_identical() {
        let (t, kb) = sample_kb();
        let snap = kb.to_snapshot();
        let restored = KnowledgeBase::from_snapshot(snap.clone(), t).unwrap();
        assert_eq!(restored.to_snapshot(), snap);
    }

    #[test]
    fn remap_path_preserves_semantics() {
        let (t, kb) = sample_kb();
        let snap = kb.to_snapshot();
        // A table with alien symbols interned first forces non-identity ids.
        let other = SymbolTable::new();
        other.intern("alien0");
        other.intern("alien1");
        let restored = KnowledgeBase::from_snapshot(snap, other.clone()).unwrap();
        assert_eq!(restored.num_facts(), kb.num_facts());
        let key = Literal::new(other.lookup("bond").unwrap(), vec![Term::Int(0); 3]).key();
        let (tried, total) = restored.plan_candidates(key, &[Some(Term::Int(2)), None, None]);
        assert_eq!(total, 6);
        assert_eq!(tried.len(), 6);
        // Rules survived the remap with dispatch intact.
        let lkey = Literal::new(
            other.lookup("linked").unwrap(),
            vec![Term::Int(0), Term::Int(0)],
        )
        .key();
        assert_eq!(restored.rules_for(lkey).len(), 1);
        let crule = &restored.rules_compiled(restored.pred_id(lkey).unwrap())[0];
        assert!(matches!(crule.body[1].kind, LitKind::Builtin(_)));
        // And `t`'s names still resolve through the remapped table.
        assert_eq!(&*t.name(t.lookup("bond").unwrap()), "bond");
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let (_t, kb) = sample_kb();
        let base = kb.to_snapshot();

        let mut s = base.clone();
        s.preds[0].cols.push(TermId(0));
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "column length"
        );

        let mut s = base.clone();
        // Position 1, fact 0 in the flat position-major stripe run.
        let nfacts = s.preds[0].num_facts as usize;
        s.preds[0].cols[nfacts] = TermId(u32::MAX - 1);
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "term id out of range"
        );

        let mut s = base.clone();
        s.preds[0].postings[0] = None;
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "position 0 index pruned"
        );

        let mut s = base.clone();
        if let Some(ps) = &mut s.preds[0].postings[0] {
            ps.idx[0] = 9999;
        }
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "posting fact indices"
        );

        let mut s = base.clone();
        if let Some(ps) = &mut s.preds[0].postings[0] {
            ps.keys[1] = ps.keys[0];
        }
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "duplicate posting key"
        );

        let mut s = base.clone();
        if let Some(ps) = &mut s.preds[0].postings[0] {
            ps.keys.swap(0, 1);
        }
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "posting key order"
        );

        let mut s = base.clone();
        if let Some(ps) = &mut s.preds[0].postings[0] {
            ps.offs[0] = 1;
        }
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "posting run offsets"
        );

        let mut s = base.clone();
        let dup = s.preds[0].clone();
        s.preds.push(dup);
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "duplicate predicate key"
        );

        let mut s = base.clone();
        let last = s.preds.len() - 1;
        s.preds[last].rules[0].var_span = 99;
        assert_eq!(
            KnowledgeBase::from_snapshot(s, SymbolTable::new())
                .unwrap_err()
                .context,
            "rule variable span"
        );

        let mut s = base;
        s.symbols.truncate(3);
        assert!(KnowledgeBase::from_snapshot(s, SymbolTable::new()).is_err());
    }
}
