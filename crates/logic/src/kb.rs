//! Compiled, indexed clause store (the "database" role of YAP in the
//! paper's stack).
//!
//! Background knowledge in ILP applications is mostly *extensional* (ground
//! facts: atoms, bonds, edge properties...), plus a few intensional rules.
//! Per-worker memory is the scaling currency of the paper's design — every
//! rank holds the whole background KB, so fact-store bytes directly cap how
//! many ranks fit on a node. The store therefore keeps **one** resident
//! representation per `(predicate, arity)` relation, addressed by a dense
//! [`PredId`]:
//!
//! 1. **Contiguous column stripes** — every ground argument of every fact
//!    is interned into the per-KB [`TermArena`] and stored in one
//!    position-major stripe buffer per relation (`ColumnStripes`): the
//!    arguments at position `p` of facts `0..len` are one contiguous
//!    `&[TermId]` run ([`TermId::NONE`] for the rare non-ground argument).
//!    Stripes are simultaneously the *plan-building* substrate (one-compare
//!    membership tests), the *unification target* (the prover matches a
//!    goal directly against a fact's id tuple via
//!    [`crate::subst::Bindings::unify_term_id`], so no row `Literal` is
//!    ever needed on the hot path), and the *kernel operand*: when every
//!    goal argument is ground, candidate filtering is a branch-light
//!    chunked `u32` compare over the stripes
//!    ([`FactCols::match_mask`]/[`FactCols::row_matches`]), written so
//!    stable Rust autovectorizes the 64-row blocks with a scalar tail.
//! 2. **CSR posting lists** — for each of the first [`MAX_INDEXED_ARGS`]
//!    argument positions (unless pruned via
//!    [`KnowledgeBase::retain_indexes`], e.g. from mode declarations), a
//!    `PostingCsr`: sorted key array + offset array + one contiguous
//!    fact-index array, probed by binary search — no per-key heap
//!    allocation, no hashing, and the resident form round-trips through
//!    snapshots verbatim. At query time the prover asks for a [`FactPlan`]
//!    (single goal) or a batch of plans ([`KnowledgeBase::fact_plan_batch`]
//!    — several pending goals share one pass over a posting run): the
//!    store picks the *most selective* bound position (hash-join style),
//!    so a `bond/4` goal bound on its second argument touches only that
//!    atom's bonds instead of scanning the molecule — or the whole
//!    relation (ROADMAP "index beyond first-arg").
//! 3. **Irregular rows** — the occasional fact with a non-ground argument
//!    cannot live in the arena; its original `Literal` is kept in a small
//!    index-sorted side list and unified row-at-a-time as before.
//!
//! The duplicate row store of earlier revisions (every fact kept a second
//! time as a `Literal`) is gone from release builds, roughly halving fact
//! memory. Under the **`row-oracle`** feature (enabled for every `cargo
//! test` run via the crate's self-dev-dependency) the rows stay resident so
//! the differential oracle ([`crate::prover::reference`]) unifies against
//! the *original* literals exactly as the seed implementation did; without
//! the feature, debug/oracle views ([`KnowledgeBase::candidate_facts`],
//! [`KnowledgeBase::facts_for`]) rebuild rows lazily from the columns.
//! Either way the resident rows are a *view*: a KB restored from a
//! snapshot never materializes them (see [`KnowledgeBase::resident_rows`]).
//!
//! Rules are stored both as plain [`Clause`]s (oracle view) and as
//! [`CompiledClause`]s whose body literals carry pre-resolved dispatch
//! ([`crate::clause::LitKind`]) and whose rename-apart variable span is
//! precomputed — per-goal dispatch in the optimized prover is array reads.
//!
//! Posting lists key *any ground* argument — atomic constants and ground
//! compound terms alike (the arena interns both), so a goal bound to e.g.
//! `at(7)` probes instead of scanning (ROADMAP "Compound probes").
//!
//! # Snapshots
//!
//! The whole compiled store — arena terms, columnar tuples, posting lists,
//! compiled rules, and the symbol dictionary — serializes as a
//! [`crate::snapshot::KbSnapshot`] via [`KnowledgeBase::to_snapshot`] /
//! [`KnowledgeBase::from_snapshot`]. A restore re-interns nothing, rebuilds
//! no index, and materializes no rows (only the reverse hash maps are
//! repopulated), which makes worker startup in the cluster substrate one
//! wire transfer (`Msg::KbSnapshot`) instead of a per-rank rebuild; see the
//! [`crate::snapshot`] module docs for the format and validation rules.
//!
//! # Step-accounting contract
//!
//! The inference-step count is the cluster substrate's virtual-time fuel,
//! pinned bit-identical to the seed semantics: a goal is charged one step
//! per candidate *the first-argument index would have enumerated* (plus one
//! per rule head tried). A narrower plan therefore reports, alongside the
//! facts actually worth trying, the rank each occupies in that reference
//! enumeration — the prover bulk-charges the skipped candidates, which are
//! exactly the ones that provably fail unification on the chosen bound
//! position (see [`FactPlan::Narrowed`]).
//!
//! **R is the reference walk.** Throughout this module, R names the seed
//! enumeration that defines the contract: position-0 posting hits followed
//! by position-0-unindexable facts when the goal's first argument is ground,
//! every fact in assertion order otherwise. [`KnowledgeBase::candidate_facts`]
//! *is* R (the differential oracle iterates it); every [`FactPlan`] variant
//! enumerates a subset of R in R's order and charges the rest by rank; the
//! all-ground kernel in the prover only changes *how* a candidate's failure
//! is detected (stripe compare vs. unification), never which candidates R
//! contains or the order they are charged in. The position-0 posting list is
//! never pruned, precisely because R is defined in terms of it.

use crate::arena::{Probe, TermArena, TermId};
use crate::builtins::BuiltinTable;
use crate::clause::{Clause, CompiledClause, CompiledGoals, CompiledLiteral, LitKind, Literal};
use crate::clause::{PredId, PredKey};
use crate::fxhash::FxHashMap;
use crate::symbol::{SymbolId, SymbolTable};
use crate::term::Term;
use p2mdie_obs::metrics::hot;
use std::borrow::Cow;

/// How many leading argument positions get a posting-list index by default.
pub const MAX_INDEXED_ARGS: usize = 4;

/// Reference candidate counts at or below this size skip the probe for a
/// better position: probing costs two hash lookups per indexed position,
/// which only pays off against a walk of some length (molecule-bound ILP
/// goals sit in the tens; the scans worth narrowing sit in the thousands).
const NARROW_MIN: u64 = 64;

/// Contiguous position-major fact storage: one `TermId` stripe per argument
/// position, all stripes in a single allocation. `cell(p, f)` is
/// `data[p * cap + f]`, so the stripe for position `p` is one contiguous
/// `&[TermId]` run — which is what lets the all-ground compare kernel and
/// the narrowing column compare stream a position with plain slice loads
/// instead of chasing one `Vec` pointer per position.
///
/// Growth is capacity-strided: stripes are laid out at stride `cap >= len`
/// and appending past `cap` re-lays the buffer at double the stride (O(1)
/// amortized per cell, like `Vec`). [`ColumnStripes::shrink_to_fit`]
/// compacts to `cap == len`, after which consecutive stripes are exactly
/// adjacent — `stripe(p + 1)` begins where `stripe(p)` ends — the form the
/// snapshot codec captures verbatim ([`ColumnStripes::compact_data`] /
/// [`ColumnStripes::from_compact`]) and the layout-audit test asserts.
///
/// An arity-0 relation stores no cells; only `len` counts its facts.
#[derive(Debug, Clone)]
pub(crate) struct ColumnStripes {
    data: Vec<TermId>,
    arity: u32,
    len: u32,
    cap: u32,
}

impl ColumnStripes {
    pub(crate) fn new(arity: usize) -> Self {
        ColumnStripes {
            data: Vec::new(),
            arity: arity as u32,
            len: 0,
            cap: 0,
        }
    }

    /// Number of argument positions (stripes).
    #[inline]
    pub(crate) fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Number of fact rows.
    #[inline]
    pub(crate) fn len(&self) -> u32 {
        self.len
    }

    /// Fact `row`'s argument at `pos`.
    #[inline]
    pub(crate) fn cell(&self, pos: usize, row: u32) -> TermId {
        debug_assert!(pos < self.arity() && row < self.len);
        self.data[pos * self.cap as usize + row as usize]
    }

    /// The contiguous stripe of position `pos`: arguments of rows `0..len`.
    #[inline]
    pub(crate) fn stripe(&self, pos: usize) -> &[TermId] {
        debug_assert!(pos < self.arity());
        let start = pos * self.cap as usize;
        &self.data[start..start + self.len as usize]
    }

    /// Appends one fact row (`cells.len()` must equal the arity).
    pub(crate) fn push_row(&mut self, cells: &[TermId]) {
        debug_assert_eq!(cells.len(), self.arity());
        if self.arity == 0 {
            // No cells to store; keep `cap == len` so the compact invariant
            // holds trivially.
            self.len += 1;
            self.cap = self.len;
            return;
        }
        if self.len == self.cap {
            self.relayout((self.cap * 2).max(8));
        }
        let (cap, row) = (self.cap as usize, self.len as usize);
        for (p, &tid) in cells.iter().enumerate() {
            self.data[p * cap + row] = tid;
        }
        self.len += 1;
    }

    /// Re-lays the buffer at stride `new_cap` (>= len), copying each stripe.
    fn relayout(&mut self, new_cap: u32) {
        debug_assert!(new_cap >= self.len);
        let (arity, len) = (self.arity(), self.len as usize);
        let stride = new_cap as usize;
        let mut data = vec![TermId::NONE; arity * stride];
        for p in 0..arity {
            let old = p * self.cap as usize;
            data[p * stride..p * stride + len].copy_from_slice(&self.data[old..old + len]);
        }
        self.data = data;
        self.cap = new_cap;
    }

    /// Compacts to `cap == len` (adjacent stripes, zero slack) and releases
    /// over-allocation. Called from [`KnowledgeBase::optimize`].
    pub(crate) fn shrink_to_fit(&mut self) {
        if self.cap != self.len {
            self.relayout(self.len);
        }
        self.data.shrink_to_fit();
    }

    /// The concatenated compact stripes (`arity * len` cells) — the
    /// snapshot form, identical to the resident buffer once compacted.
    pub(crate) fn compact_data(&self) -> Vec<TermId> {
        if self.cap == self.len {
            return self.data[..self.arity() * self.len as usize].to_vec();
        }
        let (arity, cap, len) = (self.arity(), self.cap as usize, self.len as usize);
        let mut out = Vec::with_capacity(arity * len);
        for p in 0..arity {
            out.extend_from_slice(&self.data[p * cap..p * cap + len]);
        }
        out
    }

    /// Adopts snapshot data without copying (`data.len()` must be
    /// `arity * len`; the snapshot loader validates this before calling).
    pub(crate) fn from_compact(arity: usize, len: u32, data: Vec<TermId>) -> Self {
        debug_assert_eq!(data.len(), arity * len as usize);
        ColumnStripes {
            data,
            arity: arity as u32,
            len,
            cap: len,
        }
    }
}

/// One position's posting index in CSR (compressed sparse row) form:
/// `keys` holds the distinct ground-term ids in strictly ascending order,
/// `offs[k]..offs[k + 1]` delimits key `k`'s run inside `idx`, and each run
/// is an ascending list of fact indices. Probing is one binary search over
/// `keys` — no per-key heap allocation, no hashing — and a sealed posting
/// is exactly three contiguous arrays, which is both the resident layout
/// and the snapshot/wire layout (adopted on restore without rebuilding).
/// The sorted key array also makes the snapshot encoding inherently
/// canonical.
///
/// Incremental asserts append to a small `pending` side buffer (the global
/// fact counter only grows, so a key's pending hits always sort after its
/// sealed run); the buffer is merged into the CSR arrays amortized by
/// [`PostingCsr::insert`] and unconditionally by [`PostingCsr::seal`]
/// (called from [`KnowledgeBase::optimize`]). Probes between merges stay
/// exact: [`PostingCsr::hits`] splices pending matches after the sealed
/// run, preserving ascending fact order.
#[derive(Debug, Clone)]
pub(crate) struct PostingCsr {
    keys: Vec<TermId>,
    offs: Vec<u32>,
    idx: Vec<u32>,
    pending: Vec<(TermId, u32)>,
}

impl PostingCsr {
    pub(crate) fn new() -> Self {
        PostingCsr {
            keys: Vec::new(),
            offs: vec![0],
            idx: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Adopts validated snapshot arrays verbatim (zero per-key work).
    pub(crate) fn from_parts(keys: Vec<TermId>, offs: Vec<u32>, idx: Vec<u32>) -> Self {
        debug_assert_eq!(offs.len(), keys.len() + 1);
        PostingCsr {
            keys,
            offs,
            idx,
            pending: Vec::new(),
        }
    }

    /// Records `fact` under `tid`, merging the pending buffer into the CSR
    /// arrays once it grows past an amortization threshold (capped so a
    /// probe's pending scan stays short even mid-bulk-load of a huge
    /// relation).
    pub(crate) fn insert(&mut self, tid: TermId, fact: u32) {
        debug_assert!(!tid.is_none());
        self.pending.push((tid, fact));
        if self.pending.len() >= (self.idx.len() / 4).clamp(64, 4096) {
            self.merge_pending();
        }
    }

    /// Merges pending inserts into the sealed arrays. Stable sort by key:
    /// same-key pushes keep insertion (= ascending fact) order.
    fn merge_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_by_key(|&(tid, _)| tid);
        let mut keys = Vec::with_capacity(self.keys.len() + self.pending.len());
        let mut offs = Vec::with_capacity(self.keys.len() + self.pending.len() + 1);
        let mut idx = Vec::with_capacity(self.idx.len() + self.pending.len());
        offs.push(0);
        let (mut k, mut p) = (0usize, 0usize);
        while k < self.keys.len() || p < self.pending.len() {
            let key = match (self.keys.get(k), self.pending.get(p)) {
                (Some(&a), Some(&(b, _))) => a.min(b),
                (Some(&a), None) => a,
                (None, Some(&(b, _))) => b,
                (None, None) => unreachable!("loop guard"),
            };
            if self.keys.get(k) == Some(&key) {
                idx.extend_from_slice(&self.idx[self.offs[k] as usize..self.offs[k + 1] as usize]);
                k += 1;
            }
            while p < self.pending.len() && self.pending[p].0 == key {
                idx.push(self.pending[p].1);
                p += 1;
            }
            keys.push(key);
            offs.push(idx.len() as u32);
        }
        self.keys = keys;
        self.offs = offs;
        self.idx = idx;
        self.pending.clear();
    }

    /// Merges any pending inserts and releases slack capacity — the
    /// bulk-load seal point.
    pub(crate) fn seal(&mut self) {
        self.merge_pending();
        self.keys.shrink_to_fit();
        self.offs.shrink_to_fit();
        self.idx.shrink_to_fit();
        self.pending = Vec::new();
    }

    /// True when every insert has been merged into the CSR arrays.
    #[inline]
    pub(crate) fn is_sealed(&self) -> bool {
        self.pending.is_empty()
    }

    /// The sealed run for `tid` (pending hits excluded; empty when absent —
    /// including the [`TermId::NONE`] probe of an uninterned term, which
    /// sorts above every real key).
    #[inline]
    pub(crate) fn sealed_run(&self, tid: TermId) -> &[u32] {
        match self.keys.binary_search(&tid) {
            Ok(k) => &self.idx[self.offs[k] as usize..self.offs[k + 1] as usize],
            Err(_) => &[],
        }
    }

    /// All hits for `tid` in ascending fact order: the CSR run borrowed
    /// directly in the sealed case, an owned splice of run + pending
    /// matches otherwise (pending facts are strictly newer, so they append
    /// in order).
    pub(crate) fn hits(&self, tid: TermId) -> Hits<'_> {
        self.hits_into(tid, Vec::new)
    }

    /// [`PostingCsr::hits`] drawing any needed owned buffer from `scratch`.
    pub(crate) fn hits_with(&self, tid: TermId, scratch: &mut PlanScratch) -> Hits<'_> {
        self.hits_into(tid, || scratch.take_hits())
    }

    fn hits_into(&self, tid: TermId, buf: impl FnOnce() -> Vec<u32>) -> Hits<'_> {
        let run = self.sealed_run(tid);
        if self.pending.is_empty() || !self.pending.iter().any(|&(t, _)| t == tid) {
            return Hits::Run(run);
        }
        let mut out = buf();
        out.extend_from_slice(run);
        out.extend(
            self.pending
                .iter()
                .filter(|&&(t, _)| t == tid)
                .map(|&(_, f)| f),
        );
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
        Hits::Owned(out)
    }

    /// The merged CSR arrays as owned vectors — the `&self` snapshot/
    /// accounting path (clones and merges when pending inserts exist; cold).
    pub(crate) fn merged_parts(&self) -> (Vec<TermId>, Vec<u32>, Vec<u32>) {
        if self.pending.is_empty() {
            (self.keys.clone(), self.offs.clone(), self.idx.clone())
        } else {
            let mut c = self.clone();
            c.merge_pending();
            (c.keys, c.offs, c.idx)
        }
    }

    /// Exact heap bytes at logical (length, not capacity) sizes.
    fn heap_bytes(&self) -> usize {
        (self.keys.len() + self.offs.len() + self.idx.len()) * std::mem::size_of::<u32>()
            + self.pending.len() * std::mem::size_of::<(TermId, u32)>()
    }
}

/// Posting hits for one probe: a borrow of the sealed CSR run in the
/// common case, an owned splice when un-merged pending inserts exist.
/// Derefs to an ascending `&[u32]` of fact indices.
#[derive(Debug)]
pub enum Hits<'a> {
    /// Borrowed sealed run.
    Run(&'a [u32]),
    /// Owned merge of sealed run + pending hits (bulk-load window only).
    Owned(Vec<u32>),
}

impl std::ops::Deref for Hits<'_> {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        match self {
            Hits::Run(s) => s,
            Hits::Owned(v) => v,
        }
    }
}

/// Reusable buffers for plan construction: the `tried` vectors of
/// [`FactPlan::Narrowed`], merge scratch, and per-goal [`Probe`] vectors
/// all draw from and return to these pools, so steady-state planning
/// allocates nothing (the per-plan heap churn this PR's satellite retires).
/// The prover owns one per engine; [`PlanScratch::recycle`] returns a
/// consumed plan's buffers.
#[derive(Debug, Default)]
pub struct PlanScratch {
    tried: Vec<Vec<(u32, u64)>>,
    hits: Vec<Vec<u32>>,
    probes: Vec<Vec<Probe>>,
}

impl PlanScratch {
    /// An empty pool (buffers materialize on first recycle).
    pub fn new() -> Self {
        Self::default()
    }

    fn take_tried(&mut self) -> Vec<(u32, u64)> {
        self.tried.pop().unwrap_or_default()
    }

    fn take_hits(&mut self) -> Vec<u32> {
        self.hits.pop().unwrap_or_default()
    }

    pub(crate) fn take_probes(&mut self) -> Vec<Probe> {
        self.probes.pop().unwrap_or_default()
    }

    fn recycle_hits_vec(&mut self, mut v: Vec<u32>) {
        v.clear();
        self.hits.push(v);
    }

    fn recycle_hits(&mut self, h: Hits<'_>) {
        if let Hits::Owned(v) = h {
            self.recycle_hits_vec(v);
        }
    }

    pub(crate) fn recycle_probes(&mut self, mut v: Vec<Probe>) {
        v.clear();
        self.probes.push(v);
    }

    /// Returns a consumed plan's owned buffers to the pool.
    pub fn recycle(&mut self, plan: FactPlan<'_>) {
        match plan {
            FactPlan::Narrowed { mut tried, .. } => {
                tried.clear();
                self.tried.push(tried);
            }
            FactPlan::Seq { indexed, .. } => self.recycle_hits(indexed),
            FactPlan::Empty | FactPlan::All { .. } => {}
        }
    }
}

/// Per-predicate storage: columnar facts with posting-list indexes, plus
/// rules in plain and compiled form. (`pub(crate)` so the snapshot module
/// can capture and restore it field-for-field.)
#[derive(Debug, Clone)]
pub(crate) struct PredEntry {
    /// Row-oracle view: the original `Literal` of every fact, in assertion
    /// order. Maintained only while *complete* — a snapshot restore leaves
    /// it empty (and late asserts then stop appending, so indices never
    /// skew); everyone resolving rows goes through [`PredEntry::row`],
    /// which falls back to a columnar rebuild.
    #[cfg(feature = "row-oracle")]
    pub(crate) rows: Vec<Literal>,
    /// Number of facts (stripes are per-position, so an arity-0 relation
    /// has no cell to count).
    pub(crate) len: u32,
    /// Contiguous stripe buffer covering **every** argument position:
    /// `cols.cell(p, f)` is fact `f`'s argument `p` as an interned id
    /// ([`TermId::NONE`] for a non-ground argument, which then has its row
    /// in `irregular`).
    pub(crate) cols: ColumnStripes,
    /// `(fact index, original literal)` for facts with at least one
    /// non-ground argument, index-ascending. These unify row-at-a-time.
    pub(crate) irregular: Vec<(u32, Literal)>,
    /// CSR posting lists per indexed position
    /// (`min(arity, MAX_INDEXED_ARGS)`): ground-term id -> ascending fact
    /// indices. `None` = index pruned.
    pub(crate) postings: Vec<Option<PostingCsr>>,
    /// Per indexed position: facts whose argument there is *not* ground
    /// (they match any probe, so every plan includes them).
    pub(crate) unindexed: Vec<Vec<u32>>,
    pub(crate) rules: Vec<Clause>,
    pub(crate) crules: Vec<CompiledClause>,
}

impl PredEntry {
    pub(crate) fn new(arity: usize) -> Self {
        let indexed = arity.min(MAX_INDEXED_ARGS);
        PredEntry {
            #[cfg(feature = "row-oracle")]
            rows: Vec::new(),
            len: 0,
            cols: ColumnStripes::new(arity),
            irregular: Vec::new(),
            postings: (0..indexed).map(|_| Some(PostingCsr::new())).collect(),
            unindexed: vec![Vec::new(); indexed],
            rules: Vec::new(),
            crules: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0 && self.rules.is_empty()
    }

    /// The irregular (non-ground) row at `idx`, if that fact has one.
    #[inline]
    fn irregular_row(&self, idx: u32) -> Option<&Literal> {
        if self.irregular.is_empty() {
            return None;
        }
        self.irregular
            .binary_search_by_key(&idx, |(f, _)| *f)
            .ok()
            .map(|k| &self.irregular[k].1)
    }

    /// Rebuilds fact `idx`'s row literal from the columns (irregular rows
    /// are served from their stored originals).
    fn rebuild_row(&self, pred: SymbolId, arena: &TermArena, idx: u32) -> Literal {
        if let Some(l) = self.irregular_row(idx) {
            return l.clone();
        }
        let args: Vec<Term> = (0..self.cols.arity())
            .map(|p| {
                let tid = self.cols.cell(p, idx);
                debug_assert!(!tid.is_none(), "regular row has only interned cells");
                arena.term(tid).clone()
            })
            .collect();
        Literal::new(pred, args)
    }

    /// The row literal of fact `idx`: borrowed from the resident row store
    /// when it is complete (`row-oracle` builds, assert-built KBs), from
    /// the irregular list when the fact is non-ground, rebuilt from the
    /// columns otherwise.
    fn row<'a>(&'a self, pred: SymbolId, arena: &'a TermArena, idx: u32) -> Cow<'a, Literal> {
        #[cfg(feature = "row-oracle")]
        if self.rows.len() == self.len as usize {
            return Cow::Borrowed(&self.rows[idx as usize]);
        }
        if let Some(l) = self.irregular_row(idx) {
            return Cow::Borrowed(l);
        }
        Cow::Owned(self.rebuild_row(pred, arena, idx))
    }

    /// Appends `fact` to the resident row store, but only while that store
    /// is complete (a snapshot restore starts it empty; appending at wrong
    /// offsets would corrupt the oracle view).
    #[cfg(feature = "row-oracle")]
    fn store_row(&mut self, fact: Literal) {
        if self.rows.len() == self.len as usize {
            self.rows.push(fact);
        }
    }

    #[cfg(not(feature = "row-oracle"))]
    fn store_row(&mut self, _fact: Literal) {}

    /// Resident row-store literals (0 unless `row-oracle` kept them).
    fn resident_rows(&self) -> usize {
        #[cfg(feature = "row-oracle")]
        {
            self.rows.len()
        }
        #[cfg(not(feature = "row-oracle"))]
        {
            0
        }
    }
}

/// A knowledge base: interned symbols and terms, indexed columnar facts,
/// and compiled rules.
#[derive(Clone)]
pub struct KnowledgeBase {
    pub(crate) syms: SymbolTable,
    pub(crate) builtins: BuiltinTable,
    pub(crate) arena: TermArena,
    pub(crate) pred_index: FxHashMap<PredKey, PredId>,
    pub(crate) keys: Vec<PredKey>,
    pub(crate) entries: Vec<PredEntry>,
    pub(crate) num_facts: usize,
    pub(crate) num_rules: usize,
}

impl KnowledgeBase {
    /// Creates an empty KB sharing `syms`.
    pub fn new(syms: SymbolTable) -> Self {
        let builtins = BuiltinTable::new(&syms);
        KnowledgeBase {
            syms,
            builtins,
            arena: TermArena::new(),
            pred_index: FxHashMap::default(),
            keys: Vec::new(),
            entries: Vec::new(),
            num_facts: 0,
            num_rules: 0,
        }
    }

    /// The symbol table this KB interns against.
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// The builtin-predicate table.
    pub fn builtins(&self) -> &BuiltinTable {
        &self.builtins
    }

    /// The ground-term arena backing the columnar fact store.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// The dense id of `key`, if the KB has an entry for it.
    #[inline]
    pub fn pred_id(&self, key: PredKey) -> Option<PredId> {
        self.pred_index.get(&key).copied()
    }

    /// The dense id of `key`, allocating an (empty) entry when absent.
    pub fn pred_id_or_insert(&mut self, key: PredKey) -> PredId {
        if let Some(&id) = self.pred_index.get(&key) {
            return id;
        }
        let id = PredId(self.entries.len() as u32);
        self.pred_index.insert(key, id);
        self.keys.push(key);
        self.entries.push(PredEntry::new(key.arity as usize));
        id
    }

    /// Adds a fact. Every ground argument is interned into the arena and
    /// stored columnar; a fact with a non-ground argument additionally
    /// keeps its original literal in the entry's irregular side list.
    ///
    /// Late arrivals compose with every earlier store mutation: positions
    /// pruned via [`KnowledgeBase::retain_indexes`] stay pruned (no posting
    /// is re-created, no `unindexed` entry drifts in), and a KB restored
    /// from a snapshot indexes the new fact exactly as a fresh build would.
    pub fn assert_fact(&mut self, fact: Literal) {
        let tids: Vec<TermId> = fact
            .args
            .iter()
            .map(|a| {
                if a.is_ground() {
                    self.arena.intern(a)
                } else {
                    TermId::NONE
                }
            })
            .collect();
        let pid = self.pred_id_or_insert(fact.key());
        let entry = &mut self.entries[pid.index()];
        let idx = entry.len;
        let mut regular = true;
        for (p, &tid) in tids.iter().enumerate() {
            regular &= !tid.is_none();
            if p >= entry.postings.len() {
                continue;
            }
            match &mut entry.postings[p] {
                // Every ground argument — atomic *or compound* — is interned
                // and posted under its arena id, so goals bound to a ground
                // compound probe instead of scanning (ROADMAP "Compound
                // probes").
                Some(csr) if !tid.is_none() => csr.insert(tid, idx),
                Some(_) => entry.unindexed[p].push(idx),
                None => {} // position pruned; late facts must not revive it
            }
        }
        entry.cols.push_row(&tids);
        if !regular {
            entry.irregular.push((idx, fact.clone()));
        }
        entry.store_row(fact);
        entry.len += 1;
        self.num_facts += 1;
    }

    /// Adds a clause; facts route to the fact store, rules to the rule list.
    pub fn assert(&mut self, clause: Clause) {
        if clause.is_fact() && clause.head.is_ground() {
            self.assert_fact(clause.head);
        } else {
            self.assert_rule(clause);
        }
    }

    /// Adds a rule (non-empty body or non-ground head), compiling its body
    /// dispatch eagerly. Predicates first seen in the body get (empty)
    /// entries, so their [`PredId`]s are stable if facts or rules for them
    /// arrive later.
    pub fn assert_rule(&mut self, rule: Clause) {
        let var_span = rule.var_span();
        let body: Box<[CompiledLiteral]> = rule
            .body
            .iter()
            .map(|l| {
                let kind = self.litkind_or_insert(l);
                CompiledLiteral {
                    lit: l.clone(),
                    kind,
                }
            })
            .collect();
        let compiled = CompiledClause {
            head: rule.head.clone(),
            body,
            var_span,
        };
        let pid = self.pred_id_or_insert(rule.head.key());
        let entry = &mut self.entries[pid.index()];
        entry.rules.push(rule);
        entry.crules.push(compiled);
        self.num_rules += 1;
    }

    fn litkind_or_insert(&mut self, l: &Literal) -> LitKind {
        if let Some(b) = self.builtins.get(l.pred) {
            return LitKind::Builtin(b);
        }
        LitKind::Pred(self.pred_id_or_insert(l.key()))
    }

    /// Resolves a goal literal's dispatch without mutating the KB (the
    /// query-compilation path: the prover holds `&KnowledgeBase`).
    pub fn litkind(&self, l: &Literal) -> LitKind {
        if let Some(b) = self.builtins.get(l.pred) {
            return LitKind::Builtin(b);
        }
        match self.pred_id(l.key()) {
            Some(id) => LitKind::Pred(id),
            None => LitKind::Unknown,
        }
    }

    /// Compiles one goal literal (see [`KnowledgeBase::compile_goals`]).
    pub fn compile_literal(&self, l: &Literal) -> CompiledLiteral {
        CompiledLiteral {
            lit: l.clone(),
            kind: self.litkind(l),
        }
    }

    /// Compiles a query literal by *moving* it into its compiled form — no
    /// clone, no allocation. Pair with
    /// [`crate::prover::Prover::solutions_compiled_reusing`] (or
    /// [`crate::clause::CompiledGoalsRef::single`]) for the allocation-free
    /// saturation query path.
    pub fn compile_query(&self, l: Literal) -> CompiledLiteral {
        CompiledLiteral {
            kind: self.litkind(&l),
            lit: l,
        }
    }

    /// Compiles a goal conjunction for repeated proving. Predicate and
    /// builtin dispatch is resolved once here; per-goal work in the prover
    /// becomes array reads. Compile once per rule evaluation, not per
    /// example.
    pub fn compile_goals(&self, goals: &[Literal]) -> CompiledGoals {
        CompiledGoals {
            lits: goals.iter().map(|l| self.compile_literal(l)).collect(),
            var_span: goals
                .iter()
                .filter_map(Literal::max_var)
                .max()
                .map_or(0, |v| v + 1),
        }
    }

    /// Compiled rules whose head predicate is `id` (assertion order).
    #[inline]
    pub fn rules_compiled(&self, id: PredId) -> &[CompiledClause] {
        &self.entries[id.index()].crules
    }

    /// The column-native view of predicate `id`'s facts — the unification
    /// target once a plan has selected candidates. A candidate row unifies
    /// cell-by-cell against the goal via
    /// [`crate::subst::Bindings::unify_term_id`]; the rare irregular (non-
    /// ground) row falls back to row-at-a-time literal unification.
    #[inline]
    pub fn fact_cols(&self, id: PredId) -> FactCols<'_> {
        FactCols {
            pred: self.keys[id.index()].pred,
            entry: &self.entries[id.index()],
            arena: &self.arena,
        }
    }

    /// Builds the retrieval plan for a goal on predicate `id`.
    ///
    /// `probes` carries the goal's arguments pre-resolved to [`Probe`]s,
    /// one per argument position (see
    /// [`crate::subst::Bindings::probe`]) — resolved once by the caller
    /// and shared across every indexed position, where the old closure
    /// interface re-walked and re-hashed the argument per position.
    /// `scratch` supplies the plan's owned buffers; hand the consumed plan
    /// back via [`PlanScratch::recycle`] and steady-state planning
    /// allocates nothing.
    ///
    /// The returned plan enumerates a *superset* of the facts unifiable
    /// with the goal, and a *subset* of the reference (first-argument)
    /// candidate set R, in R's order — see the module docs for the step
    /// contract. [`KnowledgeBase::fact_plan_batch`] is the multi-goal
    /// variant and must stay plan-for-plan identical to this.
    pub fn fact_plan<'a>(
        &'a self,
        id: PredId,
        probes: &[Probe],
        scratch: &mut PlanScratch,
    ) -> FactPlan<'a> {
        let entry = &self.entries[id.index()];
        debug_assert_eq!(probes.len(), entry.cols.arity());
        let n = entry.len as usize;
        if n == 0 {
            return FactPlan::Empty;
        }
        // The reference candidate sequence R: first-arg posting hits then
        // first-arg-unindexable facts when the first argument is bound to a
        // ground term, every fact otherwise. (Mirrors `candidate_facts`
        // exactly — R *is* the step-accounting contract.) A ground-but-
        // uninterned probe keys [`TermId::NONE`], which matches no posting
        // key: empty hits, exactly as the retired hashmap lookup missed.
        let first_segments = if !entry.postings.is_empty() && probes[0].is_ground() {
            // Invariant: position 0 is never pruned — `retain_indexes`
            // unconditionally keeps it and snapshot validation rejects a
            // store without it (it defines the reference candidate set,
            // i.e. the step-accounting contract).
            let posting = entry.postings[0]
                .as_ref()
                .expect("invariant: position-0 posting list is never pruned");
            let hits = posting.hits_with(probes[0].tid(), scratch);
            // Reference-probe selectivity (position 0 only: that probe
            // defines R). One relaxed load when sampling is off.
            if hits.is_empty() {
                hot::posting_probe_miss();
            } else {
                hot::posting_probe_hit();
            }
            Some((hits, entry.unindexed[0].as_slice()))
        } else {
            None
        };
        let r_len = first_segments
            .as_ref()
            .map_or(n as u64, |(a, b)| (a.len() + b.len()) as u64);

        // Hash-join choice: the most selective bound position, by candidate
        // count (posting hits + position-unindexable facts).
        struct Alt<'h> {
            pos: usize,
            tid: TermId,
            hits: Hits<'h>,
            un: &'h [u32],
            size: u64,
        }
        let mut best: Option<Alt<'a>> = None;
        if r_len > NARROW_MIN {
            for (p, posting) in entry.postings.iter().enumerate().skip(1) {
                let Some(posting) = posting.as_ref() else {
                    continue;
                };
                if !probes[p].is_ground() {
                    continue;
                }
                let tid = probes[p].tid();
                let hits = posting.hits_with(tid, scratch);
                let un = entry.unindexed[p].as_slice();
                let size = (hits.len() + un.len()) as u64;
                if best.as_ref().is_none_or(|b| size < b.size) {
                    if let Some(old) = best.replace(Alt {
                        pos: p,
                        tid,
                        hits,
                        un,
                        size,
                    }) {
                        scratch.recycle_hits(old.hits);
                    }
                } else {
                    scratch.recycle_hits(hits);
                }
            }
        }

        match (best, first_segments) {
            // A strictly narrower position wins: enumerate its candidates
            // restricted to R, tagged with their rank in R.
            (Some(alt), segs) if alt.size.saturating_mul(2) < r_len => {
                let mut tried = scratch.take_tried();
                let total = match &segs {
                    // R is the whole relation: the posting list *is* the
                    // tried set, and a fact's rank is its own index. With no
                    // position-unindexable facts (the common all-ground
                    // relation) the hits run is consumed in place — no merge
                    // copy.
                    None => {
                        if alt.un.is_empty() {
                            for &f in alt.hits.iter() {
                                tried.push((f, f as u64));
                            }
                        } else {
                            let mut merged = scratch.take_hits();
                            merge_sorted_into(&alt.hits, alt.un, &mut merged);
                            for &f in &merged {
                                tried.push((f, f as u64));
                            }
                            scratch.recycle_hits_vec(merged);
                        }
                        n as u64
                    }
                    // R is the first-arg candidate walk. When every fact's
                    // argument at `alt.pos` is ground (the common case),
                    // membership is one contiguous-stripe u32 compare per
                    // reference candidate.
                    Some((s1, s2)) if alt.un.is_empty() => {
                        let col = entry.cols.stripe(alt.pos);
                        for (rank, &f) in s1.iter().enumerate() {
                            if col[f as usize] == alt.tid {
                                tried.push((f, rank as u64));
                            }
                        }
                        for (rank, &f) in s2.iter().enumerate() {
                            if col[f as usize] == alt.tid {
                                tried.push((f, (s1.len() + rank) as u64));
                            }
                        }
                        r_len
                    }
                    // Mixed ground/non-ground arguments: intersect the
                    // sorted posting candidates with the R segments.
                    Some((s1, s2)) => {
                        let mut merged = scratch.take_hits();
                        merge_sorted_into(&alt.hits, alt.un, &mut merged);
                        intersect_ranks(s1, &merged, 0, &mut tried);
                        intersect_ranks(s2, &merged, s1.len() as u64, &mut tried);
                        scratch.recycle_hits_vec(merged);
                        r_len
                    }
                };
                scratch.recycle_hits(alt.hits);
                if let Some((h, _)) = segs {
                    scratch.recycle_hits(h);
                }
                FactPlan::Narrowed { tried, total }
            }
            (best, Some((indexed, unindexed))) => {
                if let Some(alt) = best {
                    scratch.recycle_hits(alt.hits);
                }
                FactPlan::Seq { indexed, unindexed }
            }
            (best, None) => {
                if let Some(alt) = best {
                    scratch.recycle_hits(alt.hits);
                }
                FactPlan::All { n: n as u32 }
            }
        }
    }

    /// Multi-goal [`KnowledgeBase::fact_plan`]: plans a whole batch of
    /// goals against predicate `id`, sharing work between goals instead of
    /// replanning from scratch per goal.
    ///
    /// The output is positional and **plan-for-plan identical** to mapping
    /// [`KnowledgeBase::fact_plan`] over `goal_probes` (pinned by the batch
    /// differential proptest) — batching changes *when* work happens, never
    /// what any goal's plan contains. Goals whose first argument probes the
    /// same key form a group: the group fetches its position-0 posting run
    /// once, and every member that narrows through the stripe-compare case
    /// rides ONE shared pass over that run (each reference candidate is
    /// loaded once and tested against all pending goals) — the batched
    /// all-ground probing of the data-movement work; the saturation loop in
    /// `bottom.rs` and single-literal coverage in `coverage.rs` are the
    /// callers with natural batches.
    ///
    /// Postings with un-merged pending inserts fall back to the per-goal
    /// path (mid-bulk-load hit runs are owned splices, not shareable
    /// slices; the plans are identical either way).
    pub fn fact_plan_batch<'a>(
        &'a self,
        id: PredId,
        goal_probes: &[Vec<Probe>],
        scratch: &mut PlanScratch,
    ) -> Vec<FactPlan<'a>> {
        let entry = &self.entries[id.index()];
        let n = entry.len as usize;
        let sealed = entry.postings.iter().flatten().all(PostingCsr::is_sealed);
        if !sealed || n == 0 {
            return goal_probes
                .iter()
                .map(|p| self.fact_plan(id, p, scratch))
                .collect();
        }
        // How full the shared-scan batches actually run — the occupancy
        // histogram that says whether callers batch enough goals to pay
        // for the grouping.
        hot::batch_occupancy(goal_probes.len());

        // Group goal indices by their position-0 probe key (`None`: first
        // argument free, or no indexed position at all — R is the whole
        // relation). Goal batches are small, so the linear group lookup
        // beats hashing.
        let mut groups: Vec<(Option<TermId>, Vec<usize>)> = Vec::new();
        for (g, probes) in goal_probes.iter().enumerate() {
            debug_assert_eq!(probes.len(), entry.cols.arity());
            let key = if entry.postings.is_empty() || !probes[0].is_ground() {
                None
            } else {
                Some(probes[0].tid())
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(g),
                None => groups.push((key, vec![g])),
            }
        }

        /// A goal waiting on the group's shared reference-walk scan.
        struct Deferred {
            goal: usize,
            pos: usize,
            tid: TermId,
            tried: Vec<(u32, u64)>,
        }
        let mut plans: Vec<Option<FactPlan<'a>>> = (0..goal_probes.len()).map(|_| None).collect();
        for (key, goals) in groups {
            // One position-0 posting fetch per distinct key.
            let segs: Option<(&[u32], &[u32])> = key.map(|tid| {
                let posting = entry.postings[0]
                    .as_ref()
                    .expect("invariant: position-0 posting list is never pruned");
                let run = posting.sealed_run(tid);
                // Mirrors the single-goal path's reference-probe counter:
                // one probe per distinct position-0 key.
                if run.is_empty() {
                    hot::posting_probe_miss();
                } else {
                    hot::posting_probe_hit();
                }
                (run, entry.unindexed[0].as_slice())
            });
            let r_len = segs.map_or(n as u64, |(a, b)| (a.len() + b.len()) as u64);
            let mut deferred: Vec<Deferred> = Vec::new();
            for g in goals {
                let probes = &goal_probes[g];
                // Hash-join choice, exactly as the single-goal path.
                struct Alt<'h> {
                    pos: usize,
                    tid: TermId,
                    hits: &'h [u32],
                    un: &'h [u32],
                    size: u64,
                }
                let mut best: Option<Alt<'a>> = None;
                if r_len > NARROW_MIN {
                    for (p, posting) in entry.postings.iter().enumerate().skip(1) {
                        let Some(posting) = posting.as_ref() else {
                            continue;
                        };
                        if !probes[p].is_ground() {
                            continue;
                        }
                        let tid = probes[p].tid();
                        let hits = posting.sealed_run(tid);
                        let un = entry.unindexed[p].as_slice();
                        let size = (hits.len() + un.len()) as u64;
                        if best.as_ref().is_none_or(|b| size < b.size) {
                            best = Some(Alt {
                                pos: p,
                                tid,
                                hits,
                                un,
                                size,
                            });
                        }
                    }
                }
                plans[g] = match (best, segs) {
                    (Some(alt), segs) if alt.size.saturating_mul(2) < r_len => match segs {
                        None => {
                            let mut tried = scratch.take_tried();
                            if alt.un.is_empty() {
                                for &f in alt.hits {
                                    tried.push((f, f as u64));
                                }
                            } else {
                                let mut merged = scratch.take_hits();
                                merge_sorted_into(alt.hits, alt.un, &mut merged);
                                for &f in &merged {
                                    tried.push((f, f as u64));
                                }
                                scratch.recycle_hits_vec(merged);
                            }
                            Some(FactPlan::Narrowed {
                                tried,
                                total: n as u64,
                            })
                        }
                        // The shareable stripe-compare case: park the goal;
                        // the single pass below fills its tried set.
                        Some(_) if alt.un.is_empty() => {
                            deferred.push(Deferred {
                                goal: g,
                                pos: alt.pos,
                                tid: alt.tid,
                                tried: scratch.take_tried(),
                            });
                            None
                        }
                        Some((s1, s2)) => {
                            let mut tried = scratch.take_tried();
                            let mut merged = scratch.take_hits();
                            merge_sorted_into(alt.hits, alt.un, &mut merged);
                            intersect_ranks(s1, &merged, 0, &mut tried);
                            intersect_ranks(s2, &merged, s1.len() as u64, &mut tried);
                            scratch.recycle_hits_vec(merged);
                            Some(FactPlan::Narrowed {
                                tried,
                                total: r_len,
                            })
                        }
                    },
                    (_, Some((indexed, unindexed))) => Some(FactPlan::Seq {
                        indexed: Hits::Run(indexed),
                        unindexed,
                    }),
                    (_, None) => Some(FactPlan::All { n: n as u32 }),
                };
            }
            // The shared scan: one pass over the group's reference walk,
            // each candidate row tested against every parked goal (ranks
            // ascend per goal exactly as the single-goal loop produces).
            if !deferred.is_empty() {
                let (s1, s2) = segs.expect("deferred goals narrow a first-arg walk");
                for (rank, &f) in s1.iter().enumerate() {
                    for d in deferred.iter_mut() {
                        if entry.cols.stripe(d.pos)[f as usize] == d.tid {
                            d.tried.push((f, rank as u64));
                        }
                    }
                }
                for (rank, &f) in s2.iter().enumerate() {
                    for d in deferred.iter_mut() {
                        if entry.cols.stripe(d.pos)[f as usize] == d.tid {
                            d.tried.push((f, (s1.len() + rank) as u64));
                        }
                    }
                }
                for d in deferred {
                    plans[d.goal] = Some(FactPlan::Narrowed {
                        tried: d.tried,
                        total: r_len,
                    });
                }
            }
        }
        plans
            .into_iter()
            .map(|p| p.expect("every goal planned"))
            .collect()
    }

    /// Test/debug view of [`KnowledgeBase::fact_plan`]: the fact indices the
    /// plan would try (in reference order) and the reference candidate
    /// count, for a goal with the given per-position ground terms.
    pub fn plan_candidates(&self, key: PredKey, bound: &[Option<Term>]) -> (Vec<u32>, u64) {
        let Some(id) = self.pred_id(key) else {
            return (Vec::new(), 0);
        };
        // Mirror the prover's probe contract: only ground terms probe, and
        // an uninterned ground term probes as a miss.
        let probes: Vec<Probe> = (0..key.arity as usize)
            .map(|p| match bound.get(p).and_then(|o| o.as_ref()) {
                Some(t) if t.is_ground() => self.arena.lookup(t).map_or(Probe::Miss, Probe::Id),
                _ => Probe::Free,
            })
            .collect();
        let mut scratch = PlanScratch::new();
        let plan = self.fact_plan(id, &probes, &mut scratch);
        match plan {
            FactPlan::Empty => (Vec::new(), 0),
            FactPlan::All { n } => ((0..n).collect(), n as u64),
            FactPlan::Seq { indexed, unindexed } => {
                let mut v = indexed.to_vec();
                v.extend_from_slice(unindexed);
                let total = v.len() as u64;
                (v, total)
            }
            FactPlan::Narrowed { tried, total } => {
                (tried.into_iter().map(|(f, _)| f).collect(), total)
            }
        }
    }

    /// Prunes the posting lists of `key` down to `keep` argument positions
    /// (position 0 is always retained: it defines the reference candidate
    /// set). Callers with a language bias — mode declarations say which
    /// positions ever arrive bound — use this to drop indexes that can
    /// never be probed. Facts asserted *after* pruning respect it: pruned
    /// positions get neither postings nor `unindexed` entries.
    pub fn retain_indexes(&mut self, key: PredKey, keep: &[usize]) {
        let pid = self.pred_id_or_insert(key);
        let entry = &mut self.entries[pid.index()];
        for p in 1..entry.postings.len() {
            if !keep.contains(&p) {
                entry.postings[p] = None;
                entry.unindexed[p] = Vec::new();
            }
        }
    }

    /// Releases load-time over-allocation and seals the indexes: the arena
    /// shrinks, stripe buffers compact to exact adjacency (`cap == len`),
    /// and every CSR posting merges its pending inserts into the three
    /// contiguous arrays. Call once after bulk construction. (Everything
    /// stays correct without it — probes splice pending hits on the fly —
    /// but sealed postings are what the zero-copy snapshot and the batch
    /// planner's shared scans operate on.)
    pub fn optimize(&mut self) {
        self.arena.shrink_to_fit();
        for entry in &mut self.entries {
            #[cfg(feature = "row-oracle")]
            entry.rows.shrink_to_fit();
            entry.irregular.shrink_to_fit();
            entry.cols.shrink_to_fit();
            for posting in entry.postings.iter_mut().flatten() {
                posting.seal();
            }
            for un in &mut entry.unindexed {
                un.shrink_to_fit();
            }
        }
    }

    /// Facts possibly matching `goal` under first-argument indexing only —
    /// the seed enumeration order, shared by the differential oracle
    /// ([`crate::prover::reference`]) and the step-accounting contract. The
    /// optimized prover uses [`KnowledgeBase::fact_plan`] instead.
    ///
    /// Yields row literals: borrowed from the resident row store when the
    /// `row-oracle` feature keeps it (so the oracle unifies against the
    /// original literals, exactly as the seed did), rebuilt lazily from the
    /// columns otherwise.
    ///
    /// `first_arg` must already be dereferenced by the caller's bindings.
    /// Any *ground* first argument probes the posting list — ground
    /// compound terms included, since the arena interns them (ROADMAP
    /// "Compound probes"); only a variable or a compound still containing
    /// variables falls back to the scan.
    pub fn candidate_facts(&self, key: PredKey, first_arg: Option<&Term>) -> FactIter<'_> {
        let Some(&pid) = self.pred_index.get(&key) else {
            return FactIter::empty();
        };
        let entry = &self.entries[pid.index()];
        let rows = FactCols {
            pred: key.pred,
            entry,
            arena: &self.arena,
        };
        match first_arg {
            Some(t) if t.is_ground() && !entry.postings.is_empty() => {
                // Invariant: position 0 is never pruned (see `fact_plan`).
                let posting = entry.postings[0]
                    .as_ref()
                    .expect("invariant: position-0 posting list is never pruned");
                let indexed = posting.hits(self.arena.lookup(t).unwrap_or(TermId::NONE));
                FactIter {
                    rows: Some(rows),
                    order: Order::Indexed {
                        indexed,
                        unindexed: &entry.unindexed[0],
                    },
                    pos: 0,
                }
            }
            _ => FactIter {
                rows: Some(rows),
                order: Order::All { n: entry.len },
                pos: 0,
            },
        }
    }

    /// Rules whose head predicate matches `key`.
    pub fn rules_for(&self, key: PredKey) -> &[Clause] {
        self.pred_id(key)
            .map(|id| self.entries[id.index()].rules.as_slice())
            .unwrap_or(&[])
    }

    /// All facts of a predicate, as row literals in assertion order — the
    /// unfiltered debug/oracle view. Rows are rebuilt from the columns
    /// (irregular facts from their stored originals); this allocates and is
    /// not for hot paths.
    pub fn facts_for(&self, key: PredKey) -> Vec<Literal> {
        let Some(id) = self.pred_id(key) else {
            return Vec::new();
        };
        let entry = &self.entries[id.index()];
        (0..entry.len)
            .map(|f| entry.row(key.pred, &self.arena, f).into_owned())
            .collect()
    }

    /// The row literal of one fact (`Display`/debug path).
    pub fn fact_literal(&self, id: PredId, idx: u32) -> Literal {
        let entry = &self.entries[id.index()];
        entry
            .row(self.keys[id.index()].pred, &self.arena, idx)
            .into_owned()
    }

    /// Total number of stored facts.
    pub fn num_facts(&self) -> usize {
        self.num_facts
    }

    /// Total number of stored rules.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }

    /// How many row `Literal`s are resident in memory: non-zero only under
    /// the `row-oracle` feature, and only for assert-built KBs — a KB
    /// restored from a snapshot materializes no rows in any build.
    pub fn resident_rows(&self) -> usize {
        self.entries.iter().map(PredEntry::resident_rows).sum()
    }

    /// Approximate heap bytes of the *resident* fact store: columns,
    /// irregular rows, (under `row-oracle`) the row store, and the arena
    /// terms that exist *only* to back column cells past the indexable
    /// prefix — storage the retired row+column layout never paid, since its
    /// arena interned just the first [`MAX_INDEXED_ARGS`] positions.
    /// Excludes the rest of the arena and the posting lists (shared and
    /// identical between the two layouts, so they cancel out of the
    /// `fact_memory` comparison).
    pub fn fact_store_bytes(&self) -> usize {
        let mut bytes = self.past_prefix_arena_bytes();
        for entry in &self.entries {
            // One stripe buffer per relation, counted at its compact size
            // (arity * len cells; optimize() releases load-time slack).
            bytes += std::mem::size_of::<Vec<TermId>>()
                + entry.cols.arity() * entry.cols.len() as usize * std::mem::size_of::<TermId>();
            for (_, lit) in &entry.irregular {
                bytes += std::mem::size_of::<(u32, Literal)>() + literal_heap_bytes(lit);
            }
            #[cfg(feature = "row-oracle")]
            for lit in &entry.rows {
                bytes += std::mem::size_of::<Literal>() + literal_heap_bytes(lit);
            }
        }
        bytes
    }

    /// Bytes of arena terms referenced *exclusively* by column cells past
    /// the indexable prefix (positions ≥ [`MAX_INDEXED_ARGS`]). The retired
    /// layout never interned those positions, so this is column-native-only
    /// arena growth and is charged to [`KnowledgeBase::fact_store_bytes`]
    /// to keep the memory comparison honest on wide relations.
    fn past_prefix_arena_bytes(&self) -> usize {
        let n = self.arena.len();
        if n == 0 {
            return 0;
        }
        let mut in_prefix = vec![false; n];
        let mut past_prefix = vec![false; n];
        for entry in &self.entries {
            for p in 0..entry.cols.arity() {
                let seen = if p < MAX_INDEXED_ARGS {
                    &mut in_prefix
                } else {
                    &mut past_prefix
                };
                for tid in entry.cols.stripe(p) {
                    if !tid.is_none() {
                        seen[tid.index()] = true;
                    }
                }
            }
        }
        (0..n)
            .filter(|&i| past_prefix[i] && !in_prefix[i])
            .map(|i| {
                std::mem::size_of::<Term>() + term_heap_bytes(self.arena.term(TermId(i as u32)))
            })
            .sum()
    }

    /// Approximate heap bytes the retired duplicate layout would hold for
    /// this KB's facts: one row `Literal` per fact *plus* the columns of
    /// the indexable prefix (`min(arity, MAX_INDEXED_ARGS)` positions), as
    /// the store kept before column-native unification. The `fact_memory`
    /// benchmark gates `row_baseline_bytes / fact_store_bytes`.
    pub fn row_baseline_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for (key, entry) in self.keys.iter().zip(self.entries.iter()) {
            let indexed = (key.arity as usize).min(MAX_INDEXED_ARGS);
            bytes += indexed
                * (std::mem::size_of::<Vec<TermId>>()
                    + entry.len as usize * std::mem::size_of::<TermId>());
            for f in 0..entry.len {
                // Row cost without materializing the row: header + one
                // `Term` per argument + each argument's own heap.
                bytes += std::mem::size_of::<Literal>();
                match entry.irregular_row(f) {
                    Some(lit) => bytes += literal_heap_bytes(lit),
                    None => {
                        for p in 0..entry.cols.arity() {
                            bytes += std::mem::size_of::<Term>()
                                + term_heap_bytes(self.arena.term(entry.cols.cell(p, f)));
                        }
                    }
                }
            }
        }
        bytes
    }

    /// Exact heap bytes of the resident CSR posting indexes: per live
    /// posting, its three contiguous arrays (keys/offsets/fact indices) at
    /// logical size plus any pending side-buffer entries, plus the
    /// `PostingCsr` struct itself (its counterpart map struct is charged
    /// to the baseline). Deterministic — no capacities, no wall clock — so
    /// the `posting_memory` bench bar is CI-enforceable like the
    /// fact-memory gate.
    pub fn posting_store_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for entry in &self.entries {
            for csr in entry.postings.iter().flatten() {
                bytes += std::mem::size_of::<PostingCsr>() + csr.heap_bytes();
            }
        }
        bytes
    }

    /// Modeled heap bytes of the retired `FxHashMap<TermId, Vec<u32>>`
    /// posting layout for the same index contents — the `posting_memory`
    /// baseline. Per posting with K keys: the hashbrown-style table
    /// (`slots(K)` slots of one `(TermId, Vec<u32>)` entry — 32 bytes with
    /// the inline `Vec` header — plus one control byte each, slot count
    /// rounded up to a power of two at the 7/8 load factor), one heap
    /// allocation per key holding that key's run (4 bytes per fact index
    /// plus 16 bytes of modeled allocator bookkeeping — malloc header and
    /// size-class rounding), and the map struct. The CSR side's three
    /// allocations carry the same bookkeeping, but as a per-*posting*
    /// constant rather than per-*key*, so it is omitted on both sides of
    /// the per-key comparison.
    pub fn posting_hashmap_baseline_bytes(&self) -> usize {
        const ALLOC_OVERHEAD: usize = 16;
        fn table_slots(keys: usize) -> usize {
            match keys {
                0 => 0,
                1..=3 => 4,
                4..=7 => 8,
                k => (k * 8 / 7 + 1).next_power_of_two(),
            }
        }
        let slot_size = std::mem::size_of::<(TermId, Vec<u32>)>() + 1;
        let mut bytes = 0usize;
        for entry in &self.entries {
            for csr in entry.postings.iter().flatten() {
                let (keys, _offs, idx) = csr.merged_parts();
                bytes += std::mem::size_of::<FxHashMap<TermId, Vec<u32>>>()
                    + table_slots(keys.len()) * slot_size
                    + idx.len() * std::mem::size_of::<u32>()
                    + keys.len() * ALLOC_OVERHEAD;
            }
        }
        bytes
    }

    /// Raw view of one sealed posting: `(keys, offsets, fact indices,
    /// pending count)`. The layout-audit test asserts run adjacency through
    /// this; not a stable API.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn posting_parts(
        &self,
        id: PredId,
        pos: usize,
    ) -> Option<(&[TermId], &[u32], &[u32], usize)> {
        let csr = self.entries[id.index()].postings.get(pos)?.as_ref()?;
        Some((&csr.keys, &csr.offs, &csr.idx, csr.pending.len()))
    }

    /// Every `(predicate, arity)` with at least one fact or rule. (Entries
    /// allocated only as compiled body references are skipped.)
    pub fn predicates(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.keys
            .iter()
            .zip(self.entries.iter())
            .filter(|(_, e)| !e.is_empty())
            .map(|(k, _)| *k)
    }

    /// Removes every rule of `key`, returning how many were removed.
    /// (Used by tests and by theory resets between cross-validation folds.)
    pub fn retract_rules(&mut self, key: PredKey) -> usize {
        let Some(id) = self.pred_id(key) else {
            return 0;
        };
        let entry = &mut self.entries[id.index()];
        let n = entry.rules.len();
        entry.rules.clear();
        entry.crules.clear();
        self.num_rules -= n;
        n
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KnowledgeBase({} preds, {} facts, {} rules, {} terms)",
            self.pred_index.len(),
            self.num_facts,
            self.num_rules,
            self.arena.len(),
        )
    }
}

/// Heap bytes hanging off one term (the boxed argument slices of compound
/// terms; atomic terms are inline).
fn term_heap_bytes(t: &Term) -> usize {
    match t {
        Term::App(_, args) => {
            args.len() * std::mem::size_of::<Term>()
                + args.iter().map(term_heap_bytes).sum::<usize>()
        }
        _ => 0,
    }
}

/// Heap bytes hanging off one literal (its boxed argument slice plus each
/// argument's own heap).
fn literal_heap_bytes(l: &Literal) -> usize {
    l.args.len() * std::mem::size_of::<Term>() + l.args.iter().map(term_heap_bytes).sum::<usize>()
}

/// Merges two sorted, disjoint index slices into `out` (cleared first; the
/// buffer comes from and returns to a [`PlanScratch`] pool).
fn merge_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Pushes `(fact, rank_base + rank-in-seg)` for every member of `cands`
/// found in the ascending slice `seg`. Binary search with a moving floor:
/// O(|cands| · log |seg|), and output ranks ascend.
fn intersect_ranks(seg: &[u32], cands: &[u32], rank_base: u64, out: &mut Vec<(u32, u64)>) {
    let mut lo = 0usize;
    for &c in cands {
        if lo >= seg.len() {
            break;
        }
        match seg[lo..].binary_search(&c) {
            Ok(k) => {
                out.push((c, rank_base + (lo + k) as u64));
                lo += k + 1;
            }
            Err(k) => lo += k,
        }
    }
}

/// A fact-retrieval plan produced by [`KnowledgeBase::fact_plan`].
///
/// All variants enumerate candidates in *reference order* (first-argument
/// posting hits, then first-arg-unindexable facts; or plain fact order), so
/// solution discovery order — and therefore early-exit behavior — matches
/// the oracle exactly.
#[derive(Debug)]
pub enum FactPlan<'a> {
    /// No facts for this predicate.
    Empty,
    /// Scan every fact (first argument not ground, and no better position
    /// available).
    All {
        /// Number of facts.
        n: u32,
    },
    /// The reference first-argument enumeration: posting hits then
    /// unindexable facts, each to be tried (and charged) individually.
    Seq {
        /// Posting hits for the first argument's ground term (a borrowed
        /// CSR run once sealed; an owned splice mid-bulk-load).
        indexed: Hits<'a>,
        /// Facts whose first argument is not ground.
        unindexed: &'a [u32],
    },
    /// A narrower position was chosen: try only `tried` (fact index plus
    /// its rank in the reference enumeration, ranks ascending); every
    /// reference candidate in between fails unification on the chosen bound
    /// position and is bulk-charged by the prover.
    Narrowed {
        /// `(fact index, rank in the reference enumeration)`, rank-ascending.
        tried: Vec<(u32, u64)>,
        /// Reference candidate count (facts the seed semantics would try).
        total: u64,
    },
}

/// Column-native view of one predicate's facts — the unification target
/// handed to the prover once a [`FactPlan`] selected candidate rows.
pub struct FactCols<'a> {
    pred: SymbolId,
    entry: &'a PredEntry,
    arena: &'a TermArena,
}

impl<'a> FactCols<'a> {
    /// The arena the column cells point into.
    #[inline]
    pub fn arena(&self) -> &'a TermArena {
        self.arena
    }

    /// Number of argument positions (one stripe each).
    #[inline]
    pub fn arity(&self) -> usize {
        self.entry.cols.arity()
    }

    /// Number of fact rows.
    #[inline]
    pub fn len(&self) -> u32 {
        self.entry.len
    }

    /// True when the relation holds no facts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entry.len == 0
    }

    /// Fact `row`'s argument `pos` as an interned id.
    #[inline]
    pub fn cell(&self, pos: usize, row: u32) -> TermId {
        self.entry.cols.cell(pos, row)
    }

    /// The contiguous stripe of position `pos`: the arguments of rows
    /// `0..len` as one `&[TermId]` run (after
    /// [`KnowledgeBase::optimize`], stripe `p + 1` is exactly adjacent to
    /// stripe `p` — the layout-audit test pins this).
    #[inline]
    pub fn stripe(&self, pos: usize) -> &'a [TermId] {
        // Reborrow through the entry so the slice carries the KB lifetime.
        let start = pos * self.entry.cols.cap as usize;
        &self.entry.cols.data[start..start + self.entry.len as usize]
    }

    /// True when every row is regular (all arguments ground) — the
    /// licensing condition for the all-ground compare kernel: with no
    /// irregular row and an all-ground goal, unification binds nothing and
    /// a candidate matches iff each stripe cell equals the goal's probe id.
    #[inline]
    pub fn all_regular(&self) -> bool {
        self.entry.irregular.is_empty()
    }

    /// All-ground block compare: a bitmask of rows `base..base + blk`
    /// (`1 <= blk <= 64`) whose every cell equals the corresponding
    /// [`Probe::Id`]. One stripe is streamed per goal argument — a
    /// branch-light equality-accumulate loop stable Rust autovectorizes —
    /// with an early exit once the block mask empties. A [`Probe::Miss`]
    /// matches nothing (no cell can equal an uninterned term); callers
    /// guarantee no [`Probe::Free`] (kernel precondition).
    pub fn match_mask(&self, probes: &[Probe], base: u32, blk: u32) -> u64 {
        debug_assert!((1..=64).contains(&blk) && base + blk <= self.entry.len);
        hot::all_ground_kernel();
        let mut mask: u64 = if blk == 64 {
            u64::MAX
        } else {
            (1u64 << blk) - 1
        };
        for (p, probe) in probes.iter().enumerate() {
            let id = match *probe {
                Probe::Id(id) => id,
                Probe::Miss => return 0,
                Probe::Free => {
                    debug_assert!(false, "kernel requires ground probes");
                    continue;
                }
            };
            let stripe = &self.stripe(p)[base as usize..(base + blk) as usize];
            let mut m = 0u64;
            for (i, &cell) in stripe.iter().enumerate() {
                m |= u64::from(cell == id) << i;
            }
            mask &= m;
            if mask == 0 {
                return 0;
            }
        }
        mask
    }

    /// Scalar all-ground row filter for gathered (index-selected)
    /// candidates: true iff every cell of `row` equals its probe id. Same
    /// preconditions as [`FactCols::match_mask`].
    #[inline]
    pub fn row_matches(&self, probes: &[Probe], row: u32) -> bool {
        probes.iter().enumerate().all(|(p, probe)| match *probe {
            Probe::Id(id) => self.cell(p, row) == id,
            Probe::Miss => false,
            Probe::Free => {
                debug_assert!(false, "kernel requires ground probes");
                true
            }
        })
    }

    /// The original literal of fact `row` when it has a non-ground
    /// argument (such rows unify literal-at-a-time); `None` for the common
    /// all-ground row. O(1) for the all-regular relation.
    #[inline]
    pub fn irregular_row(&self, row: u32) -> Option<&'a Literal> {
        self.entry.irregular_row(row)
    }

    /// Rebuilds fact `row`'s literal (debug/Display, not the hot path).
    pub fn row_literal(&self, row: u32) -> Literal {
        self.row(row).into_owned()
    }

    /// Fact `row`'s literal as [`PredEntry::row`] serves it: borrowed from
    /// the resident `row-oracle` store or the irregular list when
    /// possible, rebuilt otherwise.
    fn row(&self, row: u32) -> Cow<'a, Literal> {
        self.entry.row(self.pred, self.arena, row)
    }
}

/// Enumeration order of a [`FactIter`].
enum Order<'a> {
    /// All facts, `0..n`.
    All { n: u32 },
    /// Index hits followed by facts the index could not cover.
    Indexed {
        indexed: Hits<'a>,
        unindexed: &'a [u32],
    },
}

/// Iterator over candidate facts returned by
/// [`KnowledgeBase::candidate_facts`]. Yields row literals — borrowed from
/// the resident `row-oracle` store when present, rebuilt from the columns
/// otherwise (see the module docs).
pub struct FactIter<'a> {
    rows: Option<FactCols<'a>>,
    order: Order<'a>,
    pos: usize,
}

impl FactIter<'_> {
    fn empty() -> Self {
        FactIter {
            rows: None,
            order: Order::All { n: 0 },
            pos: 0,
        }
    }
}

impl<'a> Iterator for FactIter<'a> {
    type Item = Cow<'a, Literal>;

    fn next(&mut self) -> Option<Cow<'a, Literal>> {
        let rows = self.rows.as_ref()?;
        let idx = match &self.order {
            Order::All { n } => {
                if self.pos >= *n as usize {
                    return None;
                }
                self.pos as u32
            }
            Order::Indexed { indexed, unindexed } => {
                if self.pos < indexed.len() {
                    indexed[self.pos]
                } else {
                    *unindexed.get(self.pos - indexed.len())?
                }
            }
        };
        self.pos += 1;
        Some(rows.row(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    #[test]
    fn indexed_lookup_narrows_candidates() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m1 = Term::Sym(t.intern("m1"));
        let m2 = Term::Sym(t.intern("m2"));
        for i in 0..5 {
            kb.assert_fact(lit(&t, "atm", vec![m1.clone(), Term::Int(i)]));
        }
        kb.assert_fact(lit(&t, "atm", vec![m2.clone(), Term::Int(9)]));

        let key = lit(&t, "atm", vec![m1.clone(), Term::Int(0)]).key();
        assert_eq!(kb.candidate_facts(key, Some(&m1)).count(), 5);
        assert_eq!(kb.candidate_facts(key, Some(&m2)).count(), 1);
        assert_eq!(kb.candidate_facts(key, None).count(), 6);
        // A constant with no index entry yields nothing.
        let m3 = Term::Sym(t.intern("m3"));
        assert_eq!(kb.candidate_facts(key, Some(&m3)).count(), 0);
    }

    #[test]
    fn rules_and_facts_are_separated() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Sym(t.intern("a"))])));
        kb.assert(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.num_rules(), 1);
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        assert_eq!(kb.rules_for(key).len(), 1);
        assert_eq!(kb.facts_for(key).len(), 1);
    }

    #[test]
    fn non_ground_fact_goes_to_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        // p(X). is a (rare) universally-quantified fact; stored as a rule.
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Var(0)])));
        assert_eq!(kb.num_rules(), 1);
        assert_eq!(kb.num_facts(), 0);
    }

    #[test]
    fn retract_rules_clears_only_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        kb.assert_fact(lit(&t, "p", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.retract_rules(key), 1);
        assert_eq!(kb.num_rules(), 0);
        assert_eq!(kb.num_facts(), 1);
        assert!(kb
            .rules_compiled(kb.pred_id(key).expect("entry exists"))
            .is_empty());
    }

    /// bond/3-shaped relation: the second-argument posting must narrow a
    /// first-arg-unbound goal to the matching facts only.
    #[test]
    fn second_arg_plan_narrows_when_first_unbound() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = {
            let mut k = None;
            for m in 0..10i64 {
                for a in 0..100i64 {
                    let f = lit(
                        &t,
                        "bond",
                        vec![Term::Int(m), Term::Int(1000 * m + a), Term::Int(a % 3)],
                    );
                    k = Some(f.key());
                    kb.assert_fact(f);
                }
            }
            k.expect("facts were asserted")
        };
        // Second argument bound, first unbound: 1 candidate out of 1000.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(3007))]);
        assert_eq!(total, 1000, "reference would scan every fact");
        assert_eq!(
            tried,
            vec![307],
            "3007 = fact 3*100+7, rank = its own index"
        );
        // Both bound: the sparser second-arg posting still wins over the
        // 100-fact first-arg walk.
        let (tried, total) = kb.plan_candidates(key, &[Some(Term::Int(3)), Some(Term::Int(3007))]);
        assert_eq!(total, 100, "reference = molecule 3's facts");
        assert_eq!(tried.len(), 1);
        // Unknown constant: nothing to try, reference count preserved.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(99_999))]);
        assert!(tried.is_empty());
        assert_eq!(total, 1000);
    }

    /// The plan's tried set must contain every fact that actually matches
    /// the bound pattern, and stay within the reference candidate set.
    #[test]
    fn plans_are_supersets_of_matches_and_subsets_of_reference() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..6i64 {
            for a in 0..8i64 {
                kb.assert_fact(lit(
                    &t,
                    "e",
                    vec![Term::Int(m), Term::Int(a), Term::Int((m + a) % 4)],
                ));
            }
        }
        let key = lit(&t, "e", vec![Term::Int(0); 3]).key();
        let facts = kb.facts_for(key);
        for bound in [
            vec![None, Some(Term::Int(5)), None],
            vec![None, None, Some(Term::Int(2))],
            vec![Some(Term::Int(2)), None, Some(Term::Int(1))],
            vec![Some(Term::Int(2)), Some(Term::Int(5)), Some(Term::Int(3))],
        ] {
            let (tried, total) = kb.plan_candidates(key, &bound);
            let matching: Vec<u32> = facts
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    bound
                        .iter()
                        .zip(f.args.iter())
                        .all(|(b, a)| b.as_ref().is_none_or(|c| c == a))
                })
                .map(|(i, _)| i as u32)
                .collect();
            for m in &matching {
                assert!(tried.contains(m), "plan missed matching fact {m}");
            }
            assert!(tried.len() as u64 <= total);
        }
    }

    #[test]
    fn retained_indexes_prune_postings() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 0..40i64 {
            kb.assert_fact(lit(&t, "r", vec![Term::Int(i % 2), Term::Int(i)]));
        }
        let key = lit(&t, "r", vec![Term::Int(0), Term::Int(0)]).key();
        kb.retain_indexes(key, &[]);
        // Second-arg probe no longer narrows; reference set = all facts.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(7))]);
        assert_eq!(tried.len() as u64, total);
        assert_eq!(total, 40);
        // Facts asserted after pruning stay consistent.
        kb.assert_fact(lit(&t, "r", vec![Term::Int(0), Term::Int(77)]));
        let (tried, total) = kb.plan_candidates(key, &[Some(Term::Int(0)), None]);
        assert_eq!(total, 21);
        assert_eq!(tried.len(), 21);
    }

    /// Late facts after pruning must not re-create postings for pruned
    /// positions or leak rows into `unindexed` there — and the plan/step
    /// accounting must stay exactly the "prune first, then load" shape.
    #[test]
    fn late_asserts_respect_pruned_positions() {
        let t = SymbolTable::new();
        let key = lit(&t, "r", vec![Term::Int(0); 3]).key();
        let facts: Vec<Literal> = (0..140i64)
            .map(|i| {
                lit(
                    &t,
                    "r",
                    vec![Term::Int(i % 2), Term::Int(i), Term::Int(i % 7)],
                )
            })
            .collect();

        // KB A: prune before any fact arrives; KB B: load, prune, optimize,
        // then append the second half late.
        let mut a = KnowledgeBase::new(t.clone());
        a.retain_indexes(key, &[2]);
        for f in &facts {
            a.assert_fact(f.clone());
        }
        let mut b = KnowledgeBase::new(t.clone());
        for f in &facts[..70] {
            b.assert_fact(f.clone());
        }
        b.retain_indexes(key, &[2]);
        b.optimize();
        for f in &facts[70..] {
            b.assert_fact(f.clone());
        }

        for bound in [
            vec![None, Some(Term::Int(135)), None],
            vec![None, None, Some(Term::Int(3))],
            vec![Some(Term::Int(1)), Some(Term::Int(99)), None],
            vec![Some(Term::Int(0)), None, Some(Term::Int(6))],
        ] {
            assert_eq!(
                a.plan_candidates(key, &bound),
                b.plan_candidates(key, &bound),
                "late asserts diverged from prune-first shape under {bound:?}"
            );
        }
        // The pruned position must not have been revived: a probe on
        // position 1 cannot narrow on either KB.
        let (tried, total) = b.plan_candidates(key, &[None, Some(Term::Int(3)), None]);
        assert_eq!(tried.len() as u64, total, "pruned posting was re-created");
    }

    #[test]
    fn compiled_rules_resolve_dispatch() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0)]),
                lit(&t, ">=", vec![Term::Var(0), Term::Int(0)]),
                lit(&t, "later", vec![Term::Var(0)]),
            ],
        ));
        let pid = kb
            .pred_id(lit(&t, "p", vec![Term::Int(0)]).key())
            .expect("rule head entry exists");
        let crule = &kb.rules_compiled(pid)[0];
        assert_eq!(crule.var_span, 1);
        assert!(matches!(crule.body[0].kind, LitKind::Pred(_)));
        assert!(matches!(crule.body[1].kind, LitKind::Builtin(_)));
        // `later` got a stable (empty) entry at compile time; facts asserted
        // afterwards land in the same id.
        let LitKind::Pred(later_id) = crule.body[2].kind else {
            panic!("body preds compile to Pred ids");
        };
        kb.assert_fact(lit(&t, "later", vec![Term::Int(1)]));
        assert_eq!(
            kb.pred_id(lit(&t, "later", vec![Term::Int(0)]).key()),
            Some(later_id)
        );
    }

    /// Regression for ROADMAP "Compound probes": a goal whose bound
    /// argument is a ground *compound* term must probe the posting list by
    /// the compound's arena id instead of silently scanning the relation.
    #[test]
    fn ground_compound_arguments_probe_instead_of_scanning() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let q = t.intern("q");
        for i in 0..100i64 {
            kb.assert_fact(lit(
                &t,
                "charge",
                vec![Term::app(q, vec![Term::Int(i % 10)]), Term::Int(i)],
            ));
        }
        let key = lit(&t, "charge", vec![Term::Int(0); 2]).key();
        let probe = Term::app(q, vec![Term::Int(3)]);

        // First argument bound to a ground compound: the candidate count
        // drops from the 100-fact scan to the 10 posting hits.
        let (tried, total) = kb.plan_candidates(key, &[Some(probe.clone()), None]);
        assert_eq!(total, 10, "compound probe must narrow the reference set");
        assert_eq!(tried.len(), 10);
        assert_eq!(kb.candidate_facts(key, Some(&probe)).count(), 10);
        // An uninterned compound yields nothing (no fact can equal it).
        let absent = Term::app(q, vec![Term::Int(77)]);
        assert_eq!(kb.candidate_facts(key, Some(&absent)).count(), 0);
        // A compound still containing a variable cannot probe: full scan.
        let open = Term::app(q, vec![Term::Var(0)]);
        let (tried, total) = kb.plan_candidates(key, &[Some(open), None]);
        assert_eq!((tried.len() as u64, total), (100, 100));

        // Second position: a compound-keyed posting narrows a first-arg
        // walk too (hash-join choice over a non-first position).
        let mut kb2 = KnowledgeBase::new(t.clone());
        for m in 0..5i64 {
            for i in 0..40i64 {
                kb2.assert_fact(lit(
                    &t,
                    "site",
                    vec![Term::Int(m), Term::app(q, vec![Term::Int(i)])],
                ));
            }
        }
        let key2 = lit(&t, "site", vec![Term::Int(0); 2]).key();
        let probe2 = Term::app(q, vec![Term::Int(7)]);
        let (tried, total) = kb2.plan_candidates(key2, &[None, Some(probe2)]);
        assert_eq!(total, 200, "reference scans when the first arg is free");
        assert_eq!(tried.len(), 5, "one hit per molecule, found by probe");
    }

    #[test]
    fn arena_dedupes_fact_arguments() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m = Term::Sym(t.intern("mol"));
        for i in 0..100i64 {
            kb.assert_fact(lit(&t, "atm", vec![m.clone(), Term::Int(i % 5)]));
        }
        // 1 molecule constant + 5 distinct ints.
        assert_eq!(kb.arena().len(), 6);
    }

    /// Rows rebuilt from the columns must reproduce the asserted literals
    /// exactly — including positions past [`MAX_INDEXED_ARGS`] (which have
    /// columns but no posting lists) and irregular (non-ground) facts.
    #[test]
    fn rebuilt_rows_match_asserted_literals() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let wide: Vec<Literal> = (0..10i64)
            .map(|i| {
                lit(
                    &t,
                    "wide",
                    vec![
                        Term::Int(i),
                        Term::Sym(t.intern(&format!("s{}", i % 3))),
                        Term::app(t.intern("f"), vec![Term::Int(i % 4)]),
                        Term::Int(i * 2),
                        Term::Int(i * 3), // past MAX_INDEXED_ARGS
                        Term::Sym(t.intern("tail")),
                    ],
                )
            })
            .collect();
        for f in &wide {
            kb.assert_fact(f.clone());
        }
        // One irregular fact (non-ground second argument).
        let odd = lit(&t, "odd", vec![Term::Int(1), Term::Var(3)]);
        kb.assert_fact(odd.clone());

        let key = wide[0].key();
        assert_eq!(kb.facts_for(key), wide);
        let pid = kb.pred_id(key).expect("entry exists");
        for (i, f) in wide.iter().enumerate() {
            assert_eq!(&kb.fact_literal(pid, i as u32), f);
        }
        assert_eq!(kb.facts_for(odd.key()), vec![odd]);
        // The oracle iterator serves the same rows.
        let seen: Vec<Literal> = kb
            .candidate_facts(key, None)
            .map(|c| c.into_owned())
            .collect();
        assert_eq!(seen, wide);
    }

    /// The column-native store must beat the retired row+column layout on
    /// bytes (the `fact_memory` benchmark gates the real datasets; this
    /// pins the accounting itself). Resident `row-oracle` rows are test-
    /// only weight, so compare against the baseline without them.
    #[test]
    fn column_store_is_smaller_than_row_baseline() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..50i64 {
            for a in 0..20i64 {
                kb.assert_fact(lit(
                    &t,
                    "bond",
                    vec![
                        Term::Int(m),
                        Term::Int(m * 100 + a),
                        Term::Int(m * 100 + a + 1),
                        Term::Int(a % 3),
                    ],
                ));
            }
        }
        let resident_row_bytes: usize = kb
            .predicates()
            .flat_map(|k| kb.facts_for(k))
            .map(|l| std::mem::size_of::<Literal>() + l.args.len() * std::mem::size_of::<Term>())
            .sum();
        let column_only = kb.fact_store_bytes()
            - if cfg!(feature = "row-oracle") {
                resident_row_bytes
            } else {
                0
            };
        let baseline = kb.row_baseline_bytes();
        assert!(
            baseline as f64 >= 1.8 * column_only as f64,
            "column store {column_only}B not ≥1.8x under baseline {baseline}B"
        );
    }
}
