//! Compiled, indexed clause store (the "database" role of YAP in the
//! paper's stack).
//!
//! Background knowledge in ILP applications is mostly *extensional* (ground
//! facts: atoms, bonds, edge properties...), plus a few intensional rules.
//! Per-worker memory is the scaling currency of the paper's design — every
//! rank holds the whole background KB, so fact-store bytes directly cap how
//! many ranks fit on a node. The store therefore keeps **one** resident
//! representation per `(predicate, arity)` relation, addressed by a dense
//! [`PredId`]:
//!
//! 1. **Columnar tuples** — every ground argument of every fact is interned
//!    into the per-KB [`TermArena`] and stored as `Vec<TermId>` columns,
//!    one column per argument position: `cols[p][f]` is fact `f`'s argument
//!    `p` as a 4-byte id ([`TermId::NONE`] for the rare non-ground
//!    argument). Columns are simultaneously the *plan-building* substrate
//!    (one-compare membership tests) and the *unification target*: the
//!    prover matches a goal literal directly against a fact's id tuple via
//!    [`crate::subst::Bindings::unify_term_id`], so no row `Literal` is
//!    ever needed on the hot path.
//! 2. **Per-position posting lists** — for each of the first
//!    [`MAX_INDEXED_ARGS`] argument positions (unless pruned via
//!    [`KnowledgeBase::retain_indexes`], e.g. from mode declarations), a
//!    hash index `TermId -> sorted fact indices`. At query time the prover
//!    asks for a [`FactPlan`]: the store picks the *most selective* bound
//!    position (hash-join style), so a `bond/4` goal bound on its second
//!    argument touches only that atom's bonds instead of scanning the
//!    molecule — or the whole relation (ROADMAP "index beyond first-arg").
//! 3. **Irregular rows** — the occasional fact with a non-ground argument
//!    cannot live in the arena; its original `Literal` is kept in a small
//!    index-sorted side list and unified row-at-a-time as before.
//!
//! The duplicate row store of earlier revisions (every fact kept a second
//! time as a `Literal`) is gone from release builds, roughly halving fact
//! memory. Under the **`row-oracle`** feature (enabled for every `cargo
//! test` run via the crate's self-dev-dependency) the rows stay resident so
//! the differential oracle ([`crate::prover::reference`]) unifies against
//! the *original* literals exactly as the seed implementation did; without
//! the feature, debug/oracle views ([`KnowledgeBase::candidate_facts`],
//! [`KnowledgeBase::facts_for`]) rebuild rows lazily from the columns.
//! Either way the resident rows are a *view*: a KB restored from a
//! snapshot never materializes them (see [`KnowledgeBase::resident_rows`]).
//!
//! Rules are stored both as plain [`Clause`]s (oracle view) and as
//! [`CompiledClause`]s whose body literals carry pre-resolved dispatch
//! ([`crate::clause::LitKind`]) and whose rename-apart variable span is
//! precomputed — per-goal dispatch in the optimized prover is array reads.
//!
//! Posting lists key *any ground* argument — atomic constants and ground
//! compound terms alike (the arena interns both), so a goal bound to e.g.
//! `at(7)` probes instead of scanning (ROADMAP "Compound probes").
//!
//! # Snapshots
//!
//! The whole compiled store — arena terms, columnar tuples, posting lists,
//! compiled rules, and the symbol dictionary — serializes as a
//! [`crate::snapshot::KbSnapshot`] via [`KnowledgeBase::to_snapshot`] /
//! [`KnowledgeBase::from_snapshot`]. A restore re-interns nothing, rebuilds
//! no index, and materializes no rows (only the reverse hash maps are
//! repopulated), which makes worker startup in the cluster substrate one
//! wire transfer (`Msg::KbSnapshot`) instead of a per-rank rebuild; see the
//! [`crate::snapshot`] module docs for the format and validation rules.
//!
//! # Step-accounting contract
//!
//! The inference-step count is the cluster substrate's virtual-time fuel,
//! pinned bit-identical to the seed semantics: a goal is charged one step
//! per candidate *the first-argument index would have enumerated* (plus one
//! per rule head tried). A narrower plan therefore reports, alongside the
//! facts actually worth trying, the rank each occupies in that reference
//! enumeration — the prover bulk-charges the skipped candidates, which are
//! exactly the ones that provably fail unification on the chosen bound
//! position (see [`FactPlan::Narrowed`]).

use crate::arena::{TermArena, TermId};
use crate::builtins::BuiltinTable;
use crate::clause::{Clause, CompiledClause, CompiledGoals, CompiledLiteral, LitKind, Literal};
use crate::clause::{PredId, PredKey};
use crate::fxhash::FxHashMap;
use crate::symbol::{SymbolId, SymbolTable};
use crate::term::Term;
use std::borrow::Cow;

/// How many leading argument positions get a posting-list index by default.
pub const MAX_INDEXED_ARGS: usize = 4;

/// Reference candidate counts at or below this size skip the probe for a
/// better position: probing costs two hash lookups per indexed position,
/// which only pays off against a walk of some length (molecule-bound ILP
/// goals sit in the tens; the scans worth narrowing sit in the thousands).
const NARROW_MIN: u64 = 64;

/// Per-predicate storage: columnar facts with posting-list indexes, plus
/// rules in plain and compiled form. (`pub(crate)` so the snapshot module
/// can capture and restore it field-for-field.)
#[derive(Debug, Clone)]
pub(crate) struct PredEntry {
    /// Row-oracle view: the original `Literal` of every fact, in assertion
    /// order. Maintained only while *complete* — a snapshot restore leaves
    /// it empty (and late asserts then stop appending, so indices never
    /// skew); everyone resolving rows goes through [`PredEntry::row`],
    /// which falls back to a columnar rebuild.
    #[cfg(feature = "row-oracle")]
    pub(crate) rows: Vec<Literal>,
    /// Number of facts (columns are per-position, so an arity-0 relation
    /// has no column to count).
    pub(crate) len: u32,
    /// Columnar view of **every** argument position: `cols[p][f]` is fact
    /// `f`'s argument `p` as an interned id ([`TermId::NONE`] for a
    /// non-ground argument, which then has its row in `irregular`).
    pub(crate) cols: Vec<Vec<TermId>>,
    /// `(fact index, original literal)` for facts with at least one
    /// non-ground argument, index-ascending. These unify row-at-a-time.
    pub(crate) irregular: Vec<(u32, Literal)>,
    /// Posting lists per indexed position (`min(arity, MAX_INDEXED_ARGS)`):
    /// ground-term id -> ascending fact indices. `None` = index pruned.
    pub(crate) postings: Vec<Option<FxHashMap<TermId, Vec<u32>>>>,
    /// Per indexed position: facts whose argument there is *not* ground
    /// (they match any probe, so every plan includes them).
    pub(crate) unindexed: Vec<Vec<u32>>,
    pub(crate) rules: Vec<Clause>,
    pub(crate) crules: Vec<CompiledClause>,
}

impl PredEntry {
    pub(crate) fn new(arity: usize) -> Self {
        let indexed = arity.min(MAX_INDEXED_ARGS);
        PredEntry {
            #[cfg(feature = "row-oracle")]
            rows: Vec::new(),
            len: 0,
            cols: vec![Vec::new(); arity],
            irregular: Vec::new(),
            postings: (0..indexed).map(|_| Some(FxHashMap::default())).collect(),
            unindexed: vec![Vec::new(); indexed],
            rules: Vec::new(),
            crules: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0 && self.rules.is_empty()
    }

    /// The irregular (non-ground) row at `idx`, if that fact has one.
    #[inline]
    fn irregular_row(&self, idx: u32) -> Option<&Literal> {
        if self.irregular.is_empty() {
            return None;
        }
        self.irregular
            .binary_search_by_key(&idx, |(f, _)| *f)
            .ok()
            .map(|k| &self.irregular[k].1)
    }

    /// Rebuilds fact `idx`'s row literal from the columns (irregular rows
    /// are served from their stored originals).
    fn rebuild_row(&self, pred: SymbolId, arena: &TermArena, idx: u32) -> Literal {
        if let Some(l) = self.irregular_row(idx) {
            return l.clone();
        }
        let args: Vec<Term> = self
            .cols
            .iter()
            .map(|col| {
                let tid = col[idx as usize];
                debug_assert!(!tid.is_none(), "regular row has only interned cells");
                arena.term(tid).clone()
            })
            .collect();
        Literal::new(pred, args)
    }

    /// The row literal of fact `idx`: borrowed from the resident row store
    /// when it is complete (`row-oracle` builds, assert-built KBs), from
    /// the irregular list when the fact is non-ground, rebuilt from the
    /// columns otherwise.
    fn row<'a>(&'a self, pred: SymbolId, arena: &'a TermArena, idx: u32) -> Cow<'a, Literal> {
        #[cfg(feature = "row-oracle")]
        if self.rows.len() == self.len as usize {
            return Cow::Borrowed(&self.rows[idx as usize]);
        }
        if let Some(l) = self.irregular_row(idx) {
            return Cow::Borrowed(l);
        }
        Cow::Owned(self.rebuild_row(pred, arena, idx))
    }

    /// Appends `fact` to the resident row store, but only while that store
    /// is complete (a snapshot restore starts it empty; appending at wrong
    /// offsets would corrupt the oracle view).
    #[cfg(feature = "row-oracle")]
    fn store_row(&mut self, fact: Literal) {
        if self.rows.len() == self.len as usize {
            self.rows.push(fact);
        }
    }

    #[cfg(not(feature = "row-oracle"))]
    fn store_row(&mut self, _fact: Literal) {}

    /// Resident row-store literals (0 unless `row-oracle` kept them).
    fn resident_rows(&self) -> usize {
        #[cfg(feature = "row-oracle")]
        {
            self.rows.len()
        }
        #[cfg(not(feature = "row-oracle"))]
        {
            0
        }
    }
}

/// A knowledge base: interned symbols and terms, indexed columnar facts,
/// and compiled rules.
#[derive(Clone)]
pub struct KnowledgeBase {
    pub(crate) syms: SymbolTable,
    pub(crate) builtins: BuiltinTable,
    pub(crate) arena: TermArena,
    pub(crate) pred_index: FxHashMap<PredKey, PredId>,
    pub(crate) keys: Vec<PredKey>,
    pub(crate) entries: Vec<PredEntry>,
    pub(crate) num_facts: usize,
    pub(crate) num_rules: usize,
}

impl KnowledgeBase {
    /// Creates an empty KB sharing `syms`.
    pub fn new(syms: SymbolTable) -> Self {
        let builtins = BuiltinTable::new(&syms);
        KnowledgeBase {
            syms,
            builtins,
            arena: TermArena::new(),
            pred_index: FxHashMap::default(),
            keys: Vec::new(),
            entries: Vec::new(),
            num_facts: 0,
            num_rules: 0,
        }
    }

    /// The symbol table this KB interns against.
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// The builtin-predicate table.
    pub fn builtins(&self) -> &BuiltinTable {
        &self.builtins
    }

    /// The ground-term arena backing the columnar fact store.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// The dense id of `key`, if the KB has an entry for it.
    #[inline]
    pub fn pred_id(&self, key: PredKey) -> Option<PredId> {
        self.pred_index.get(&key).copied()
    }

    /// The dense id of `key`, allocating an (empty) entry when absent.
    pub fn pred_id_or_insert(&mut self, key: PredKey) -> PredId {
        if let Some(&id) = self.pred_index.get(&key) {
            return id;
        }
        let id = PredId(self.entries.len() as u32);
        self.pred_index.insert(key, id);
        self.keys.push(key);
        self.entries.push(PredEntry::new(key.arity as usize));
        id
    }

    /// Adds a fact. Every ground argument is interned into the arena and
    /// stored columnar; a fact with a non-ground argument additionally
    /// keeps its original literal in the entry's irregular side list.
    ///
    /// Late arrivals compose with every earlier store mutation: positions
    /// pruned via [`KnowledgeBase::retain_indexes`] stay pruned (no posting
    /// is re-created, no `unindexed` entry drifts in), and a KB restored
    /// from a snapshot indexes the new fact exactly as a fresh build would.
    pub fn assert_fact(&mut self, fact: Literal) {
        let tids: Vec<TermId> = fact
            .args
            .iter()
            .map(|a| {
                if a.is_ground() {
                    self.arena.intern(a)
                } else {
                    TermId::NONE
                }
            })
            .collect();
        let pid = self.pred_id_or_insert(fact.key());
        let entry = &mut self.entries[pid.index()];
        let idx = entry.len;
        let mut regular = true;
        for (p, &tid) in tids.iter().enumerate() {
            entry.cols[p].push(tid);
            regular &= !tid.is_none();
            if p >= entry.postings.len() {
                continue;
            }
            match &mut entry.postings[p] {
                // Every ground argument — atomic *or compound* — is interned
                // and posted under its arena id, so goals bound to a ground
                // compound probe instead of scanning (ROADMAP "Compound
                // probes").
                Some(map) if !tid.is_none() => map.entry(tid).or_default().push(idx),
                Some(_) => entry.unindexed[p].push(idx),
                None => {} // position pruned; late facts must not revive it
            }
        }
        if !regular {
            entry.irregular.push((idx, fact.clone()));
        }
        entry.store_row(fact);
        entry.len += 1;
        self.num_facts += 1;
    }

    /// Adds a clause; facts route to the fact store, rules to the rule list.
    pub fn assert(&mut self, clause: Clause) {
        if clause.is_fact() && clause.head.is_ground() {
            self.assert_fact(clause.head);
        } else {
            self.assert_rule(clause);
        }
    }

    /// Adds a rule (non-empty body or non-ground head), compiling its body
    /// dispatch eagerly. Predicates first seen in the body get (empty)
    /// entries, so their [`PredId`]s are stable if facts or rules for them
    /// arrive later.
    pub fn assert_rule(&mut self, rule: Clause) {
        let var_span = rule.var_span();
        let body: Box<[CompiledLiteral]> = rule
            .body
            .iter()
            .map(|l| {
                let kind = self.litkind_or_insert(l);
                CompiledLiteral {
                    lit: l.clone(),
                    kind,
                }
            })
            .collect();
        let compiled = CompiledClause {
            head: rule.head.clone(),
            body,
            var_span,
        };
        let pid = self.pred_id_or_insert(rule.head.key());
        let entry = &mut self.entries[pid.index()];
        entry.rules.push(rule);
        entry.crules.push(compiled);
        self.num_rules += 1;
    }

    fn litkind_or_insert(&mut self, l: &Literal) -> LitKind {
        if let Some(b) = self.builtins.get(l.pred) {
            return LitKind::Builtin(b);
        }
        LitKind::Pred(self.pred_id_or_insert(l.key()))
    }

    /// Resolves a goal literal's dispatch without mutating the KB (the
    /// query-compilation path: the prover holds `&KnowledgeBase`).
    pub fn litkind(&self, l: &Literal) -> LitKind {
        if let Some(b) = self.builtins.get(l.pred) {
            return LitKind::Builtin(b);
        }
        match self.pred_id(l.key()) {
            Some(id) => LitKind::Pred(id),
            None => LitKind::Unknown,
        }
    }

    /// Compiles one goal literal (see [`KnowledgeBase::compile_goals`]).
    pub fn compile_literal(&self, l: &Literal) -> CompiledLiteral {
        CompiledLiteral {
            lit: l.clone(),
            kind: self.litkind(l),
        }
    }

    /// Compiles a query literal by *moving* it into its compiled form — no
    /// clone, no allocation. Pair with
    /// [`crate::prover::Prover::solutions_compiled_reusing`] (or
    /// [`crate::clause::CompiledGoalsRef::single`]) for the allocation-free
    /// saturation query path.
    pub fn compile_query(&self, l: Literal) -> CompiledLiteral {
        CompiledLiteral {
            kind: self.litkind(&l),
            lit: l,
        }
    }

    /// Compiles a goal conjunction for repeated proving. Predicate and
    /// builtin dispatch is resolved once here; per-goal work in the prover
    /// becomes array reads. Compile once per rule evaluation, not per
    /// example.
    pub fn compile_goals(&self, goals: &[Literal]) -> CompiledGoals {
        CompiledGoals {
            lits: goals.iter().map(|l| self.compile_literal(l)).collect(),
            var_span: goals
                .iter()
                .filter_map(Literal::max_var)
                .max()
                .map_or(0, |v| v + 1),
        }
    }

    /// Compiled rules whose head predicate is `id` (assertion order).
    #[inline]
    pub fn rules_compiled(&self, id: PredId) -> &[CompiledClause] {
        &self.entries[id.index()].crules
    }

    /// The column-native view of predicate `id`'s facts — the unification
    /// target once a plan has selected candidates. A candidate row unifies
    /// cell-by-cell against the goal via
    /// [`crate::subst::Bindings::unify_term_id`]; the rare irregular (non-
    /// ground) row falls back to row-at-a-time literal unification.
    #[inline]
    pub fn fact_cols(&self, id: PredId) -> FactCols<'_> {
        FactCols {
            pred: self.keys[id.index()].pred,
            entry: &self.entries[id.index()],
            arena: &self.arena,
        }
    }

    /// Builds the retrieval plan for a goal on predicate `id`.
    ///
    /// `resolve(p)` must return the goal's argument `p` dereferenced to a
    /// ground term — atomic constant or ground compound (`None` when unbound
    /// or containing variables); it is invoked
    /// lazily, only for indexed positions that could pay off. The returned
    /// plan enumerates a *superset* of the facts unifiable with the goal,
    /// and a *subset* of the reference (first-argument) candidate set, in
    /// reference order — see the module docs for the step contract.
    pub fn fact_plan(
        &self,
        id: PredId,
        mut resolve: impl FnMut(usize) -> Option<Term>,
    ) -> FactPlan<'_> {
        let entry = &self.entries[id.index()];
        let n = entry.len as usize;
        if n == 0 {
            return FactPlan::Empty;
        }
        // The reference candidate sequence R: first-arg posting hits then
        // first-arg-unindexable facts when the first argument is bound to a
        // ground term, every fact otherwise. (Mirrors `candidate_facts`
        // exactly — R *is* the step-accounting contract.)
        let first_segments = if entry.postings.is_empty() {
            None
        } else {
            resolve(0).map(|c| {
                // Invariant: position 0 is never pruned — `retain_indexes`
                // unconditionally keeps it and snapshot validation rejects
                // a store without it (it defines the reference candidate
                // set, i.e. the step-accounting contract).
                let posting = entry.postings[0]
                    .as_ref()
                    .expect("invariant: position-0 posting list is never pruned");
                let hits = self
                    .arena
                    .lookup(&c)
                    .and_then(|tid| posting.get(&tid))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                (hits, entry.unindexed[0].as_slice())
            })
        };
        let r_len = first_segments.map_or(n as u64, |(a, b)| (a.len() + b.len()) as u64);

        // Hash-join choice: the most selective bound position, by candidate
        // count (posting hits + position-unindexable facts). `tid` is the
        // probe term's arena id ([`TermId::NONE`] when the term was never
        // interned, which no column cell of an all-ground position can
        // equal).
        struct Alt<'a> {
            pos: usize,
            tid: TermId,
            hits: &'a [u32],
            un: &'a [u32],
            size: u64,
        }
        let mut best: Option<Alt<'_>> = None;
        if r_len > NARROW_MIN {
            for p in 1..entry.postings.len() {
                let Some(posting) = entry.postings[p].as_ref() else {
                    continue;
                };
                let Some(c) = resolve(p) else { continue };
                let tid = self.arena.lookup(&c).unwrap_or(TermId::NONE);
                let hits = posting.get(&tid).map(|v| v.as_slice()).unwrap_or(&[]);
                let un = entry.unindexed[p].as_slice();
                let size = (hits.len() + un.len()) as u64;
                if best.as_ref().is_none_or(|b| size < b.size) {
                    best = Some(Alt {
                        pos: p,
                        tid,
                        hits,
                        un,
                        size,
                    });
                }
            }
        }

        match (best, first_segments) {
            // A strictly narrower position wins: enumerate its candidates
            // restricted to R, tagged with their rank in R.
            (Some(alt), segs) if alt.size.saturating_mul(2) < r_len => {
                let mut tried = Vec::with_capacity((alt.size as usize).min(r_len as usize));
                let total = match segs {
                    // R is the whole relation: the posting list *is* the
                    // tried set, and a fact's rank is its own index.
                    None => {
                        for &f in merge_sorted(alt.hits, alt.un).iter() {
                            tried.push((f, f as u64));
                        }
                        n as u64
                    }
                    // R is the first-arg candidate walk. When every fact's
                    // argument at `alt.pos` is ground (the common case),
                    // membership is one columnar u32 compare per reference
                    // candidate.
                    Some((s1, s2)) if alt.un.is_empty() => {
                        let col = &entry.cols[alt.pos];
                        for (rank, &f) in s1.iter().enumerate() {
                            if col[f as usize] == alt.tid {
                                tried.push((f, rank as u64));
                            }
                        }
                        for (rank, &f) in s2.iter().enumerate() {
                            if col[f as usize] == alt.tid {
                                tried.push((f, (s1.len() + rank) as u64));
                            }
                        }
                        r_len
                    }
                    // Mixed ground/non-ground arguments: intersect the
                    // sorted posting candidates with the R segments.
                    Some((s1, s2)) => {
                        let merged = merge_sorted(alt.hits, alt.un);
                        intersect_ranks(s1, &merged, 0, &mut tried);
                        intersect_ranks(s2, &merged, s1.len() as u64, &mut tried);
                        r_len
                    }
                };
                FactPlan::Narrowed { tried, total }
            }
            (_, Some((indexed, unindexed))) => FactPlan::Seq { indexed, unindexed },
            (_, None) => FactPlan::All { n: n as u32 },
        }
    }

    /// Test/debug view of [`KnowledgeBase::fact_plan`]: the fact indices the
    /// plan would try (in reference order) and the reference candidate
    /// count, for a goal with the given per-position ground terms.
    pub fn plan_candidates(&self, key: PredKey, bound: &[Option<Term>]) -> (Vec<u32>, u64) {
        let Some(id) = self.pred_id(key) else {
            return (Vec::new(), 0);
        };
        // Mirror the prover's resolve contract: only ground terms probe.
        let plan = self.fact_plan(id, |p| {
            bound
                .get(p)
                .cloned()
                .flatten()
                .filter(|t: &Term| t.is_ground())
        });
        match plan {
            FactPlan::Empty => (Vec::new(), 0),
            FactPlan::All { n } => ((0..n).collect(), n as u64),
            FactPlan::Seq { indexed, unindexed } => {
                let mut v = indexed.to_vec();
                v.extend_from_slice(unindexed);
                let total = v.len() as u64;
                (v, total)
            }
            FactPlan::Narrowed { tried, total } => {
                (tried.into_iter().map(|(f, _)| f).collect(), total)
            }
        }
    }

    /// Prunes the posting lists of `key` down to `keep` argument positions
    /// (position 0 is always retained: it defines the reference candidate
    /// set). Callers with a language bias — mode declarations say which
    /// positions ever arrive bound — use this to drop indexes that can
    /// never be probed. Facts asserted *after* pruning respect it: pruned
    /// positions get neither postings nor `unindexed` entries.
    pub fn retain_indexes(&mut self, key: PredKey, keep: &[usize]) {
        let pid = self.pred_id_or_insert(key);
        let entry = &mut self.entries[pid.index()];
        for p in 1..entry.postings.len() {
            if !keep.contains(&p) {
                entry.postings[p] = None;
                entry.unindexed[p] = Vec::new();
            }
        }
    }

    /// Releases load-time over-allocation (arena, columns, posting lists).
    /// Call once after bulk construction.
    pub fn optimize(&mut self) {
        self.arena.shrink_to_fit();
        for entry in &mut self.entries {
            #[cfg(feature = "row-oracle")]
            entry.rows.shrink_to_fit();
            entry.irregular.shrink_to_fit();
            for col in &mut entry.cols {
                col.shrink_to_fit();
            }
            for posting in entry.postings.iter_mut().flatten() {
                for v in posting.values_mut() {
                    v.shrink_to_fit();
                }
            }
        }
    }

    /// Facts possibly matching `goal` under first-argument indexing only —
    /// the seed enumeration order, shared by the differential oracle
    /// ([`crate::prover::reference`]) and the step-accounting contract. The
    /// optimized prover uses [`KnowledgeBase::fact_plan`] instead.
    ///
    /// Yields row literals: borrowed from the resident row store when the
    /// `row-oracle` feature keeps it (so the oracle unifies against the
    /// original literals, exactly as the seed did), rebuilt lazily from the
    /// columns otherwise.
    ///
    /// `first_arg` must already be dereferenced by the caller's bindings.
    /// Any *ground* first argument probes the posting list — ground
    /// compound terms included, since the arena interns them (ROADMAP
    /// "Compound probes"); only a variable or a compound still containing
    /// variables falls back to the scan.
    pub fn candidate_facts(&self, key: PredKey, first_arg: Option<&Term>) -> FactIter<'_> {
        let Some(&pid) = self.pred_index.get(&key) else {
            return FactIter::empty();
        };
        let entry = &self.entries[pid.index()];
        let rows = FactCols {
            pred: key.pred,
            entry,
            arena: &self.arena,
        };
        match first_arg {
            Some(t) if t.is_ground() && !entry.postings.is_empty() => {
                // Invariant: position 0 is never pruned (see `fact_plan`).
                let posting = entry.postings[0]
                    .as_ref()
                    .expect("invariant: position-0 posting list is never pruned");
                let indexed = self
                    .arena
                    .lookup(t)
                    .and_then(|tid| posting.get(&tid))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                FactIter {
                    rows: Some(rows),
                    order: Order::Indexed {
                        indexed,
                        unindexed: &entry.unindexed[0],
                    },
                    pos: 0,
                }
            }
            _ => FactIter {
                rows: Some(rows),
                order: Order::All { n: entry.len },
                pos: 0,
            },
        }
    }

    /// Rules whose head predicate matches `key`.
    pub fn rules_for(&self, key: PredKey) -> &[Clause] {
        self.pred_id(key)
            .map(|id| self.entries[id.index()].rules.as_slice())
            .unwrap_or(&[])
    }

    /// All facts of a predicate, as row literals in assertion order — the
    /// unfiltered debug/oracle view. Rows are rebuilt from the columns
    /// (irregular facts from their stored originals); this allocates and is
    /// not for hot paths.
    pub fn facts_for(&self, key: PredKey) -> Vec<Literal> {
        let Some(id) = self.pred_id(key) else {
            return Vec::new();
        };
        let entry = &self.entries[id.index()];
        (0..entry.len)
            .map(|f| entry.row(key.pred, &self.arena, f).into_owned())
            .collect()
    }

    /// The row literal of one fact (`Display`/debug path).
    pub fn fact_literal(&self, id: PredId, idx: u32) -> Literal {
        let entry = &self.entries[id.index()];
        entry
            .row(self.keys[id.index()].pred, &self.arena, idx)
            .into_owned()
    }

    /// Total number of stored facts.
    pub fn num_facts(&self) -> usize {
        self.num_facts
    }

    /// Total number of stored rules.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }

    /// How many row `Literal`s are resident in memory: non-zero only under
    /// the `row-oracle` feature, and only for assert-built KBs — a KB
    /// restored from a snapshot materializes no rows in any build.
    pub fn resident_rows(&self) -> usize {
        self.entries.iter().map(PredEntry::resident_rows).sum()
    }

    /// Approximate heap bytes of the *resident* fact store: columns,
    /// irregular rows, (under `row-oracle`) the row store, and the arena
    /// terms that exist *only* to back column cells past the indexable
    /// prefix — storage the retired row+column layout never paid, since its
    /// arena interned just the first [`MAX_INDEXED_ARGS`] positions.
    /// Excludes the rest of the arena and the posting lists (shared and
    /// identical between the two layouts, so they cancel out of the
    /// `fact_memory` comparison).
    pub fn fact_store_bytes(&self) -> usize {
        let mut bytes = self.past_prefix_arena_bytes();
        for entry in &self.entries {
            for col in &entry.cols {
                bytes +=
                    std::mem::size_of::<Vec<TermId>>() + col.len() * std::mem::size_of::<TermId>();
            }
            for (_, lit) in &entry.irregular {
                bytes += std::mem::size_of::<(u32, Literal)>() + literal_heap_bytes(lit);
            }
            #[cfg(feature = "row-oracle")]
            for lit in &entry.rows {
                bytes += std::mem::size_of::<Literal>() + literal_heap_bytes(lit);
            }
        }
        bytes
    }

    /// Bytes of arena terms referenced *exclusively* by column cells past
    /// the indexable prefix (positions ≥ [`MAX_INDEXED_ARGS`]). The retired
    /// layout never interned those positions, so this is column-native-only
    /// arena growth and is charged to [`KnowledgeBase::fact_store_bytes`]
    /// to keep the memory comparison honest on wide relations.
    fn past_prefix_arena_bytes(&self) -> usize {
        let n = self.arena.len();
        if n == 0 {
            return 0;
        }
        let mut in_prefix = vec![false; n];
        let mut past_prefix = vec![false; n];
        for entry in &self.entries {
            for (p, col) in entry.cols.iter().enumerate() {
                let seen = if p < MAX_INDEXED_ARGS {
                    &mut in_prefix
                } else {
                    &mut past_prefix
                };
                for tid in col {
                    if !tid.is_none() {
                        seen[tid.index()] = true;
                    }
                }
            }
        }
        (0..n)
            .filter(|&i| past_prefix[i] && !in_prefix[i])
            .map(|i| {
                std::mem::size_of::<Term>() + term_heap_bytes(self.arena.term(TermId(i as u32)))
            })
            .sum()
    }

    /// Approximate heap bytes the retired duplicate layout would hold for
    /// this KB's facts: one row `Literal` per fact *plus* the columns of
    /// the indexable prefix (`min(arity, MAX_INDEXED_ARGS)` positions), as
    /// the store kept before column-native unification. The `fact_memory`
    /// benchmark gates `row_baseline_bytes / fact_store_bytes`.
    pub fn row_baseline_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for (key, entry) in self.keys.iter().zip(self.entries.iter()) {
            let indexed = (key.arity as usize).min(MAX_INDEXED_ARGS);
            bytes += indexed
                * (std::mem::size_of::<Vec<TermId>>()
                    + entry.len as usize * std::mem::size_of::<TermId>());
            for f in 0..entry.len {
                // Row cost without materializing the row: header + one
                // `Term` per argument + each argument's own heap.
                bytes += std::mem::size_of::<Literal>();
                match entry.irregular_row(f) {
                    Some(lit) => bytes += literal_heap_bytes(lit),
                    None => {
                        for col in &entry.cols {
                            bytes += std::mem::size_of::<Term>()
                                + term_heap_bytes(self.arena.term(col[f as usize]));
                        }
                    }
                }
            }
        }
        bytes
    }

    /// Every `(predicate, arity)` with at least one fact or rule. (Entries
    /// allocated only as compiled body references are skipped.)
    pub fn predicates(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.keys
            .iter()
            .zip(self.entries.iter())
            .filter(|(_, e)| !e.is_empty())
            .map(|(k, _)| *k)
    }

    /// Removes every rule of `key`, returning how many were removed.
    /// (Used by tests and by theory resets between cross-validation folds.)
    pub fn retract_rules(&mut self, key: PredKey) -> usize {
        let Some(id) = self.pred_id(key) else {
            return 0;
        };
        let entry = &mut self.entries[id.index()];
        let n = entry.rules.len();
        entry.rules.clear();
        entry.crules.clear();
        self.num_rules -= n;
        n
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KnowledgeBase({} preds, {} facts, {} rules, {} terms)",
            self.pred_index.len(),
            self.num_facts,
            self.num_rules,
            self.arena.len(),
        )
    }
}

/// Heap bytes hanging off one term (the boxed argument slices of compound
/// terms; atomic terms are inline).
fn term_heap_bytes(t: &Term) -> usize {
    match t {
        Term::App(_, args) => {
            args.len() * std::mem::size_of::<Term>()
                + args.iter().map(term_heap_bytes).sum::<usize>()
        }
        _ => 0,
    }
}

/// Heap bytes hanging off one literal (its boxed argument slice plus each
/// argument's own heap).
fn literal_heap_bytes(l: &Literal) -> usize {
    l.args.len() * std::mem::size_of::<Term>() + l.args.iter().map(term_heap_bytes).sum::<usize>()
}

/// Merges two sorted, disjoint index slices into one ascending vector.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Pushes `(fact, rank_base + rank-in-seg)` for every member of `cands`
/// found in the ascending slice `seg`. Binary search with a moving floor:
/// O(|cands| · log |seg|), and output ranks ascend.
fn intersect_ranks(seg: &[u32], cands: &[u32], rank_base: u64, out: &mut Vec<(u32, u64)>) {
    let mut lo = 0usize;
    for &c in cands {
        if lo >= seg.len() {
            break;
        }
        match seg[lo..].binary_search(&c) {
            Ok(k) => {
                out.push((c, rank_base + (lo + k) as u64));
                lo += k + 1;
            }
            Err(k) => lo += k,
        }
    }
}

/// A fact-retrieval plan produced by [`KnowledgeBase::fact_plan`].
///
/// All variants enumerate candidates in *reference order* (first-argument
/// posting hits, then first-arg-unindexable facts; or plain fact order), so
/// solution discovery order — and therefore early-exit behavior — matches
/// the oracle exactly.
#[derive(Debug)]
pub enum FactPlan<'a> {
    /// No facts for this predicate.
    Empty,
    /// Scan every fact (first argument not ground, and no better position
    /// available).
    All {
        /// Number of facts.
        n: u32,
    },
    /// The reference first-argument enumeration: posting hits then
    /// unindexable facts, each to be tried (and charged) individually.
    Seq {
        /// Posting hits for the first argument's ground term.
        indexed: &'a [u32],
        /// Facts whose first argument is not ground.
        unindexed: &'a [u32],
    },
    /// A narrower position was chosen: try only `tried` (fact index plus
    /// its rank in the reference enumeration, ranks ascending); every
    /// reference candidate in between fails unification on the chosen bound
    /// position and is bulk-charged by the prover.
    Narrowed {
        /// `(fact index, rank in the reference enumeration)`, rank-ascending.
        tried: Vec<(u32, u64)>,
        /// Reference candidate count (facts the seed semantics would try).
        total: u64,
    },
}

/// Column-native view of one predicate's facts — the unification target
/// handed to the prover once a [`FactPlan`] selected candidate rows.
pub struct FactCols<'a> {
    pred: SymbolId,
    entry: &'a PredEntry,
    arena: &'a TermArena,
}

impl<'a> FactCols<'a> {
    /// The arena the column cells point into.
    #[inline]
    pub fn arena(&self) -> &'a TermArena {
        self.arena
    }

    /// Number of argument positions (one column each).
    #[inline]
    pub fn arity(&self) -> usize {
        self.entry.cols.len()
    }

    /// Fact `row`'s argument `pos` as an interned id.
    #[inline]
    pub fn cell(&self, pos: usize, row: u32) -> TermId {
        self.entry.cols[pos][row as usize]
    }

    /// The original literal of fact `row` when it has a non-ground
    /// argument (such rows unify literal-at-a-time); `None` for the common
    /// all-ground row. O(1) for the all-regular relation.
    #[inline]
    pub fn irregular_row(&self, row: u32) -> Option<&'a Literal> {
        self.entry.irregular_row(row)
    }

    /// Rebuilds fact `row`'s literal (debug/Display, not the hot path).
    pub fn row_literal(&self, row: u32) -> Literal {
        self.row(row).into_owned()
    }

    /// Fact `row`'s literal as [`PredEntry::row`] serves it: borrowed from
    /// the resident `row-oracle` store or the irregular list when
    /// possible, rebuilt otherwise.
    fn row(&self, row: u32) -> Cow<'a, Literal> {
        self.entry.row(self.pred, self.arena, row)
    }
}

/// Enumeration order of a [`FactIter`].
enum Order<'a> {
    /// All facts, `0..n`.
    All { n: u32 },
    /// Index hits followed by facts the index could not cover.
    Indexed {
        indexed: &'a [u32],
        unindexed: &'a [u32],
    },
}

/// Iterator over candidate facts returned by
/// [`KnowledgeBase::candidate_facts`]. Yields row literals — borrowed from
/// the resident `row-oracle` store when present, rebuilt from the columns
/// otherwise (see the module docs).
pub struct FactIter<'a> {
    rows: Option<FactCols<'a>>,
    order: Order<'a>,
    pos: usize,
}

impl FactIter<'_> {
    fn empty() -> Self {
        FactIter {
            rows: None,
            order: Order::All { n: 0 },
            pos: 0,
        }
    }
}

impl<'a> Iterator for FactIter<'a> {
    type Item = Cow<'a, Literal>;

    fn next(&mut self) -> Option<Cow<'a, Literal>> {
        let rows = self.rows.as_ref()?;
        let idx = match &self.order {
            Order::All { n } => {
                if self.pos >= *n as usize {
                    return None;
                }
                self.pos as u32
            }
            Order::Indexed { indexed, unindexed } => {
                if self.pos < indexed.len() {
                    indexed[self.pos]
                } else {
                    *unindexed.get(self.pos - indexed.len())?
                }
            }
        };
        self.pos += 1;
        Some(rows.row(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    #[test]
    fn indexed_lookup_narrows_candidates() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m1 = Term::Sym(t.intern("m1"));
        let m2 = Term::Sym(t.intern("m2"));
        for i in 0..5 {
            kb.assert_fact(lit(&t, "atm", vec![m1.clone(), Term::Int(i)]));
        }
        kb.assert_fact(lit(&t, "atm", vec![m2.clone(), Term::Int(9)]));

        let key = lit(&t, "atm", vec![m1.clone(), Term::Int(0)]).key();
        assert_eq!(kb.candidate_facts(key, Some(&m1)).count(), 5);
        assert_eq!(kb.candidate_facts(key, Some(&m2)).count(), 1);
        assert_eq!(kb.candidate_facts(key, None).count(), 6);
        // A constant with no index entry yields nothing.
        let m3 = Term::Sym(t.intern("m3"));
        assert_eq!(kb.candidate_facts(key, Some(&m3)).count(), 0);
    }

    #[test]
    fn rules_and_facts_are_separated() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Sym(t.intern("a"))])));
        kb.assert(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.num_rules(), 1);
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        assert_eq!(kb.rules_for(key).len(), 1);
        assert_eq!(kb.facts_for(key).len(), 1);
    }

    #[test]
    fn non_ground_fact_goes_to_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        // p(X). is a (rare) universally-quantified fact; stored as a rule.
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Var(0)])));
        assert_eq!(kb.num_rules(), 1);
        assert_eq!(kb.num_facts(), 0);
    }

    #[test]
    fn retract_rules_clears_only_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        kb.assert_fact(lit(&t, "p", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.retract_rules(key), 1);
        assert_eq!(kb.num_rules(), 0);
        assert_eq!(kb.num_facts(), 1);
        assert!(kb
            .rules_compiled(kb.pred_id(key).expect("entry exists"))
            .is_empty());
    }

    /// bond/3-shaped relation: the second-argument posting must narrow a
    /// first-arg-unbound goal to the matching facts only.
    #[test]
    fn second_arg_plan_narrows_when_first_unbound() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = {
            let mut k = None;
            for m in 0..10i64 {
                for a in 0..100i64 {
                    let f = lit(
                        &t,
                        "bond",
                        vec![Term::Int(m), Term::Int(1000 * m + a), Term::Int(a % 3)],
                    );
                    k = Some(f.key());
                    kb.assert_fact(f);
                }
            }
            k.expect("facts were asserted")
        };
        // Second argument bound, first unbound: 1 candidate out of 1000.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(3007))]);
        assert_eq!(total, 1000, "reference would scan every fact");
        assert_eq!(
            tried,
            vec![307],
            "3007 = fact 3*100+7, rank = its own index"
        );
        // Both bound: the sparser second-arg posting still wins over the
        // 100-fact first-arg walk.
        let (tried, total) = kb.plan_candidates(key, &[Some(Term::Int(3)), Some(Term::Int(3007))]);
        assert_eq!(total, 100, "reference = molecule 3's facts");
        assert_eq!(tried.len(), 1);
        // Unknown constant: nothing to try, reference count preserved.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(99_999))]);
        assert!(tried.is_empty());
        assert_eq!(total, 1000);
    }

    /// The plan's tried set must contain every fact that actually matches
    /// the bound pattern, and stay within the reference candidate set.
    #[test]
    fn plans_are_supersets_of_matches_and_subsets_of_reference() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..6i64 {
            for a in 0..8i64 {
                kb.assert_fact(lit(
                    &t,
                    "e",
                    vec![Term::Int(m), Term::Int(a), Term::Int((m + a) % 4)],
                ));
            }
        }
        let key = lit(&t, "e", vec![Term::Int(0); 3]).key();
        let facts = kb.facts_for(key);
        for bound in [
            vec![None, Some(Term::Int(5)), None],
            vec![None, None, Some(Term::Int(2))],
            vec![Some(Term::Int(2)), None, Some(Term::Int(1))],
            vec![Some(Term::Int(2)), Some(Term::Int(5)), Some(Term::Int(3))],
        ] {
            let (tried, total) = kb.plan_candidates(key, &bound);
            let matching: Vec<u32> = facts
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    bound
                        .iter()
                        .zip(f.args.iter())
                        .all(|(b, a)| b.as_ref().is_none_or(|c| c == a))
                })
                .map(|(i, _)| i as u32)
                .collect();
            for m in &matching {
                assert!(tried.contains(m), "plan missed matching fact {m}");
            }
            assert!(tried.len() as u64 <= total);
        }
    }

    #[test]
    fn retained_indexes_prune_postings() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 0..40i64 {
            kb.assert_fact(lit(&t, "r", vec![Term::Int(i % 2), Term::Int(i)]));
        }
        let key = lit(&t, "r", vec![Term::Int(0), Term::Int(0)]).key();
        kb.retain_indexes(key, &[]);
        // Second-arg probe no longer narrows; reference set = all facts.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(7))]);
        assert_eq!(tried.len() as u64, total);
        assert_eq!(total, 40);
        // Facts asserted after pruning stay consistent.
        kb.assert_fact(lit(&t, "r", vec![Term::Int(0), Term::Int(77)]));
        let (tried, total) = kb.plan_candidates(key, &[Some(Term::Int(0)), None]);
        assert_eq!(total, 21);
        assert_eq!(tried.len(), 21);
    }

    /// Late facts after pruning must not re-create postings for pruned
    /// positions or leak rows into `unindexed` there — and the plan/step
    /// accounting must stay exactly the "prune first, then load" shape.
    #[test]
    fn late_asserts_respect_pruned_positions() {
        let t = SymbolTable::new();
        let key = lit(&t, "r", vec![Term::Int(0); 3]).key();
        let facts: Vec<Literal> = (0..140i64)
            .map(|i| {
                lit(
                    &t,
                    "r",
                    vec![Term::Int(i % 2), Term::Int(i), Term::Int(i % 7)],
                )
            })
            .collect();

        // KB A: prune before any fact arrives; KB B: load, prune, optimize,
        // then append the second half late.
        let mut a = KnowledgeBase::new(t.clone());
        a.retain_indexes(key, &[2]);
        for f in &facts {
            a.assert_fact(f.clone());
        }
        let mut b = KnowledgeBase::new(t.clone());
        for f in &facts[..70] {
            b.assert_fact(f.clone());
        }
        b.retain_indexes(key, &[2]);
        b.optimize();
        for f in &facts[70..] {
            b.assert_fact(f.clone());
        }

        for bound in [
            vec![None, Some(Term::Int(135)), None],
            vec![None, None, Some(Term::Int(3))],
            vec![Some(Term::Int(1)), Some(Term::Int(99)), None],
            vec![Some(Term::Int(0)), None, Some(Term::Int(6))],
        ] {
            assert_eq!(
                a.plan_candidates(key, &bound),
                b.plan_candidates(key, &bound),
                "late asserts diverged from prune-first shape under {bound:?}"
            );
        }
        // The pruned position must not have been revived: a probe on
        // position 1 cannot narrow on either KB.
        let (tried, total) = b.plan_candidates(key, &[None, Some(Term::Int(3)), None]);
        assert_eq!(tried.len() as u64, total, "pruned posting was re-created");
    }

    #[test]
    fn compiled_rules_resolve_dispatch() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0)]),
                lit(&t, ">=", vec![Term::Var(0), Term::Int(0)]),
                lit(&t, "later", vec![Term::Var(0)]),
            ],
        ));
        let pid = kb
            .pred_id(lit(&t, "p", vec![Term::Int(0)]).key())
            .expect("rule head entry exists");
        let crule = &kb.rules_compiled(pid)[0];
        assert_eq!(crule.var_span, 1);
        assert!(matches!(crule.body[0].kind, LitKind::Pred(_)));
        assert!(matches!(crule.body[1].kind, LitKind::Builtin(_)));
        // `later` got a stable (empty) entry at compile time; facts asserted
        // afterwards land in the same id.
        let LitKind::Pred(later_id) = crule.body[2].kind else {
            panic!("body preds compile to Pred ids");
        };
        kb.assert_fact(lit(&t, "later", vec![Term::Int(1)]));
        assert_eq!(
            kb.pred_id(lit(&t, "later", vec![Term::Int(0)]).key()),
            Some(later_id)
        );
    }

    /// Regression for ROADMAP "Compound probes": a goal whose bound
    /// argument is a ground *compound* term must probe the posting list by
    /// the compound's arena id instead of silently scanning the relation.
    #[test]
    fn ground_compound_arguments_probe_instead_of_scanning() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let q = t.intern("q");
        for i in 0..100i64 {
            kb.assert_fact(lit(
                &t,
                "charge",
                vec![Term::app(q, vec![Term::Int(i % 10)]), Term::Int(i)],
            ));
        }
        let key = lit(&t, "charge", vec![Term::Int(0); 2]).key();
        let probe = Term::app(q, vec![Term::Int(3)]);

        // First argument bound to a ground compound: the candidate count
        // drops from the 100-fact scan to the 10 posting hits.
        let (tried, total) = kb.plan_candidates(key, &[Some(probe.clone()), None]);
        assert_eq!(total, 10, "compound probe must narrow the reference set");
        assert_eq!(tried.len(), 10);
        assert_eq!(kb.candidate_facts(key, Some(&probe)).count(), 10);
        // An uninterned compound yields nothing (no fact can equal it).
        let absent = Term::app(q, vec![Term::Int(77)]);
        assert_eq!(kb.candidate_facts(key, Some(&absent)).count(), 0);
        // A compound still containing a variable cannot probe: full scan.
        let open = Term::app(q, vec![Term::Var(0)]);
        let (tried, total) = kb.plan_candidates(key, &[Some(open), None]);
        assert_eq!((tried.len() as u64, total), (100, 100));

        // Second position: a compound-keyed posting narrows a first-arg
        // walk too (hash-join choice over a non-first position).
        let mut kb2 = KnowledgeBase::new(t.clone());
        for m in 0..5i64 {
            for i in 0..40i64 {
                kb2.assert_fact(lit(
                    &t,
                    "site",
                    vec![Term::Int(m), Term::app(q, vec![Term::Int(i)])],
                ));
            }
        }
        let key2 = lit(&t, "site", vec![Term::Int(0); 2]).key();
        let probe2 = Term::app(q, vec![Term::Int(7)]);
        let (tried, total) = kb2.plan_candidates(key2, &[None, Some(probe2)]);
        assert_eq!(total, 200, "reference scans when the first arg is free");
        assert_eq!(tried.len(), 5, "one hit per molecule, found by probe");
    }

    #[test]
    fn arena_dedupes_fact_arguments() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m = Term::Sym(t.intern("mol"));
        for i in 0..100i64 {
            kb.assert_fact(lit(&t, "atm", vec![m.clone(), Term::Int(i % 5)]));
        }
        // 1 molecule constant + 5 distinct ints.
        assert_eq!(kb.arena().len(), 6);
    }

    /// Rows rebuilt from the columns must reproduce the asserted literals
    /// exactly — including positions past [`MAX_INDEXED_ARGS`] (which have
    /// columns but no posting lists) and irregular (non-ground) facts.
    #[test]
    fn rebuilt_rows_match_asserted_literals() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let wide: Vec<Literal> = (0..10i64)
            .map(|i| {
                lit(
                    &t,
                    "wide",
                    vec![
                        Term::Int(i),
                        Term::Sym(t.intern(&format!("s{}", i % 3))),
                        Term::app(t.intern("f"), vec![Term::Int(i % 4)]),
                        Term::Int(i * 2),
                        Term::Int(i * 3), // past MAX_INDEXED_ARGS
                        Term::Sym(t.intern("tail")),
                    ],
                )
            })
            .collect();
        for f in &wide {
            kb.assert_fact(f.clone());
        }
        // One irregular fact (non-ground second argument).
        let odd = lit(&t, "odd", vec![Term::Int(1), Term::Var(3)]);
        kb.assert_fact(odd.clone());

        let key = wide[0].key();
        assert_eq!(kb.facts_for(key), wide);
        let pid = kb.pred_id(key).expect("entry exists");
        for (i, f) in wide.iter().enumerate() {
            assert_eq!(&kb.fact_literal(pid, i as u32), f);
        }
        assert_eq!(kb.facts_for(odd.key()), vec![odd]);
        // The oracle iterator serves the same rows.
        let seen: Vec<Literal> = kb
            .candidate_facts(key, None)
            .map(|c| c.into_owned())
            .collect();
        assert_eq!(seen, wide);
    }

    /// The column-native store must beat the retired row+column layout on
    /// bytes (the `fact_memory` benchmark gates the real datasets; this
    /// pins the accounting itself). Resident `row-oracle` rows are test-
    /// only weight, so compare against the baseline without them.
    #[test]
    fn column_store_is_smaller_than_row_baseline() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..50i64 {
            for a in 0..20i64 {
                kb.assert_fact(lit(
                    &t,
                    "bond",
                    vec![
                        Term::Int(m),
                        Term::Int(m * 100 + a),
                        Term::Int(m * 100 + a + 1),
                        Term::Int(a % 3),
                    ],
                ));
            }
        }
        let resident_row_bytes: usize = kb
            .predicates()
            .flat_map(|k| kb.facts_for(k))
            .map(|l| std::mem::size_of::<Literal>() + l.args.len() * std::mem::size_of::<Term>())
            .sum();
        let column_only = kb.fact_store_bytes()
            - if cfg!(feature = "row-oracle") {
                resident_row_bytes
            } else {
                0
            };
        let baseline = kb.row_baseline_bytes();
        assert!(
            baseline as f64 >= 1.8 * column_only as f64,
            "column store {column_only}B not ≥1.8x under baseline {baseline}B"
        );
    }
}
