//! Indexed clause store (the "database" role of YAP in the paper's stack).
//!
//! Background knowledge in ILP applications is mostly *extensional* (ground
//! facts: atoms, bonds, edge properties...), plus a few intensional rules.
//! Facts are stored per `(predicate, arity)` with a first-argument index, so
//! a coverage query like `atm(m17, A, n, C)` touches only the facts of
//! molecule `m17` — this is the single most important constant factor in
//! coverage testing (see guide notes on algorithmic wins).

use crate::builtins::BuiltinTable;
use crate::clause::{Clause, Literal, PredKey};
use crate::fxhash::FxHashMap;
use crate::symbol::SymbolTable;
use crate::term::Term;

/// Per-predicate storage: ground facts (indexed) plus rules.
#[derive(Default, Debug, Clone)]
struct PredEntry {
    facts: Vec<Literal>,
    /// First-arg constant -> indices into `facts`. Only constants index.
    /// Fx-hashed: this map is probed once per goal the prover solves.
    index: FxHashMap<Term, Vec<u32>>,
    /// Facts whose first argument is a variable or compound (rare).
    unindexed: Vec<u32>,
    rules: Vec<Clause>,
}

/// A knowledge base: interned symbols, indexed facts, and rules.
#[derive(Clone)]
pub struct KnowledgeBase {
    syms: SymbolTable,
    builtins: BuiltinTable,
    preds: FxHashMap<PredKey, PredEntry>,
    num_facts: usize,
    num_rules: usize,
}

impl KnowledgeBase {
    /// Creates an empty KB sharing `syms`.
    pub fn new(syms: SymbolTable) -> Self {
        let builtins = BuiltinTable::new(&syms);
        KnowledgeBase {
            syms,
            builtins,
            preds: FxHashMap::default(),
            num_facts: 0,
            num_rules: 0,
        }
    }

    /// The symbol table this KB interns against.
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// The builtin-predicate table.
    pub fn builtins(&self) -> &BuiltinTable {
        &self.builtins
    }

    /// Adds a ground (or at least first-arg-indexable) fact.
    pub fn assert_fact(&mut self, fact: Literal) {
        let entry = self.preds.entry(fact.key()).or_default();
        let idx = entry.facts.len() as u32;
        match fact.args.first() {
            Some(t) if t.is_constant() => entry.index.entry(t.clone()).or_default().push(idx),
            Some(_) => entry.unindexed.push(idx),
            None => entry.unindexed.push(idx),
        }
        entry.facts.push(fact);
        self.num_facts += 1;
    }

    /// Adds a clause; facts route to the fact store, rules to the rule list.
    pub fn assert(&mut self, clause: Clause) {
        if clause.is_fact() && clause.head.is_ground() {
            self.assert_fact(clause.head);
        } else {
            self.assert_rule(clause);
        }
    }

    /// Adds a rule (non-empty body or non-ground head).
    pub fn assert_rule(&mut self, rule: Clause) {
        self.preds
            .entry(rule.head.key())
            .or_default()
            .rules
            .push(rule);
        self.num_rules += 1;
    }

    /// Facts possibly matching `goal`: if the first argument resolves to a
    /// constant the first-arg index narrows the candidates, otherwise all
    /// facts of the predicate are returned.
    ///
    /// `first_arg` must already be dereferenced by the caller's bindings.
    pub fn candidate_facts(&self, key: PredKey, first_arg: Option<&Term>) -> FactIter<'_> {
        let Some(entry) = self.preds.get(&key) else {
            return FactIter::Empty;
        };
        match first_arg {
            Some(t) if t.is_constant() => {
                let indexed = entry.index.get(t).map(|v| v.as_slice()).unwrap_or(&[]);
                FactIter::Indexed {
                    facts: &entry.facts,
                    indexed,
                    unindexed: &entry.unindexed,
                    pos: 0,
                }
            }
            _ => FactIter::All {
                facts: &entry.facts,
                pos: 0,
            },
        }
    }

    /// Rules whose head predicate matches `key`.
    pub fn rules_for(&self, key: PredKey) -> &[Clause] {
        self.preds
            .get(&key)
            .map(|e| e.rules.as_slice())
            .unwrap_or(&[])
    }

    /// All facts of a predicate (unfiltered).
    pub fn facts_for(&self, key: PredKey) -> &[Literal] {
        self.preds
            .get(&key)
            .map(|e| e.facts.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of stored facts.
    pub fn num_facts(&self) -> usize {
        self.num_facts
    }

    /// Total number of stored rules.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }

    /// Every `(predicate, arity)` with at least one fact or rule.
    pub fn predicates(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.preds.keys().copied()
    }

    /// Removes every rule of `key`, returning how many were removed.
    /// (Used by tests and by theory resets between cross-validation folds.)
    pub fn retract_rules(&mut self, key: PredKey) -> usize {
        let Some(entry) = self.preds.get_mut(&key) else {
            return 0;
        };
        let n = entry.rules.len();
        entry.rules.clear();
        self.num_rules -= n;
        n
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KnowledgeBase({} preds, {} facts, {} rules)",
            self.preds.len(),
            self.num_facts,
            self.num_rules
        )
    }
}

/// Iterator over candidate facts returned by [`KnowledgeBase::candidate_facts`].
pub enum FactIter<'a> {
    /// No facts for this predicate.
    Empty,
    /// All facts (first argument unbound or non-constant).
    All {
        #[allow(missing_docs)]
        facts: &'a [Literal],
        #[allow(missing_docs)]
        pos: usize,
    },
    /// Index hits followed by facts the index could not cover.
    Indexed {
        #[allow(missing_docs)]
        facts: &'a [Literal],
        #[allow(missing_docs)]
        indexed: &'a [u32],
        #[allow(missing_docs)]
        unindexed: &'a [u32],
        #[allow(missing_docs)]
        pos: usize,
    },
}

impl<'a> Iterator for FactIter<'a> {
    type Item = &'a Literal;

    fn next(&mut self) -> Option<&'a Literal> {
        match self {
            FactIter::Empty => None,
            FactIter::All { facts, pos } => {
                let f = facts.get(*pos)?;
                *pos += 1;
                Some(f)
            }
            FactIter::Indexed {
                facts,
                indexed,
                unindexed,
                pos,
            } => {
                let total = indexed.len() + unindexed.len();
                if *pos >= total {
                    return None;
                }
                let idx = if *pos < indexed.len() {
                    indexed[*pos]
                } else {
                    unindexed[*pos - indexed.len()]
                };
                *pos += 1;
                Some(&facts[idx as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    #[test]
    fn indexed_lookup_narrows_candidates() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m1 = Term::Sym(t.intern("m1"));
        let m2 = Term::Sym(t.intern("m2"));
        for i in 0..5 {
            kb.assert_fact(lit(&t, "atm", vec![m1.clone(), Term::Int(i)]));
        }
        kb.assert_fact(lit(&t, "atm", vec![m2.clone(), Term::Int(9)]));

        let key = lit(&t, "atm", vec![m1.clone(), Term::Int(0)]).key();
        assert_eq!(kb.candidate_facts(key, Some(&m1)).count(), 5);
        assert_eq!(kb.candidate_facts(key, Some(&m2)).count(), 1);
        assert_eq!(kb.candidate_facts(key, None).count(), 6);
        // A constant with no index entry yields nothing.
        let m3 = Term::Sym(t.intern("m3"));
        assert_eq!(kb.candidate_facts(key, Some(&m3)).count(), 0);
    }

    #[test]
    fn rules_and_facts_are_separated() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Sym(t.intern("a"))])));
        kb.assert(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.num_rules(), 1);
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        assert_eq!(kb.rules_for(key).len(), 1);
        assert_eq!(kb.facts_for(key).len(), 1);
    }

    #[test]
    fn non_ground_fact_goes_to_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        // p(X). is a (rare) universally-quantified fact; stored as a rule.
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Var(0)])));
        assert_eq!(kb.num_rules(), 1);
        assert_eq!(kb.num_facts(), 0);
    }

    #[test]
    fn retract_rules_clears_only_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        kb.assert_fact(lit(&t, "p", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.retract_rules(key), 1);
        assert_eq!(kb.num_rules(), 0);
        assert_eq!(kb.num_facts(), 1);
    }
}
