//! Compiled, indexed clause store (the "database" role of YAP in the
//! paper's stack).
//!
//! Background knowledge in ILP applications is mostly *extensional* (ground
//! facts: atoms, bonds, edge properties...), plus a few intensional rules.
//! The store keeps three coordinated representations per `(predicate,
//! arity)` relation, addressed by a dense [`PredId`]:
//!
//! 1. **Columnar tuples** — every ground argument in the indexable prefix
//!    (the first [`MAX_INDEXED_ARGS`] positions) is interned into the
//!    per-KB [`TermArena`] and stored as `Vec<TermId>` columns: one `u32`
//!    per cell, deduplicated term storage, and one-compare membership
//!    tests when a plan narrows a first-argument walk by a sparser
//!    position.
//! 2. **Per-position posting lists** — for each of the first
//!    [`MAX_INDEXED_ARGS`] argument positions (unless pruned via
//!    [`KnowledgeBase::retain_indexes`], e.g. from mode declarations), a
//!    hash index `TermId -> sorted fact indices`. At query time the prover
//!    asks for a [`FactPlan`]: the store picks the *most selective* bound
//!    position (hash-join style), so a `bond/4` goal bound on its second
//!    argument touches only that atom's bonds instead of scanning the
//!    molecule — or the whole relation (ROADMAP "index beyond first-arg").
//! 3. **Row literals** — the original `Literal` per fact, kept as the view
//!    of the differential oracle ([`crate::prover::reference`]) through the
//!    legacy [`KnowledgeBase::candidate_facts`] iterator, and as the
//!    fallback unification target for the rare non-ground fact argument.
//!
//! Rules are stored both as plain [`Clause`]s (oracle view) and as
//! [`CompiledClause`]s whose body literals carry pre-resolved dispatch
//! ([`crate::clause::LitKind`]) and whose rename-apart variable span is
//! precomputed — per-goal dispatch in the optimized prover is array reads.
//!
//! Posting lists key *any ground* argument — atomic constants and ground
//! compound terms alike (the arena interns both), so a goal bound to e.g.
//! `at(7)` probes instead of scanning (ROADMAP "Compound probes").
//!
//! # Snapshots
//!
//! The whole compiled store — arena terms, columnar tuples, posting lists,
//! compiled rules, and the symbol dictionary — serializes as a
//! [`crate::snapshot::KbSnapshot`] via [`KnowledgeBase::to_snapshot`] /
//! [`KnowledgeBase::from_snapshot`]. A restore re-interns nothing and
//! rebuilds no index (only the reverse hash maps are repopulated), which
//! makes worker startup in the cluster substrate one wire transfer
//! (`Msg::KbSnapshot`) instead of a per-rank rebuild; see the
//! [`crate::snapshot`] module docs for the format and validation rules.
//!
//! # Step-accounting contract
//!
//! The inference-step count is the cluster substrate's virtual-time fuel,
//! pinned bit-identical to the seed semantics: a goal is charged one step
//! per candidate *the first-argument index would have enumerated* (plus one
//! per rule head tried). A narrower plan therefore reports, alongside the
//! facts actually worth trying, the rank each occupies in that reference
//! enumeration — the prover bulk-charges the skipped candidates, which are
//! exactly the ones that provably fail unification on the chosen bound
//! position (see [`FactPlan::Narrowed`]).

use crate::arena::{TermArena, TermId};
use crate::builtins::BuiltinTable;
use crate::clause::{Clause, CompiledClause, CompiledGoals, CompiledLiteral, LitKind, Literal};
use crate::clause::{PredId, PredKey};
use crate::fxhash::FxHashMap;
use crate::symbol::SymbolTable;
use crate::term::Term;

/// How many leading argument positions get a posting-list index by default.
pub const MAX_INDEXED_ARGS: usize = 4;

/// Reference candidate counts at or below this size skip the probe for a
/// better position: probing costs two hash lookups per indexed position,
/// which only pays off against a walk of some length (molecule-bound ILP
/// goals sit in the tens; the scans worth narrowing sit in the thousands).
const NARROW_MIN: u64 = 64;

/// Per-predicate storage: columnar facts with posting-list indexes, plus
/// rules in plain and compiled form. (`pub(crate)` so the snapshot module
/// can capture and restore it field-for-field.)
#[derive(Debug, Clone)]
pub(crate) struct PredEntry {
    /// Row view of every fact (oracle + unification target).
    pub(crate) facts: Vec<Literal>,
    /// Columnar view of the *indexable* argument positions: `cols[p][f]` is
    /// fact `f`'s argument `p` as an interned id ([`TermId::NONE`] for a
    /// non-ground argument). Plans use these for one-compare membership
    /// tests; positions past [`MAX_INDEXED_ARGS`] are never probed, so no
    /// column is kept for them.
    pub(crate) cols: Vec<Vec<TermId>>,
    /// Posting lists per indexed position: ground-term id -> ascending
    /// fact indices. `None` = index pruned for this position.
    pub(crate) postings: Vec<Option<FxHashMap<TermId, Vec<u32>>>>,
    /// Per indexed position: facts whose argument there is *not* ground
    /// (they match any probe, so every plan includes them).
    pub(crate) unindexed: Vec<Vec<u32>>,
    pub(crate) rules: Vec<Clause>,
    pub(crate) crules: Vec<CompiledClause>,
}

impl PredEntry {
    fn new(arity: usize) -> Self {
        let indexed = arity.min(MAX_INDEXED_ARGS);
        PredEntry {
            facts: Vec::new(),
            cols: vec![Vec::new(); indexed],
            postings: (0..indexed).map(|_| Some(FxHashMap::default())).collect(),
            unindexed: vec![Vec::new(); indexed],
            rules: Vec::new(),
            crules: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.facts.is_empty() && self.rules.is_empty()
    }
}

/// A knowledge base: interned symbols and terms, indexed columnar facts,
/// and compiled rules.
#[derive(Clone)]
pub struct KnowledgeBase {
    pub(crate) syms: SymbolTable,
    pub(crate) builtins: BuiltinTable,
    pub(crate) arena: TermArena,
    pub(crate) pred_index: FxHashMap<PredKey, PredId>,
    pub(crate) keys: Vec<PredKey>,
    pub(crate) entries: Vec<PredEntry>,
    pub(crate) num_facts: usize,
    pub(crate) num_rules: usize,
}

impl KnowledgeBase {
    /// Creates an empty KB sharing `syms`.
    pub fn new(syms: SymbolTable) -> Self {
        let builtins = BuiltinTable::new(&syms);
        KnowledgeBase {
            syms,
            builtins,
            arena: TermArena::new(),
            pred_index: FxHashMap::default(),
            keys: Vec::new(),
            entries: Vec::new(),
            num_facts: 0,
            num_rules: 0,
        }
    }

    /// The symbol table this KB interns against.
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// The builtin-predicate table.
    pub fn builtins(&self) -> &BuiltinTable {
        &self.builtins
    }

    /// The ground-term arena backing the columnar fact store.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// The dense id of `key`, if the KB has an entry for it.
    #[inline]
    pub fn pred_id(&self, key: PredKey) -> Option<PredId> {
        self.pred_index.get(&key).copied()
    }

    /// The dense id of `key`, allocating an (empty) entry when absent.
    pub fn pred_id_or_insert(&mut self, key: PredKey) -> PredId {
        if let Some(&id) = self.pred_index.get(&key) {
            return id;
        }
        let id = PredId(self.entries.len() as u32);
        self.pred_index.insert(key, id);
        self.keys.push(key);
        self.entries.push(PredEntry::new(key.arity as usize));
        id
    }

    /// Adds a ground (or at least first-arg-indexable) fact.
    pub fn assert_fact(&mut self, fact: Literal) {
        // Only the indexable prefix of the argument tuple is interned —
        // positions past [`MAX_INDEXED_ARGS`] are never probed, so paying
        // arena and column space for them would buy nothing.
        let indexed = fact.args.len().min(MAX_INDEXED_ARGS);
        let tids: Vec<TermId> = fact.args[..indexed]
            .iter()
            .map(|a| {
                if a.is_ground() {
                    self.arena.intern(a)
                } else {
                    TermId::NONE
                }
            })
            .collect();
        let pid = self.pred_id_or_insert(fact.key());
        let entry = &mut self.entries[pid.index()];
        let idx = entry.facts.len() as u32;
        for (p, &tid) in tids.iter().enumerate() {
            entry.cols[p].push(tid);
            match &mut entry.postings[p] {
                // Every ground argument — atomic *or compound* — is interned
                // and posted under its arena id, so goals bound to a ground
                // compound probe instead of scanning (ROADMAP "Compound
                // probes").
                Some(map) if !tid.is_none() => map.entry(tid).or_default().push(idx),
                Some(_) => entry.unindexed[p].push(idx),
                None => {}
            }
        }
        entry.facts.push(fact);
        self.num_facts += 1;
    }

    /// Adds a clause; facts route to the fact store, rules to the rule list.
    pub fn assert(&mut self, clause: Clause) {
        if clause.is_fact() && clause.head.is_ground() {
            self.assert_fact(clause.head);
        } else {
            self.assert_rule(clause);
        }
    }

    /// Adds a rule (non-empty body or non-ground head), compiling its body
    /// dispatch eagerly. Predicates first seen in the body get (empty)
    /// entries, so their [`PredId`]s are stable if facts or rules for them
    /// arrive later.
    pub fn assert_rule(&mut self, rule: Clause) {
        let var_span = rule.var_span();
        let body: Box<[CompiledLiteral]> = rule
            .body
            .iter()
            .map(|l| {
                let kind = self.litkind_or_insert(l);
                CompiledLiteral {
                    lit: l.clone(),
                    kind,
                }
            })
            .collect();
        let compiled = CompiledClause {
            head: rule.head.clone(),
            body,
            var_span,
        };
        let pid = self.pred_id_or_insert(rule.head.key());
        let entry = &mut self.entries[pid.index()];
        entry.rules.push(rule);
        entry.crules.push(compiled);
        self.num_rules += 1;
    }

    fn litkind_or_insert(&mut self, l: &Literal) -> LitKind {
        if let Some(b) = self.builtins.get(l.pred) {
            return LitKind::Builtin(b);
        }
        LitKind::Pred(self.pred_id_or_insert(l.key()))
    }

    /// Resolves a goal literal's dispatch without mutating the KB (the
    /// query-compilation path: the prover holds `&KnowledgeBase`).
    pub fn litkind(&self, l: &Literal) -> LitKind {
        if let Some(b) = self.builtins.get(l.pred) {
            return LitKind::Builtin(b);
        }
        match self.pred_id(l.key()) {
            Some(id) => LitKind::Pred(id),
            None => LitKind::Unknown,
        }
    }

    /// Compiles one goal literal (see [`KnowledgeBase::compile_goals`]).
    pub fn compile_literal(&self, l: &Literal) -> CompiledLiteral {
        CompiledLiteral {
            lit: l.clone(),
            kind: self.litkind(l),
        }
    }

    /// Compiles a query literal by *moving* it into its compiled form — no
    /// clone, no allocation. Pair with
    /// [`crate::prover::Prover::solutions_compiled_reusing`] (or
    /// [`crate::clause::CompiledGoalsRef::single`]) for the allocation-free
    /// saturation query path.
    pub fn compile_query(&self, l: Literal) -> CompiledLiteral {
        CompiledLiteral {
            kind: self.litkind(&l),
            lit: l,
        }
    }

    /// Compiles a goal conjunction for repeated proving. Predicate and
    /// builtin dispatch is resolved once here; per-goal work in the prover
    /// becomes array reads. Compile once per rule evaluation, not per
    /// example.
    pub fn compile_goals(&self, goals: &[Literal]) -> CompiledGoals {
        CompiledGoals {
            lits: goals.iter().map(|l| self.compile_literal(l)).collect(),
            var_span: goals
                .iter()
                .filter_map(Literal::max_var)
                .max()
                .map_or(0, |v| v + 1),
        }
    }

    /// Compiled rules whose head predicate is `id` (assertion order).
    #[inline]
    pub fn rules_compiled(&self, id: PredId) -> &[CompiledClause] {
        &self.entries[id.index()].crules
    }

    /// The row view of predicate `id`'s facts — the unification targets
    /// once a plan has selected candidates (row-at-a-time unification has
    /// better locality than per-argument column reads; the columns' job is
    /// building the plan).
    #[inline]
    pub fn fact_rows(&self, id: PredId) -> &[Literal] {
        &self.entries[id.index()].facts
    }

    /// Builds the retrieval plan for a goal on predicate `id`.
    ///
    /// `resolve(p)` must return the goal's argument `p` dereferenced to a
    /// ground term — atomic constant or ground compound (`None` when unbound
    /// or containing variables); it is invoked
    /// lazily, only for indexed positions that could pay off. The returned
    /// plan enumerates a *superset* of the facts unifiable with the goal,
    /// and a *subset* of the reference (first-argument) candidate set, in
    /// reference order — see the module docs for the step contract.
    pub fn fact_plan(
        &self,
        id: PredId,
        mut resolve: impl FnMut(usize) -> Option<Term>,
    ) -> FactPlan<'_> {
        let entry = &self.entries[id.index()];
        let n = entry.facts.len();
        if n == 0 {
            return FactPlan::Empty;
        }
        // The reference candidate sequence R: first-arg posting hits then
        // first-arg-unindexable facts when the first argument is bound to a
        // ground term, every fact otherwise. (Mirrors `candidate_facts`
        // exactly — R *is* the step-accounting contract.)
        let first_segments = if entry.postings.is_empty() {
            None
        } else {
            resolve(0).map(|c| {
                let posting = entry.postings[0]
                    .as_ref()
                    .expect("position 0 is never pruned");
                let hits = self
                    .arena
                    .lookup(&c)
                    .and_then(|tid| posting.get(&tid))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                (hits, entry.unindexed[0].as_slice())
            })
        };
        let r_len = first_segments.map_or(n as u64, |(a, b)| (a.len() + b.len()) as u64);

        // Hash-join choice: the most selective bound position, by candidate
        // count (posting hits + position-unindexable facts). `tid` is the
        // probe term's arena id ([`TermId::NONE`] when the term was never
        // interned, which no column cell of an all-ground position can
        // equal).
        struct Alt<'a> {
            pos: usize,
            tid: TermId,
            hits: &'a [u32],
            un: &'a [u32],
            size: u64,
        }
        let mut best: Option<Alt<'_>> = None;
        if r_len > NARROW_MIN {
            for p in 1..entry.postings.len() {
                let Some(posting) = entry.postings[p].as_ref() else {
                    continue;
                };
                let Some(c) = resolve(p) else { continue };
                let tid = self.arena.lookup(&c).unwrap_or(TermId::NONE);
                let hits = posting.get(&tid).map(|v| v.as_slice()).unwrap_or(&[]);
                let un = entry.unindexed[p].as_slice();
                let size = (hits.len() + un.len()) as u64;
                if best.as_ref().is_none_or(|b| size < b.size) {
                    best = Some(Alt {
                        pos: p,
                        tid,
                        hits,
                        un,
                        size,
                    });
                }
            }
        }

        match (best, first_segments) {
            // A strictly narrower position wins: enumerate its candidates
            // restricted to R, tagged with their rank in R.
            (Some(alt), segs) if alt.size.saturating_mul(2) < r_len => {
                let mut tried = Vec::with_capacity((alt.size as usize).min(r_len as usize));
                let total = match segs {
                    // R is the whole relation: the posting list *is* the
                    // tried set, and a fact's rank is its own index.
                    None => {
                        for &f in merge_sorted(alt.hits, alt.un).iter() {
                            tried.push((f, f as u64));
                        }
                        n as u64
                    }
                    // R is the first-arg candidate walk. When every fact's
                    // argument at `alt.pos` is ground (the common case),
                    // membership is one columnar u32 compare per reference
                    // candidate.
                    Some((s1, s2)) if alt.un.is_empty() => {
                        let col = &entry.cols[alt.pos];
                        for (rank, &f) in s1.iter().enumerate() {
                            if col[f as usize] == alt.tid {
                                tried.push((f, rank as u64));
                            }
                        }
                        for (rank, &f) in s2.iter().enumerate() {
                            if col[f as usize] == alt.tid {
                                tried.push((f, (s1.len() + rank) as u64));
                            }
                        }
                        r_len
                    }
                    // Mixed ground/non-ground arguments: intersect the
                    // sorted posting candidates with the R segments.
                    Some((s1, s2)) => {
                        let merged = merge_sorted(alt.hits, alt.un);
                        intersect_ranks(s1, &merged, 0, &mut tried);
                        intersect_ranks(s2, &merged, s1.len() as u64, &mut tried);
                        r_len
                    }
                };
                FactPlan::Narrowed { tried, total }
            }
            (_, Some((indexed, unindexed))) => FactPlan::Seq { indexed, unindexed },
            (_, None) => FactPlan::All { n: n as u32 },
        }
    }

    /// Test/debug view of [`KnowledgeBase::fact_plan`]: the fact indices the
    /// plan would try (in reference order) and the reference candidate
    /// count, for a goal with the given per-position ground terms.
    pub fn plan_candidates(&self, key: PredKey, bound: &[Option<Term>]) -> (Vec<u32>, u64) {
        let Some(id) = self.pred_id(key) else {
            return (Vec::new(), 0);
        };
        // Mirror the prover's resolve contract: only ground terms probe.
        let plan = self.fact_plan(id, |p| {
            bound
                .get(p)
                .cloned()
                .flatten()
                .filter(|t: &Term| t.is_ground())
        });
        match plan {
            FactPlan::Empty => (Vec::new(), 0),
            FactPlan::All { n } => ((0..n).collect(), n as u64),
            FactPlan::Seq { indexed, unindexed } => {
                let mut v = indexed.to_vec();
                v.extend_from_slice(unindexed);
                let total = v.len() as u64;
                (v, total)
            }
            FactPlan::Narrowed { tried, total } => {
                (tried.into_iter().map(|(f, _)| f).collect(), total)
            }
        }
    }

    /// Prunes the posting lists of `key` down to `keep` argument positions
    /// (position 0 is always retained: it defines the reference candidate
    /// set). Callers with a language bias — mode declarations say which
    /// positions ever arrive bound — use this to drop indexes that can
    /// never be probed.
    pub fn retain_indexes(&mut self, key: PredKey, keep: &[usize]) {
        let pid = self.pred_id_or_insert(key);
        let entry = &mut self.entries[pid.index()];
        for p in 1..entry.postings.len() {
            if !keep.contains(&p) {
                entry.postings[p] = None;
                entry.unindexed[p] = Vec::new();
            }
        }
    }

    /// Releases load-time over-allocation (arena, columns, posting lists).
    /// Call once after bulk construction.
    pub fn optimize(&mut self) {
        self.arena.shrink_to_fit();
        for entry in &mut self.entries {
            entry.facts.shrink_to_fit();
            for col in &mut entry.cols {
                col.shrink_to_fit();
            }
            for posting in entry.postings.iter_mut().flatten() {
                for v in posting.values_mut() {
                    v.shrink_to_fit();
                }
            }
        }
    }

    /// Facts possibly matching `goal` under first-argument indexing only —
    /// the seed enumeration order, shared by the differential oracle
    /// ([`crate::prover::reference`]) and the step-accounting contract. The
    /// optimized prover uses [`KnowledgeBase::fact_plan`] instead.
    ///
    /// `first_arg` must already be dereferenced by the caller's bindings.
    /// Any *ground* first argument probes the posting list — ground
    /// compound terms included, since the arena interns them (ROADMAP
    /// "Compound probes"); only a variable or a compound still containing
    /// variables falls back to the scan.
    pub fn candidate_facts(&self, key: PredKey, first_arg: Option<&Term>) -> FactIter<'_> {
        let Some(&pid) = self.pred_index.get(&key) else {
            return FactIter::Empty;
        };
        let entry = &self.entries[pid.index()];
        match first_arg {
            Some(t) if t.is_ground() && !entry.postings.is_empty() => {
                let indexed = self
                    .arena
                    .lookup(t)
                    .and_then(|tid| entry.postings[0].as_ref().expect("pos 0 kept").get(&tid))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                FactIter::Indexed {
                    facts: &entry.facts,
                    indexed,
                    unindexed: &entry.unindexed[0],
                    pos: 0,
                }
            }
            _ => FactIter::All {
                facts: &entry.facts,
                pos: 0,
            },
        }
    }

    /// Rules whose head predicate matches `key`.
    pub fn rules_for(&self, key: PredKey) -> &[Clause] {
        self.pred_id(key)
            .map(|id| self.entries[id.index()].rules.as_slice())
            .unwrap_or(&[])
    }

    /// All facts of a predicate (unfiltered row view).
    pub fn facts_for(&self, key: PredKey) -> &[Literal] {
        self.pred_id(key)
            .map(|id| self.entries[id.index()].facts.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of stored facts.
    pub fn num_facts(&self) -> usize {
        self.num_facts
    }

    /// Total number of stored rules.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }

    /// Every `(predicate, arity)` with at least one fact or rule. (Entries
    /// allocated only as compiled body references are skipped.)
    pub fn predicates(&self) -> impl Iterator<Item = PredKey> + '_ {
        self.keys
            .iter()
            .zip(self.entries.iter())
            .filter(|(_, e)| !e.is_empty())
            .map(|(k, _)| *k)
    }

    /// Removes every rule of `key`, returning how many were removed.
    /// (Used by tests and by theory resets between cross-validation folds.)
    pub fn retract_rules(&mut self, key: PredKey) -> usize {
        let Some(id) = self.pred_id(key) else {
            return 0;
        };
        let entry = &mut self.entries[id.index()];
        let n = entry.rules.len();
        entry.rules.clear();
        entry.crules.clear();
        self.num_rules -= n;
        n
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KnowledgeBase({} preds, {} facts, {} rules, {} terms)",
            self.pred_index.len(),
            self.num_facts,
            self.num_rules,
            self.arena.len(),
        )
    }
}

/// Merges two sorted, disjoint index slices into one ascending vector.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Pushes `(fact, rank_base + rank-in-seg)` for every member of `cands`
/// found in the ascending slice `seg`. Binary search with a moving floor:
/// O(|cands| · log |seg|), and output ranks ascend.
fn intersect_ranks(seg: &[u32], cands: &[u32], rank_base: u64, out: &mut Vec<(u32, u64)>) {
    let mut lo = 0usize;
    for &c in cands {
        if lo >= seg.len() {
            break;
        }
        match seg[lo..].binary_search(&c) {
            Ok(k) => {
                out.push((c, rank_base + (lo + k) as u64));
                lo += k + 1;
            }
            Err(k) => lo += k,
        }
    }
}

/// A fact-retrieval plan produced by [`KnowledgeBase::fact_plan`].
///
/// All variants enumerate candidates in *reference order* (first-argument
/// posting hits, then first-arg-unindexable facts; or plain fact order), so
/// solution discovery order — and therefore early-exit behavior — matches
/// the oracle exactly.
#[derive(Debug)]
pub enum FactPlan<'a> {
    /// No facts for this predicate.
    Empty,
    /// Scan every fact (first argument not ground, and no better position
    /// available).
    All {
        /// Number of facts.
        n: u32,
    },
    /// The reference first-argument enumeration: posting hits then
    /// unindexable facts, each to be tried (and charged) individually.
    Seq {
        /// Posting hits for the first argument's ground term.
        indexed: &'a [u32],
        /// Facts whose first argument is not ground.
        unindexed: &'a [u32],
    },
    /// A narrower position was chosen: try only `tried` (fact index plus
    /// its rank in the reference enumeration, ranks ascending); every
    /// reference candidate in between fails unification on the chosen bound
    /// position and is bulk-charged by the prover.
    Narrowed {
        /// `(fact index, rank in the reference enumeration)`, rank-ascending.
        tried: Vec<(u32, u64)>,
        /// Reference candidate count (facts the seed semantics would try).
        total: u64,
    },
}

/// Iterator over candidate facts returned by [`KnowledgeBase::candidate_facts`].
pub enum FactIter<'a> {
    /// No facts for this predicate.
    Empty,
    /// All facts (first argument unbound or not ground).
    All {
        #[allow(missing_docs)]
        facts: &'a [Literal],
        #[allow(missing_docs)]
        pos: usize,
    },
    /// Index hits followed by facts the index could not cover.
    Indexed {
        #[allow(missing_docs)]
        facts: &'a [Literal],
        #[allow(missing_docs)]
        indexed: &'a [u32],
        #[allow(missing_docs)]
        unindexed: &'a [u32],
        #[allow(missing_docs)]
        pos: usize,
    },
}

impl<'a> Iterator for FactIter<'a> {
    type Item = &'a Literal;

    fn next(&mut self) -> Option<&'a Literal> {
        match self {
            FactIter::Empty => None,
            FactIter::All { facts, pos } => {
                let f = facts.get(*pos)?;
                *pos += 1;
                Some(f)
            }
            FactIter::Indexed {
                facts,
                indexed,
                unindexed,
                pos,
            } => {
                let total = indexed.len() + unindexed.len();
                if *pos >= total {
                    return None;
                }
                let idx = if *pos < indexed.len() {
                    indexed[*pos]
                } else {
                    unindexed[*pos - indexed.len()]
                };
                *pos += 1;
                Some(&facts[idx as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(t.intern(name), args)
    }

    #[test]
    fn indexed_lookup_narrows_candidates() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m1 = Term::Sym(t.intern("m1"));
        let m2 = Term::Sym(t.intern("m2"));
        for i in 0..5 {
            kb.assert_fact(lit(&t, "atm", vec![m1.clone(), Term::Int(i)]));
        }
        kb.assert_fact(lit(&t, "atm", vec![m2.clone(), Term::Int(9)]));

        let key = lit(&t, "atm", vec![m1.clone(), Term::Int(0)]).key();
        assert_eq!(kb.candidate_facts(key, Some(&m1)).count(), 5);
        assert_eq!(kb.candidate_facts(key, Some(&m2)).count(), 1);
        assert_eq!(kb.candidate_facts(key, None).count(), 6);
        // A constant with no index entry yields nothing.
        let m3 = Term::Sym(t.intern("m3"));
        assert_eq!(kb.candidate_facts(key, Some(&m3)).count(), 0);
    }

    #[test]
    fn rules_and_facts_are_separated() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Sym(t.intern("a"))])));
        kb.assert(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.num_rules(), 1);
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        assert_eq!(kb.rules_for(key).len(), 1);
        assert_eq!(kb.facts_for(key).len(), 1);
    }

    #[test]
    fn non_ground_fact_goes_to_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        // p(X). is a (rare) universally-quantified fact; stored as a rule.
        kb.assert(Clause::fact(lit(&t, "p", vec![Term::Var(0)])));
        assert_eq!(kb.num_rules(), 1);
        assert_eq!(kb.num_facts(), 0);
    }

    #[test]
    fn retract_rules_clears_only_rules() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = lit(&t, "p", vec![Term::Int(0)]).key();
        kb.assert_fact(lit(&t, "p", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        ));
        assert_eq!(kb.retract_rules(key), 1);
        assert_eq!(kb.num_rules(), 0);
        assert_eq!(kb.num_facts(), 1);
        assert!(kb.rules_compiled(kb.pred_id(key).unwrap()).is_empty());
    }

    /// bond/3-shaped relation: the second-argument posting must narrow a
    /// first-arg-unbound goal to the matching facts only.
    #[test]
    fn second_arg_plan_narrows_when_first_unbound() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let key = {
            let mut k = None;
            for m in 0..10i64 {
                for a in 0..100i64 {
                    let f = lit(
                        &t,
                        "bond",
                        vec![Term::Int(m), Term::Int(1000 * m + a), Term::Int(a % 3)],
                    );
                    k = Some(f.key());
                    kb.assert_fact(f);
                }
            }
            k.unwrap()
        };
        // Second argument bound, first unbound: 1 candidate out of 1000.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(3007))]);
        assert_eq!(total, 1000, "reference would scan every fact");
        assert_eq!(
            tried,
            vec![307],
            "3007 = fact 3*100+7, rank = its own index"
        );
        // Both bound: the sparser second-arg posting still wins over the
        // 100-fact first-arg walk.
        let (tried, total) = kb.plan_candidates(key, &[Some(Term::Int(3)), Some(Term::Int(3007))]);
        assert_eq!(total, 100, "reference = molecule 3's facts");
        assert_eq!(tried.len(), 1);
        // Unknown constant: nothing to try, reference count preserved.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(99_999))]);
        assert!(tried.is_empty());
        assert_eq!(total, 1000);
    }

    /// The plan's tried set must contain every fact that actually matches
    /// the bound pattern, and stay within the reference candidate set.
    #[test]
    fn plans_are_supersets_of_matches_and_subsets_of_reference() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for m in 0..6i64 {
            for a in 0..8i64 {
                kb.assert_fact(lit(
                    &t,
                    "e",
                    vec![Term::Int(m), Term::Int(a), Term::Int((m + a) % 4)],
                ));
            }
        }
        let key = lit(&t, "e", vec![Term::Int(0); 3]).key();
        let facts = kb.facts_for(key).to_vec();
        for bound in [
            vec![None, Some(Term::Int(5)), None],
            vec![None, None, Some(Term::Int(2))],
            vec![Some(Term::Int(2)), None, Some(Term::Int(1))],
            vec![Some(Term::Int(2)), Some(Term::Int(5)), Some(Term::Int(3))],
        ] {
            let (tried, total) = kb.plan_candidates(key, &bound);
            let matching: Vec<u32> = facts
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    bound
                        .iter()
                        .zip(f.args.iter())
                        .all(|(b, a)| b.as_ref().is_none_or(|c| c == a))
                })
                .map(|(i, _)| i as u32)
                .collect();
            for m in &matching {
                assert!(tried.contains(m), "plan missed matching fact {m}");
            }
            assert!(tried.len() as u64 <= total);
        }
    }

    #[test]
    fn retained_indexes_prune_postings() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 0..40i64 {
            kb.assert_fact(lit(&t, "r", vec![Term::Int(i % 2), Term::Int(i)]));
        }
        let key = lit(&t, "r", vec![Term::Int(0), Term::Int(0)]).key();
        kb.retain_indexes(key, &[]);
        // Second-arg probe no longer narrows; reference set = all facts.
        let (tried, total) = kb.plan_candidates(key, &[None, Some(Term::Int(7))]);
        assert_eq!(tried.len() as u64, total);
        assert_eq!(total, 40);
        // Facts asserted after pruning stay consistent.
        kb.assert_fact(lit(&t, "r", vec![Term::Int(0), Term::Int(77)]));
        let (tried, total) = kb.plan_candidates(key, &[Some(Term::Int(0)), None]);
        assert_eq!(total, 21);
        assert_eq!(tried.len(), 21);
    }

    #[test]
    fn compiled_rules_resolve_dispatch() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert_fact(lit(&t, "q", vec![Term::Int(1)]));
        kb.assert_rule(Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![
                lit(&t, "q", vec![Term::Var(0)]),
                lit(&t, ">=", vec![Term::Var(0), Term::Int(0)]),
                lit(&t, "later", vec![Term::Var(0)]),
            ],
        ));
        let pid = kb.pred_id(lit(&t, "p", vec![Term::Int(0)]).key()).unwrap();
        let crule = &kb.rules_compiled(pid)[0];
        assert_eq!(crule.var_span, 1);
        assert!(matches!(crule.body[0].kind, LitKind::Pred(_)));
        assert!(matches!(crule.body[1].kind, LitKind::Builtin(_)));
        // `later` got a stable (empty) entry at compile time; facts asserted
        // afterwards land in the same id.
        let LitKind::Pred(later_id) = crule.body[2].kind else {
            panic!("body preds compile to Pred ids");
        };
        kb.assert_fact(lit(&t, "later", vec![Term::Int(1)]));
        assert_eq!(
            kb.pred_id(lit(&t, "later", vec![Term::Int(0)]).key()),
            Some(later_id)
        );
    }

    /// Regression for ROADMAP "Compound probes": a goal whose bound
    /// argument is a ground *compound* term must probe the posting list by
    /// the compound's arena id instead of silently scanning the relation.
    #[test]
    fn ground_compound_arguments_probe_instead_of_scanning() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let q = t.intern("q");
        for i in 0..100i64 {
            kb.assert_fact(lit(
                &t,
                "charge",
                vec![Term::app(q, vec![Term::Int(i % 10)]), Term::Int(i)],
            ));
        }
        let key = lit(&t, "charge", vec![Term::Int(0); 2]).key();
        let probe = Term::app(q, vec![Term::Int(3)]);

        // First argument bound to a ground compound: the candidate count
        // drops from the 100-fact scan to the 10 posting hits.
        let (tried, total) = kb.plan_candidates(key, &[Some(probe.clone()), None]);
        assert_eq!(total, 10, "compound probe must narrow the reference set");
        assert_eq!(tried.len(), 10);
        assert_eq!(kb.candidate_facts(key, Some(&probe)).count(), 10);
        // An uninterned compound yields nothing (no fact can equal it).
        let absent = Term::app(q, vec![Term::Int(77)]);
        assert_eq!(kb.candidate_facts(key, Some(&absent)).count(), 0);
        // A compound still containing a variable cannot probe: full scan.
        let open = Term::app(q, vec![Term::Var(0)]);
        let (tried, total) = kb.plan_candidates(key, &[Some(open), None]);
        assert_eq!((tried.len() as u64, total), (100, 100));

        // Second position: a compound-keyed posting narrows a first-arg
        // walk too (hash-join choice over a non-first position).
        let mut kb2 = KnowledgeBase::new(t.clone());
        for m in 0..5i64 {
            for i in 0..40i64 {
                kb2.assert_fact(lit(
                    &t,
                    "site",
                    vec![Term::Int(m), Term::app(q, vec![Term::Int(i)])],
                ));
            }
        }
        let key2 = lit(&t, "site", vec![Term::Int(0); 2]).key();
        let probe2 = Term::app(q, vec![Term::Int(7)]);
        let (tried, total) = kb2.plan_candidates(key2, &[None, Some(probe2)]);
        assert_eq!(total, 200, "reference scans when the first arg is free");
        assert_eq!(tried.len(), 5, "one hit per molecule, found by probe");
    }

    #[test]
    fn arena_dedupes_fact_arguments() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let m = Term::Sym(t.intern("mol"));
        for i in 0..100i64 {
            kb.assert_fact(lit(&t, "atm", vec![m.clone(), Term::Int(i % 5)]));
        }
        // 1 molecule constant + 5 distinct ints.
        assert_eq!(kb.arena().len(), 6);
    }
}
