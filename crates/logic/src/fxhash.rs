//! Firefox/rustc-style multiply-xor hashing (`FxHash`).
//!
//! The KB's predicate and first-argument indexes plus the symbol table are
//! probed on every goal the prover solves; SipHash's per-lookup cost is pure
//! overhead there (the keys are interned ids and tiny terms — trusted,
//! non-adversarial input). This is the same algorithm `rustc-hash` ships;
//! it lives in-crate because the build environment is offline (see
//! `shims/README.md`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The `rustc-hash` multiply-xor hasher: one rotate, one xor, one multiply
/// per word of input.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut raw = [0u8; 8];
            raw[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(raw));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b"a"), h(b"b"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
