//! Literals and Horn clauses.

use crate::symbol::{SymbolId, SymbolTable};
use crate::term::{var_name, write_term, Term, VarId};
use std::fmt;

/// A predicate applied to arguments, e.g. `bond(M, A, B, 2)`.
///
/// Literals are positive; Horn clauses are `head :- body` where every body
/// literal is proved by SLD resolution (builtins included). Negation is not
/// part of the language the paper's search uses.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Literal {
    /// Predicate symbol.
    pub pred: SymbolId,
    /// Argument terms (may be empty for propositional atoms).
    pub args: Box<[Term]>,
}

impl Literal {
    /// Builds a literal from a predicate and argument vector.
    pub fn new(pred: SymbolId, args: Vec<Term>) -> Self {
        Literal {
            pred,
            args: args.into_boxed_slice(),
        }
    }

    /// Number of arguments.
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The `(predicate, arity)` key used for indexing.
    #[inline]
    pub fn key(&self) -> PredKey {
        PredKey {
            pred: self.pred,
            arity: self.args.len() as u32,
        }
    }

    /// True when no argument contains a variable.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Appends every variable id occurring in the literal to `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        for a in self.args.iter() {
            a.collect_vars(out);
        }
    }

    /// The largest variable id occurring in the literal, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.args.iter().filter_map(Term::max_var).max()
    }

    /// Returns a copy with every variable id shifted by `offset`.
    pub fn offset_vars(&self, offset: VarId) -> Literal {
        Literal {
            pred: self.pred,
            args: self.args.iter().map(|a| a.offset_vars(offset)).collect(),
        }
    }

    /// Applies `map` to every variable, returning the rewritten literal.
    pub fn map_vars(&self, map: &mut impl FnMut(VarId) -> Term) -> Literal {
        Literal {
            pred: self.pred,
            args: self.args.iter().map(|a| a.map_vars(map)).collect(),
        }
    }

    /// Structural size (1 for the predicate plus the size of each argument).
    pub fn size(&self) -> usize {
        1 + self.args.iter().map(Term::size).sum::<usize>()
    }

    /// Pretty-printer against a symbol table.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> LiteralDisplay<'a> {
        LiteralDisplay { lit: self, syms }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, ")")
    }
}

/// `(predicate, arity)` pair identifying a relation.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct PredKey {
    /// Predicate symbol.
    pub pred: SymbolId,
    /// Arity.
    pub arity: u32,
}

/// Dense identifier of a `(predicate, arity)` relation inside one
/// [`crate::kb::KnowledgeBase`]. Replaces per-goal [`PredKey`] map probes
/// with a direct array index; ids are stable for the KB's lifetime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// The raw index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pred#{}", self.0)
    }
}

/// Pre-classified dispatch of a goal literal: what the prover does with it,
/// decided once at compile time instead of once per proof step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LitKind {
    /// The predicate symbol names a builtin (checked before arity, exactly
    /// like the interpreted dispatch did).
    Builtin(crate::builtins::Builtin),
    /// A user predicate with a knowledge-base entry.
    Pred(PredId),
    /// A predicate unknown to the KB at compile time: no facts, no rules —
    /// the goal fails without consuming any inference step.
    Unknown,
}

/// A body literal with its dispatch resolved (the "compiled" form the
/// prover's inner loop consumes — WAM-lite: direct slots, no bytecode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledLiteral {
    /// The literal's term structure (the unification payload).
    pub lit: Literal,
    /// Resolved dispatch.
    pub kind: LitKind,
}

/// A clause whose body literals carry resolved dispatch and whose
/// rename-apart variable span is precomputed.
///
/// Stored next to the plain [`Clause`] in the KB: the optimized prover
/// walks `CompiledClause`s, the differential oracle
/// ([`crate::prover::reference`]) keeps walking the plain form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledClause {
    /// The clause head (never dispatched on, so it stays a plain literal).
    pub head: Literal,
    /// Compiled body, proved left to right.
    pub body: Box<[CompiledLiteral]>,
    /// One past the largest variable id ([`Clause::var_span`], precomputed
    /// so rule expansion skips the per-candidate `max_var` scan).
    pub var_span: VarId,
}

/// A compiled goal conjunction: the form [`crate::prover::Prover`] actually
/// runs. Compile once per query (or once per rule evaluation) and reuse
/// across thousands of proofs — coverage testing's hot path.
#[derive(Clone, Debug, Default)]
pub struct CompiledGoals {
    /// Compiled goals, proved left to right.
    pub lits: Box<[CompiledLiteral]>,
    /// One past the largest variable id of the original goals.
    pub var_span: VarId,
}

/// A *borrowed* compiled goal conjunction: the same shape as
/// [`CompiledGoals`], but the literals live wherever the caller keeps them
/// (the stack, a reused buffer, a KB clause). This is what makes the
/// saturation loop allocation-free (ROADMAP "Borrowed compiled goals"): a
/// query built per recall round becomes one stack-local
/// [`CompiledLiteral`] — no literal clone, no goals box.
#[derive(Clone, Copy, Debug)]
pub struct CompiledGoalsRef<'a> {
    /// Compiled goals, proved left to right.
    pub lits: &'a [CompiledLiteral],
    /// One past the largest variable id of the goals.
    pub var_span: VarId,
}

impl<'a> From<&'a CompiledGoals> for CompiledGoalsRef<'a> {
    fn from(goals: &'a CompiledGoals) -> Self {
        CompiledGoalsRef {
            lits: &goals.lits,
            var_span: goals.var_span,
        }
    }
}

impl<'a> CompiledGoalsRef<'a> {
    /// Borrows a single compiled literal as a one-goal conjunction.
    pub fn single(goal: &'a CompiledLiteral) -> Self {
        CompiledGoalsRef {
            lits: std::slice::from_ref(goal),
            var_span: goal.lit.max_var().map_or(0, |v| v + 1),
        }
    }
}

/// Display adapter produced by [`Literal::display`].
pub struct LiteralDisplay<'a> {
    lit: &'a Literal,
    syms: &'a SymbolTable,
}

impl fmt::Display for LiteralDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.syms.name(self.lit.pred))?;
        if self.lit.args.is_empty() {
            return Ok(());
        }
        write!(f, "(")?;
        for (i, a) in self.lit.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write_term(f, a, self.syms)?;
        }
        write!(f, ")")
    }
}

/// A definite Horn clause `head :- body` (a fact when the body is empty).
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Clause {
    /// The single positive literal.
    pub head: Literal,
    /// Conjunction of body literals, proved left to right.
    pub body: Vec<Literal>,
}

impl Clause {
    /// Builds a clause from a head and body.
    pub fn new(head: Literal, body: Vec<Literal>) -> Self {
        Clause { head, body }
    }

    /// Builds a fact (empty body).
    pub fn fact(head: Literal) -> Self {
        Clause {
            head,
            body: Vec::new(),
        }
    }

    /// True when the body is empty.
    #[inline]
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Number of body literals (the "length" used by ILP size constraints).
    #[inline]
    pub fn length(&self) -> usize {
        self.body.len()
    }

    /// Appends every variable id of head and body to `out` (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        self.head.collect_vars(out);
        for l in &self.body {
            l.collect_vars(out);
        }
    }

    /// The distinct variables of the clause, in first-occurrence order.
    pub fn distinct_vars(&self) -> Vec<VarId> {
        let mut all = Vec::new();
        self.collect_vars(&mut all);
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// The largest variable id in the clause, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.head
            .max_var()
            .into_iter()
            .chain(self.body.iter().filter_map(Literal::max_var))
            .max()
    }

    /// One past the largest variable id (0 for ground clauses); the number of
    /// fresh slots a [`crate::subst::Bindings`] needs for this clause.
    pub fn var_span(&self) -> VarId {
        self.max_var().map_or(0, |v| v + 1)
    }

    /// Returns a copy with every variable id shifted by `offset`.
    pub fn offset_vars(&self, offset: VarId) -> Clause {
        Clause {
            head: self.head.offset_vars(offset),
            body: self.body.iter().map(|l| l.offset_vars(offset)).collect(),
        }
    }

    /// Renames variables to the compact range `0..n` in first-occurrence
    /// order, returning the renamed clause. Two clauses that are equal up to
    /// consistent renaming normalize to the same value.
    pub fn normalize(&self) -> Clause {
        let vars = self.distinct_vars();
        let mut map = std::collections::HashMap::with_capacity(vars.len());
        for (i, v) in vars.iter().enumerate() {
            map.insert(*v, i as VarId);
        }
        let mut f = |v: VarId| Term::Var(map[&v]);
        Clause {
            head: self.head.map_vars(&mut f),
            body: self.body.iter().map(|l| l.map_vars(&mut f)).collect(),
        }
    }

    /// Structural size of head plus body.
    pub fn size(&self) -> usize {
        self.head.size() + self.body.iter().map(Literal::size).sum::<usize>()
    }

    /// True when the clause contains no variables.
    pub fn is_ground(&self) -> bool {
        self.head.is_ground() && self.body.iter().all(Literal::is_ground)
    }

    /// Pretty-printer against a symbol table.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> ClauseDisplay<'a> {
        ClauseDisplay { clause: self, syms }
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l:?}")?;
            }
        }
        Ok(())
    }
}

/// Display adapter produced by [`Clause::display`].
pub struct ClauseDisplay<'a> {
    clause: &'a Clause,
    syms: &'a SymbolTable,
}

impl fmt::Display for ClauseDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.clause.head.display(self.syms))?;
        if !self.clause.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.clause.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", l.display(self.syms))?;
            }
        }
        write!(f, ".")
    }
}

/// Pretty name for variables in error messages and traces.
pub fn pretty_var(v: VarId) -> String {
    var_name(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn lit(syms: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
        Literal::new(syms.intern(name), args)
    }

    #[test]
    fn keys_distinguish_arity() {
        let t = SymbolTable::new();
        let a = lit(&t, "p", vec![Term::Int(1)]);
        let b = lit(&t, "p", vec![Term::Int(1), Term::Int(2)]);
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key().pred, b.key().pred);
    }

    #[test]
    fn clause_var_utilities() {
        let t = SymbolTable::new();
        let head = lit(&t, "p", vec![Term::Var(3)]);
        let body = vec![lit(&t, "q", vec![Term::Var(3), Term::Var(7)])];
        let c = Clause::new(head, body);
        assert_eq!(c.distinct_vars(), vec![3, 7]);
        assert_eq!(c.max_var(), Some(7));
        assert_eq!(c.var_span(), 8);
        assert_eq!(c.length(), 1);
        assert!(!c.is_fact());
    }

    #[test]
    fn normalize_is_alpha_invariant() {
        let t = SymbolTable::new();
        let c1 = Clause::new(
            lit(&t, "p", vec![Term::Var(5)]),
            vec![lit(&t, "q", vec![Term::Var(5), Term::Var(9)])],
        );
        let c2 = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0), Term::Var(1)])],
        );
        assert_eq!(c1.normalize(), c2.normalize());
    }

    #[test]
    fn display_shapes() {
        let t = SymbolTable::new();
        let c = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(0)])],
        );
        assert_eq!(format!("{}", c.display(&t)), "p(A) :- q(A).");
        let f = Clause::fact(lit(&t, "r", vec![]));
        assert_eq!(format!("{}", f.display(&t)), "r.");
    }

    #[test]
    fn offset_shifts_all_literals() {
        let t = SymbolTable::new();
        let c = Clause::new(
            lit(&t, "p", vec![Term::Var(0)]),
            vec![lit(&t, "q", vec![Term::Var(1)])],
        );
        let c2 = c.offset_vars(10);
        assert_eq!(c2.distinct_vars(), vec![10, 11]);
    }
}
