//! Interned ground-term storage (the compiled KB's term arena).
//!
//! Every ground argument of every fact is interned once into a per-KB
//! [`TermArena`] and referred to by a dense [`TermId`]. Fact storage then
//! becomes columnar `Vec<TermId>` (see `kb.rs`): one `u32` per argument
//! instead of one heap-boxed [`Term`] tree per occurrence, which both
//! shrinks the KB footprint (ILP background knowledge repeats the same
//! molecule/atom/element constants millions of times) and turns index
//! probing into a dense-integer hash lookup.
//!
//! The arena is append-only: ids are stable for the lifetime of the KB, so
//! posting lists and columns can hold raw `u32`s without invalidation.
//!
//! Since unification went column-native, the arena is also the
//! *unification source*: [`crate::subst::Bindings::unify_term_id`] matches
//! a goal argument against `arena.term(cell)` directly — the arena term is
//! ground by construction, which licenses the occurs-free fast path — so
//! the columnar tuples are the only per-fact storage a release build
//! carries (the row `Literal` store of earlier revisions is gone; see
//! `kb.rs`).

use crate::fxhash::FxHashMap;
use crate::term::Term;

/// Dense identifier of an interned ground term.
///
/// `repr(transparent)` is load-bearing: fact storage is contiguous
/// `TermId` stripes (see `kb.rs`) that the all-ground compare kernel
/// streams as plain `u32` lanes, so the id must be exactly a `u32` with no
/// padding or discriminant (the layout-audit test pins size and alignment
/// at 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct TermId(pub u32);

impl TermId {
    /// Sentinel for "not interned" (a non-ground argument in a fact column).
    pub const NONE: TermId = TermId(u32::MAX);

    /// The raw index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True when this is the [`TermId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == TermId::NONE
    }
}

/// A goal argument resolved for index probing, the cached form of one
/// `arena.lookup(..)` — computed once per goal and shared by plan
/// construction ([`crate::kb::KnowledgeBase::fact_plan`]) and the
/// all-ground compare kernel, instead of re-resolving and re-hashing the
/// argument per indexed position.
///
/// The three-way split mirrors the step-accounting contract exactly:
/// whether a position *probes* depends only on groundness
/// ([`Probe::is_ground`]), while what it can *match* depends on internment
/// — a ground-but-never-interned argument ([`Probe::Miss`]) probes like
/// any ground term but can equal no column cell, since the arena dedupes
/// (cell-id equality is term equality).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Probe {
    /// Not ground under the current bindings: cannot probe an index.
    Free,
    /// Ground but absent from the arena: probes, and matches nothing.
    Miss,
    /// Ground and interned as this id.
    Id(TermId),
}

impl Probe {
    /// True for the probing cases ([`Probe::Id`] and [`Probe::Miss`]).
    #[inline]
    pub fn is_ground(self) -> bool {
        !matches!(self, Probe::Free)
    }

    /// The probe key: the interned id, or [`TermId::NONE`] for a miss
    /// (which no posting key and no regular column cell can equal).
    /// Panics semantics-free on [`Probe::Free`] by returning the same
    /// match-nothing sentinel; callers check [`Probe::is_ground`] first.
    #[inline]
    pub fn tid(self) -> TermId {
        match self {
            Probe::Id(t) => t,
            Probe::Miss | Probe::Free => TermId::NONE,
        }
    }
}

impl std::fmt::Debug for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "term#none")
        } else {
            write!(f, "term#{}", self.0)
        }
    }
}

/// An append-only interner of ground terms.
///
/// Interning the same ground term twice yields the same [`TermId`], so id
/// equality is term equality and a column of ids can be compared or hashed
/// without touching the term structure.
#[derive(Default, Clone)]
pub struct TermArena {
    terms: Vec<Term>,
    map: FxHashMap<Term, TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a ground term, returning its stable id. The term is cloned
    /// only on first occurrence.
    ///
    /// Callers must only pass ground terms; interning a variable would make
    /// id-equality unsound (debug-checked).
    pub fn intern(&mut self, t: &Term) -> TermId {
        debug_assert!(t.is_ground(), "only ground terms may be interned");
        if let Some(&id) = self.map.get(t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        assert!(id.0 != u32::MAX, "term arena full");
        self.terms.push(t.clone());
        self.map.insert(t.clone(), id);
        id
    }

    /// Looks up an already-interned term without inserting.
    #[inline]
    pub fn lookup(&self, t: &Term) -> Option<TermId> {
        self.map.get(t).copied()
    }

    /// The term behind `id`. Panics on [`TermId::NONE`] or a foreign id.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Releases over-reserved capacity (called once bulk loading is done).
    pub fn shrink_to_fit(&mut self) {
        self.terms.shrink_to_fit();
    }

    /// The interned terms in id order (term `i` has id `TermId(i)`); the
    /// serialized form a [`crate::snapshot::KbSnapshot`] captures.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Rebuilds an arena from terms in id order (the snapshot-load path).
    /// Only the reverse `Term -> TermId` map is recomputed — one hash insert
    /// per *distinct* term, not one per fact-argument occurrence as a full
    /// reload would pay. Fails on a non-ground or duplicate term (a snapshot
    /// this arena produced contains neither).
    pub fn from_terms(terms: Vec<Term>) -> Result<Self, &'static str> {
        let mut map = FxHashMap::default();
        map.reserve(terms.len());
        for (i, t) in terms.iter().enumerate() {
            if !t.is_ground() {
                return Err("non-ground arena term");
            }
            if map.insert(t.clone(), TermId(i as u32)).is_some() {
                return Err("duplicate arena term");
            }
        }
        Ok(TermArena { terms, map })
    }
}

impl std::fmt::Debug for TermArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TermArena({} terms)", self.terms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let t = SymbolTable::new();
        let mut a = TermArena::new();
        let x = Term::Sym(t.intern("x"));
        let y = Term::Int(7);
        let i = a.intern(&x);
        let j = a.intern(&y);
        assert_eq!(a.intern(&x), i);
        assert_ne!(i, j);
        assert_eq!((i.index(), j.index()), (0, 1));
        assert_eq!(a.term(i), &x);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn compound_terms_dedupe_structurally() {
        let t = SymbolTable::new();
        let mut a = TermArena::new();
        let f = t.intern("f");
        let c1 = Term::app(f, vec![Term::Int(1), Term::Sym(t.intern("a"))]);
        let c2 = Term::app(f, vec![Term::Int(1), Term::Sym(t.intern("a"))]);
        assert_eq!(a.intern(&c1), a.intern(&c2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut a = TermArena::new();
        assert_eq!(a.lookup(&Term::Int(3)), None);
        let id = a.intern(&Term::Int(3));
        assert_eq!(a.lookup(&Term::Int(3)), Some(id));
    }

    #[test]
    fn none_sentinel_is_distinct() {
        assert!(TermId::NONE.is_none());
        assert!(!TermId(0).is_none());
        assert_eq!(format!("{:?}", TermId::NONE), "term#none");
    }
}
