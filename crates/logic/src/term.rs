//! First-order terms.

use crate::symbol::{SymbolId, SymbolTable};
use std::fmt;

/// Identifier of a logic variable. Variables are clause-local; the prover
/// renames clauses apart by offsetting variable ids.
pub type VarId = u32;

/// An `f64` with total ordering and hashing (by bit pattern), so terms can
/// be used as map keys. NaN is permitted but compares by bits.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for F64 {}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state)
    }
}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Term {
    /// A logic variable.
    Var(VarId),
    /// An atomic constant (interned name).
    Sym(SymbolId),
    /// An integer constant.
    Int(i64),
    /// A floating-point constant.
    Float(F64),
    /// A compound term `f(t1, ..., tn)` with `n >= 1`.
    App(SymbolId, Box<[Term]>),
}

impl Term {
    /// Convenience constructor for a compound term.
    pub fn app(f: SymbolId, args: Vec<Term>) -> Term {
        Term::App(f, args.into_boxed_slice())
    }

    /// True when the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Sym(_) | Term::Int(_) | Term::Float(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// True when the term is a constant (not a variable or compound).
    pub fn is_constant(&self) -> bool {
        matches!(self, Term::Sym(_) | Term::Int(_) | Term::Float(_))
    }

    /// Collects every variable id occurring in the term (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::App(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// The largest variable id occurring in the term, if any.
    pub fn max_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::App(_, args) => args.iter().filter_map(Term::max_var).max(),
            _ => None,
        }
    }

    /// Returns a copy with every variable id shifted by `offset`.
    pub fn offset_vars(&self, offset: VarId) -> Term {
        match self {
            Term::Var(v) => Term::Var(v + offset),
            Term::App(f, args) => {
                Term::App(*f, args.iter().map(|a| a.offset_vars(offset)).collect())
            }
            t => t.clone(),
        }
    }

    /// Applies `map` to every variable id, returning the rewritten term.
    pub fn map_vars(&self, map: &mut impl FnMut(VarId) -> Term) -> Term {
        match self {
            Term::Var(v) => map(*v),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| a.map_vars(map)).collect()),
            t => t.clone(),
        }
    }

    /// Structural size (number of symbol/constant/variable nodes).
    pub fn size(&self) -> usize {
        match self {
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Pretty-prints the term against a symbol table.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> TermDisplay<'a> {
        TermDisplay { term: self, syms }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "_{v}"),
            Term::Sym(s) => write!(f, "{s:?}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{}", x.0),
            Term::App(s, args) => {
                write!(f, "{s:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Display adapter produced by [`Term::display`].
pub struct TermDisplay<'a> {
    term: &'a Term,
    syms: &'a SymbolTable,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self.term, self.syms)
    }
}

/// Writes `term` in (approximate) Prolog syntax.
pub fn write_term(f: &mut fmt::Formatter<'_>, term: &Term, syms: &SymbolTable) -> fmt::Result {
    match term {
        Term::Var(v) => write!(f, "{}", var_name(*v)),
        Term::Sym(s) => write!(f, "{}", syms.name(*s)),
        Term::Int(i) => write!(f, "{i}"),
        // Keep a decimal point so the token re-parses as a float.
        Term::Float(x) if x.0.fract() == 0.0 && x.0.is_finite() => write!(f, "{:.1}", x.0),
        Term::Float(x) => write!(f, "{}", x.0),
        Term::App(s, args) => {
            write!(f, "{}(", syms.name(*s))?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_term(f, a, syms)?;
            }
            write!(f, ")")
        }
    }
}

/// Human-readable variable name for id `v` (`A`, `B`, ..., `Z`, `A1`, ...).
pub fn var_name(v: VarId) -> String {
    let letter = (b'A' + (v % 26) as u8) as char;
    let round = v / 26;
    if round == 0 {
        letter.to_string()
    } else {
        format!("{letter}{round}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn groundness() {
        let t = syms();
        let f = t.intern("f");
        let a = Term::Sym(t.intern("a"));
        assert!(a.is_ground());
        let c = Term::app(f, vec![a.clone(), Term::Var(0)]);
        assert!(!c.is_ground());
        let g = Term::app(f, vec![a.clone(), Term::Int(3)]);
        assert!(g.is_ground());
    }

    #[test]
    fn var_collection_and_offset() {
        let t = syms();
        let f = t.intern("f");
        let term = Term::app(f, vec![Term::Var(0), Term::app(f, vec![Term::Var(2)])]);
        let mut vars = vec![];
        term.collect_vars(&mut vars);
        assert_eq!(vars, vec![0, 2]);
        assert_eq!(term.max_var(), Some(2));
        let shifted = term.offset_vars(10);
        assert_eq!(shifted.max_var(), Some(12));
    }

    #[test]
    fn f64_total_order() {
        assert_eq!(F64(1.5), F64(1.5));
        assert!(F64(1.0) < F64(2.0));
        assert_eq!(F64(f64::NAN), F64(f64::NAN)); // bitwise equality
    }

    #[test]
    fn term_size() {
        let t = syms();
        let f = t.intern("f");
        let term = Term::app(f, vec![Term::Int(1), Term::app(f, vec![Term::Int(2)])]);
        assert_eq!(term.size(), 4);
    }

    #[test]
    fn var_names_cycle() {
        assert_eq!(var_name(0), "A");
        assert_eq!(var_name(25), "Z");
        assert_eq!(var_name(26), "A1");
    }

    #[test]
    fn display_roundtrip_shape() {
        let t = syms();
        let f = t.intern("f");
        let term = Term::app(f, vec![Term::Sym(t.intern("a")), Term::Var(1)]);
        assert_eq!(format!("{}", term.display(&t)), "f(a,B)");
    }
}
