//! Property: pretty-printing a clause and parsing it back yields an
//! α-equivalent clause (display/parse round-trip).

use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::parser::Parser;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::{Term, F64};
use proptest::prelude::*;

fn arb_term(t: SymbolTable) -> BoxedStrategy<Term> {
    let consts: Vec<Term> = ["a", "b", "cde", "x1"]
        .iter()
        .map(|n| Term::Sym(t.intern(n)))
        .collect();
    let f = t.intern("f");
    let leaf = prop_oneof![
        (0u32..5).prop_map(Term::Var),
        proptest::sample::select(consts),
        (-99i64..99).prop_map(Term::Int),
        // Floats chosen to print exactly (avoid 0.1 + parse mismatch).
        (-8i32..8).prop_map(|i| Term::Float(F64(i as f64 * 0.5))),
    ];
    leaf.prop_recursive(2, 12, 3, move |inner| {
        proptest::collection::vec(inner, 1..3).prop_map(move |args| Term::app(f, args))
    })
    .boxed()
}

fn arb_clause(t: SymbolTable) -> impl Strategy<Value = Clause> {
    let p = t.intern("p");
    let q = t.intern("qq");
    let term = arb_term(t);
    let lit = prop_oneof![
        term.clone().prop_map(move |a| Literal::new(p, vec![a])),
        (term.clone(), term.clone()).prop_map(move |(a, b)| Literal::new(q, vec![a, b])),
    ];
    (lit.clone(), proptest::collection::vec(lit, 0..3)).prop_map(|(h, b)| Clause::new(h, b))
}

proptest! {
    #[test]
    fn display_then_parse_is_alpha_identity(c in {
        let t = SymbolTable::new();
        arb_clause(t)
    }) {
        // Fresh table per case would lose the symbols; rebuild the clause's
        // text against its own table and parse with the same table.
        let t = SymbolTable::new();
        // Re-intern the fixed vocabulary in the same order as arb_clause
        // interns it (p, qq first, then arb_term's constants, then f).
        t.intern("p");
        t.intern("qq");
        for n in ["a", "b", "cde", "x1"] { t.intern(n); }
        t.intern("f");
        let text = format!("{}", c.display(&t));
        let parsed = Parser::new(&t, &text).unwrap().parse_clause().unwrap();
        prop_assert_eq!(parsed.normalize(), c.normalize(), "text was: {}", text);
    }
}
