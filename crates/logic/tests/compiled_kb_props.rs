//! Property tests pinning the compiled knowledge base to the seed
//! semantics:
//!
//! 1. **Differential proving** — on randomized programs (multi-argument
//!    facts, recursive rules, builtins) and randomized queries/limits, the
//!    compiled-KB prover reports exactly the oracle's
//!    `(proved, steps, depth_cuts, aborted)` and the same solution list —
//!    including when multi-argument join indexes narrow fact retrieval and
//!    the skipped candidates are bulk-charged.
//! 2. **Index vs. linear scan** — a retrieval plan's candidate set contains
//!    every fact a linear scan finds matching the bound pattern, and never
//!    exceeds the reference (first-argument) candidate set.

use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::{reference, ProofLimits, ProofStats, Prover};
use p2mdie_logic::subst::Bindings;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use proptest::prelude::*;

const ELEMS: [&str; 3] = ["c", "n", "o"];

/// Builds a molecule-flavored KB from raw byte seeds: `bond/4` and `atm/3`
/// fact tables (dense enough for posting collisions), a `val/1` numeric
/// table, a `wide/6` relation whose arity overflows [`MAX_INDEXED_ARGS`]
/// (columns exist for every position, posting lists only for the prefix),
/// a recursive `path/3` relation, and a builtin-using rule `big/1`.
fn build_kb(
    bonds: &[(u8, u8, u8, u8)],
    atms: &[(u8, u8, u8)],
    vals: &[i64],
) -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    let mol = |m: u8| Term::Sym(t.intern(&format!("m{}", m % 6)));
    // Every fifth atom is a ground *compound* (`at(N)`), exercising the
    // compound-keyed posting lists on both provers.
    let atom = |a: u8| {
        if a % 5 == 4 {
            Term::app(t.intern("at"), vec![Term::Int((a % 25) as i64)])
        } else {
            Term::Sym(t.intern(&format!("a{}", a % 25)))
        }
    };
    for &(m, a, b, ty) in bonds {
        kb.assert_fact(Literal::new(
            t.intern("bond"),
            vec![mol(m), atom(a), atom(b), Term::Int((ty % 4) as i64)],
        ));
    }
    for &(m, a, e) in atms {
        kb.assert_fact(Literal::new(
            t.intern("atm"),
            vec![
                mol(m),
                atom(a),
                Term::Sym(t.intern(ELEMS[(e % 3) as usize])),
            ],
        ));
    }
    for &v in vals {
        kb.assert_fact(Literal::new(t.intern("val"), vec![Term::Int(v % 20)]));
    }
    // wide/6 reuses the bond seeds: positions past MAX_INDEXED_ARGS get
    // columns (they unify column-natively) but no posting lists.
    for &(m, a, b, ty) in bonds {
        kb.assert_fact(Literal::new(
            t.intern("wide"),
            vec![
                mol(m),
                atom(a),
                atom(b),
                Term::Int((ty % 4) as i64),
                Term::Int((a % 7) as i64),
                Term::Sym(t.intern(ELEMS[(b % 3) as usize])),
            ],
        ));
    }
    // path(M,A,B) :- bond(M,A,B,T).
    // path(M,A,C) :- bond(M,A,B,T), path(M,B,C).
    let lit = |name: &str, args: Vec<Term>| Literal::new(t.intern(name), args);
    kb.assert_rule(Clause::new(
        lit("path", vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
        vec![lit(
            "bond",
            vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
        )],
    ));
    kb.assert_rule(Clause::new(
        lit("path", vec![Term::Var(0), Term::Var(1), Term::Var(4)]),
        vec![
            lit(
                "bond",
                vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
            ),
            lit("path", vec![Term::Var(0), Term::Var(2), Term::Var(4)]),
        ],
    ));
    // big(X) :- val(X), X >= 10.
    kb.assert_rule(Clause::new(
        lit("big", vec![Term::Var(0)]),
        vec![
            lit("val", vec![Term::Var(0)]),
            lit(">=", vec![Term::Var(0), Term::Int(10)]),
        ],
    ));
    (t, kb)
}

/// An atom-position probe term matching `build_kb`'s pool shape: atomic
/// constants with every fifth a ground compound `at(N)`.
fn atom_term(t: &SymbolTable, s: u8) -> Term {
    if s % 5 == 4 {
        Term::app(t.intern("at"), vec![Term::Int((s % 25) as i64)])
    } else {
        Term::Sym(t.intern(&format!("a{}", s % 25)))
    }
}

/// Builds a query literal for one of the KB's predicates from raw seeds:
/// each argument becomes a (possibly shared) variable, an in-pool constant,
/// or an absent constant.
fn build_query(t: &SymbolTable, pred_pick: u8, seeds: &[u8]) -> Literal {
    let (name, arity) = match pred_pick % 6 {
        0 => ("bond", 4),
        1 => ("atm", 3),
        2 => ("val", 1),
        3 => ("path", 3),
        4 => ("wide", 6),
        _ => ("big", 1),
    };
    let mut args = Vec::with_capacity(arity);
    for p in 0..arity {
        let s = seeds[p % seeds.len()].wrapping_add(p as u8);
        let term = match s % 4 {
            // Shared variables exercise bound-by-earlier-goal paths.
            0 => Term::Var((s / 4 % 3) as u32),
            1 => match (name, p) {
                ("bond", 0) | ("atm", 0) | ("path", 0) | ("wide", 0) => {
                    Term::Sym(t.intern(&format!("m{}", s % 6)))
                }
                ("bond", 3) | ("wide", 3) | ("wide", 4) => Term::Int((s % 4) as i64),
                ("val", _) | ("big", _) => Term::Int((s % 20) as i64),
                ("atm", 2) | ("wide", 5) => Term::Sym(t.intern(ELEMS[(s % 3) as usize])),
                _ => atom_term(t, s),
            },
            2 => match (name, p) {
                ("val", _) | ("big", _) | ("bond", 3) | ("wide", 3) | ("wide", 4) => {
                    Term::Int((s % 25) as i64)
                }
                _ => atom_term(t, s),
            },
            // A constant no fact mentions.
            _ => Term::Sym(t.intern("zz_absent")),
        };
        args.push(term);
    }
    Literal::new(t.intern(name), args)
}

/// The oracle's version of [`Prover::solutions`] (same dedup + recall cut).
fn ref_solutions(
    kb: &KnowledgeBase,
    limits: ProofLimits,
    goal: &Literal,
    max: usize,
) -> (Vec<Literal>, ProofStats) {
    let mut out: Vec<Literal> = Vec::new();
    if max == 0 {
        return (out, ProofStats::default());
    }
    let mut seen = std::collections::HashSet::new();
    let p = reference::Prover::new(kb, limits);
    let stats = p.run(std::slice::from_ref(goal), Bindings::new(), &mut |b| {
        let inst = b.resolve_literal(goal);
        if seen.insert(inst.clone()) {
            out.push(inst);
        }
        out.len() < max
    });
    (out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Compiled-KB proving is bit-identical to `prover::reference` on
    /// randomized programs, queries, and resource limits.
    #[test]
    fn compiled_prover_matches_reference(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..120),
        atms in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..60),
        vals in proptest::collection::vec(0i64..40, 0..20),
        queries in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 1..5)), 1..6),
        max_steps in 1u64..3000,
        max_depth in 0u32..6,
        recall in 0usize..8,
    ) {
        let (t, kb) = build_kb(&bonds, &atms, &vals);
        let limits = ProofLimits { max_depth, max_steps };
        let new = Prover::new(&kb, limits);
        let old = reference::Prover::new(&kb, limits);
        for (pick, seeds) in &queries {
            let goal = build_query(&t, *pick, seeds);
            let a = new.prove_ground(&goal);
            let b = old.prove_ground(&goal);
            prop_assert_eq!(a, b, "prove diverged on {:?}", goal);
            let (sols_new, st_new) = new.solutions(&goal, recall);
            let (sols_old, st_old) = ref_solutions(&kb, limits, &goal, recall);
            prop_assert_eq!(&sols_new, &sols_old, "solutions diverged on {:?}", goal);
            prop_assert_eq!(st_new, st_old, "solution stats diverged on {:?}", goal);
        }
    }

    /// Indexed retrieval returns every fact a linear scan matches under the
    /// bound pattern, within the reference candidate budget.
    #[test]
    fn indexed_retrieval_matches_linear_scan(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..200),
        pattern in proptest::collection::vec(any::<u8>(), 4),
    ) {
        let (t, kb) = build_kb(&bonds, &[], &[]);
        let key = Literal::new(t.intern("bond"), vec![Term::Int(0); 4]).key();
        let bound: Vec<Option<Term>> = pattern
            .iter()
            .enumerate()
            .map(|(p, &s)| match s % 3 {
                0 => None,
                _ => Some(match p {
                    0 => Term::Sym(t.intern(&format!("m{}", s % 7))), // incl. absent m6
                    3 => Term::Int((s % 5) as i64),                   // incl. absent type 4
                    _ if s % 7 == 6 => {
                        // Ground compound probes (incl. absent instances).
                        Term::app(t.intern("at"), vec![Term::Int((s % 26) as i64)])
                    }
                    _ => Term::Sym(t.intern(&format!("a{}", s % 26))),
                }),
            })
            .collect();
        let (tried, total) = kb.plan_candidates(key, &bound);
        let facts = kb.facts_for(key);
        // Linear scan: which facts match every bound position?
        for (i, fact) in facts.iter().enumerate() {
            let matches = bound
                .iter()
                .zip(fact.args.iter())
                .all(|(b, a)| b.as_ref().is_none_or(|c| c == a));
            if matches {
                prop_assert!(
                    tried.contains(&(i as u32)),
                    "plan missed matching fact {} under {:?}", i, bound
                );
            }
        }
        prop_assert!(tried.len() as u64 <= total, "plan larger than reference set");
        // The reference budget itself: first-arg candidates or the scan.
        let ref_count = kb.candidate_facts(key, bound[0].as_ref()).count() as u64;
        prop_assert_eq!(total, ref_count, "reference step budget drifted");
    }

    /// Late fact arrival after mode-driven pruning (`retain_indexes`) and
    /// `optimize` must leave plans, candidate sets, and the prover's step
    /// accounting bit-identical to the seed model — and identical to the
    /// "prune before loading anything" construction order (the regression:
    /// a late assert re-creating a pruned posting or drifting `unindexed`
    /// would silently change plans, steps, or worse, results).
    #[test]
    fn late_asserts_after_pruning_stay_bit_identical(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 2..150),
        split in any::<u8>(),
        keep2 in any::<bool>(),
        queries in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 1..5)), 1..5),
        max_steps in 1u64..3000,
    ) {
        let keep: &[usize] = if keep2 { &[2] } else { &[] };
        // One shared symbol table keeps literals comparable across the two
        // construction orders.
        let t = SymbolTable::new();
        let bond = t.intern("bond");
        let key = Literal::new(bond, vec![Term::Int(0); 4]).key();
        let fact = |&(m, a, b, ty): &(u8, u8, u8, u8)| -> Literal {
            Literal::new(
                bond,
                vec![
                    Term::Sym(t.intern(&format!("m{}", m % 6))),
                    atom_term(&t, a),
                    atom_term(&t, b),
                    Term::Int((ty % 4) as i64),
                ],
            )
        };
        let add_rules = |kb: &mut KnowledgeBase| {
            let lit = |name: &str, args: Vec<Term>| Literal::new(t.intern(name), args);
            kb.assert_rule(Clause::new(
                lit("path", vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
                vec![lit("bond", vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)])],
            ));
            kb.assert_rule(Clause::new(
                lit("path", vec![Term::Var(0), Term::Var(1), Term::Var(4)]),
                vec![
                    lit("bond", vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)]),
                    lit("path", vec![Term::Var(0), Term::Var(2), Term::Var(4)]),
                ],
            ));
        };

        // KB A: prune first, then load everything. KB B: load a prefix,
        // prune + optimize mid-stream, then append the rest late.
        let mut a = KnowledgeBase::new(t.clone());
        add_rules(&mut a);
        a.retain_indexes(key, keep);
        for f in &bonds {
            a.assert_fact(fact(f));
        }
        let cut = split as usize % (bonds.len() + 1);
        let mut b = KnowledgeBase::new(t.clone());
        add_rules(&mut b);
        for f in &bonds[..cut] {
            b.assert_fact(fact(f));
        }
        b.retain_indexes(key, keep);
        b.optimize();
        for f in &bonds[cut..] {
            b.assert_fact(fact(f));
        }
        prop_assert_eq!(a.num_facts(), b.num_facts());

        let limits = ProofLimits { max_depth: 4, max_steps };
        for (pick, seeds) in &queries {
            // bond- or path-shaped goals over the shared table.
            let goal = build_query(&t, (pick % 2) * 3, seeds);
            // Seed model: the optimized prover on the late-assert KB agrees
            // with the reference prover on that same KB...
            let new_b = Prover::new(&b, limits).prove_ground(&goal);
            let ref_b = reference::Prover::new(&b, limits).prove_ground(&goal);
            prop_assert_eq!(new_b, ref_b, "late-assert KB diverged from seed on {:?}", goal);
            // ...and the two construction orders agree with each other.
            let new_a = Prover::new(&a, limits).prove_ground(&goal);
            prop_assert_eq!(new_a, new_b, "construction order changed results on {:?}", goal);
        }
        // Plans and candidate sets, position by position.
        for pos in 0..4usize {
            for &(m, a_, b_, ty) in bonds.iter().take(8) {
                let mut bound: Vec<Option<Term>> = vec![None; 4];
                bound[pos] = Some(match pos {
                    0 => Term::Sym(t.intern(&format!("m{}", m % 6))),
                    3 => Term::Int((ty % 4) as i64),
                    1 => atom_term(&t, a_),
                    _ => atom_term(&t, b_),
                });
                prop_assert_eq!(
                    a.plan_candidates(key, &bound),
                    b.plan_candidates(key, &bound),
                    "plans diverged at pos {} for {:?}", pos, bound
                );
            }
        }
    }

    /// The CSR posting store is bit-identical to the retired
    /// `FxHashMap<TermId, Vec<u32>>` layout it replaced: after `optimize`
    /// seals the pending tail, every per-key run equals the hashmap a
    /// naive rebuild produces, keys are strictly sorted, and the unsealed
    /// (pending-splice) store answers every query — plans, solutions, and
    /// step accounting — exactly like the sealed one and like
    /// `prover::reference`.
    #[test]
    fn csr_postings_match_naive_hashmap(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..300),
        queries in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 1..5)), 1..5),
        max_steps in 1u64..2000,
    ) {
        let (t, unsealed) = build_kb(&bonds, &[], &[]);
        let (_, mut sealed) = build_kb(&bonds, &[], &[]);
        sealed.optimize();
        let key = Literal::new(t.intern("bond"), vec![Term::Int(0); 4]).key();
        let pid = sealed.pred_id(key).unwrap();
        let facts = sealed.facts_for(key);

        for pos in 0..4usize {
            // The hashmap reference the CSR layout replaced: key -> sorted
            // ascending fact indices.
            let mut naive: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
            for (i, f) in facts.iter().enumerate() {
                let tid = sealed.arena().lookup(&f.args[pos]).expect("ground fact arg interned");
                naive.entry(tid.index() as u32).or_default().push(i as u32);
            }
            let (keys, offs, idx, pending) = sealed.posting_parts(pid, pos).expect("indexed pos");
            prop_assert_eq!(pending, 0, "optimize left a pending tail at pos {}", pos);
            prop_assert_eq!(keys.len(), naive.len(), "key count drifted at pos {}", pos);
            prop_assert!(
                keys.windows(2).all(|w| w[0].index() < w[1].index()),
                "CSR keys not strictly sorted at pos {}", pos
            );
            for (k, (tid, run)) in naive.iter().enumerate() {
                prop_assert_eq!(keys[k].index() as u32, *tid, "key order drifted at pos {}", pos);
                let got = &idx[offs[k] as usize..offs[k + 1] as usize];
                prop_assert_eq!(got, run.as_slice(), "run for key {} drifted at pos {}", tid, pos);
            }
            // Unsealed: merged runs plus the pending tail cover every fact
            // exactly once.
            let (_, _, uidx, upending) = unsealed.posting_parts(pid, pos).expect("indexed pos");
            prop_assert_eq!(uidx.len() + upending, facts.len(), "unsealed postings lost facts");
        }

        // Query-level: pending-splice retrieval answers exactly like the
        // sealed CSR and like the seed reference on both stores.
        let limits = ProofLimits { max_depth: 4, max_steps };
        let pu = Prover::new(&unsealed, limits);
        let ps = Prover::new(&sealed, limits);
        for (pick, seeds) in &queries {
            let goal = build_query(&t, (pick % 2) * 3, seeds); // bond or path
            let u = pu.solutions(&goal, 6);
            let s = ps.solutions(&goal, 6);
            prop_assert_eq!(&u, &s, "sealed vs unsealed diverged on {:?}", goal);
            let r = ref_solutions(&unsealed, limits, &goal, 6);
            prop_assert_eq!(&u, &r, "unsealed CSR diverged from reference on {:?}", goal);
        }
    }

    /// `solutions_compiled_batch` is query-for-query bit-identical to the
    /// one-goal-at-a-time `solutions_compiled_reusing` loop — same
    /// solutions, order, and per-query stats — for same-predicate batches
    /// (the shared-plan pass), mixed batches (the fallback), and with the
    /// all-ground kernel disabled.
    #[test]
    fn batched_solutions_match_one_at_a_time(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..120),
        atms in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..60),
        vals in proptest::collection::vec(0i64..40, 0..20),
        same_pred in any::<bool>(),
        optimize in any::<bool>(),
        queries in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 1..5)), 1..8),
        max_steps in 1u64..3000,
        recall in 0usize..8,
    ) {
        let (t, mut kb) = build_kb(&bonds, &atms, &vals);
        if optimize {
            kb.optimize();
        }
        let limits = ProofLimits { max_depth: 4, max_steps };
        let compiled: Vec<_> = queries
            .iter()
            .map(|(pick, seeds)| {
                let pick = if same_pred { queries[0].0 } else { *pick };
                kb.compile_query(build_query(&t, pick, seeds))
            })
            .collect();
        for kernel in [true, false] {
            let mut prover = Prover::new(&kb, limits);
            prover.set_all_ground_kernel(kernel);
            let mut scratch = Bindings::new();
            let batched = prover.solutions_compiled_batch(&compiled, recall, &mut scratch);
            prop_assert_eq!(batched.len(), compiled.len());
            for (q, got) in compiled.iter().zip(&batched) {
                let want = prover.solutions_compiled_reusing(q, recall, &mut scratch);
                prop_assert_eq!(
                    got, &want,
                    "batch diverged (kernel={}) on {:?}", kernel, q.lit
                );
            }
        }
    }

    /// `prove_compiled_batch` is seed-for-seed bit-identical to the
    /// head-unify + `prove_compiled_reusing` loop it batches — for
    /// single-literal bodies (the batched-planning fast path), for
    /// multi-literal bodies (the fallback), and for seeds whose head
    /// unification fails (skipped with `None`).
    #[test]
    fn batched_proving_matches_per_example(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..120),
        examples in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        two_lits in any::<bool>(),
        optimize in any::<bool>(),
        max_steps in 1u64..2000,
    ) {
        let (t, mut kb) = build_kb(&bonds, &[], &[]);
        if optimize {
            kb.optimize();
        }
        let lit = |name: &str, args: Vec<Term>| Literal::new(t.intern(name), args);
        // Coverage-shaped rule: h(M, A) :- bond(M, A, B, T)[, path(M, B, A)].
        let head = lit("h", vec![Term::Var(0), Term::Var(1)]);
        let mut body = vec![lit(
            "bond",
            vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
        )];
        if two_lits {
            body.push(lit("path", vec![Term::Var(0), Term::Var(2), Term::Var(1)]));
        }
        let span = Clause::new(head.clone(), body.clone()).var_span() as usize;
        let goals = kb.compile_goals(&body);
        // Ground "examples": h(mol, atom) instances, some unmatchable.
        let exs: Vec<Literal> = examples
            .iter()
            .map(|&(m, a)| {
                let marg = if m % 9 == 8 {
                    Term::Sym(t.intern("zz_absent"))
                } else {
                    Term::Sym(t.intern(&format!("m{}", m % 6)))
                };
                lit("h", vec![marg, atom_term(&t, a)])
            })
            .collect();
        let limits = ProofLimits { max_depth: 4, max_steps };
        let prover = Prover::new(&kb, limits);
        let mut scratch = Bindings::with_capacity(span);
        let batched = prover.prove_compiled_batch(
            &goals,
            exs.len(),
            &mut |k: usize, b: &mut Bindings| {
                b.reset(span);
                b.unify_literals(&head, &exs[k], false)
            },
            &mut scratch,
        );
        prop_assert_eq!(batched.len(), exs.len());
        for (ex, got) in exs.iter().zip(&batched) {
            scratch.reset(span);
            let want = scratch
                .unify_literals(&head, ex, false)
                .then(|| prover.prove_compiled_reusing(&goals, &mut scratch));
            prop_assert_eq!(got, &want, "batched proof diverged on {:?}", ex);
        }
    }

    /// The columnar stripe store *is* the fact store: `facts_for`
    /// round-trips every asserted literal (including irregular non-ground
    /// rows) verbatim and in assertion order, before and after `optimize`
    /// compacts the stripes, and every ground fact stays provable.
    #[test]
    fn stripes_match_row_oracle(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..200),
    ) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let bond = t.intern("bond");
        let key = Literal::new(bond, vec![Term::Int(0); 4]).key();
        let rows: Vec<Literal> = bonds
            .iter()
            .map(|&(m, a, b, ty)| {
                // Every eleventh row is irregular (keeps a variable arg).
                let second = if m % 11 == 10 {
                    Term::Var(0)
                } else {
                    atom_term(&t, a)
                };
                Literal::new(
                    bond,
                    vec![
                        Term::Sym(t.intern(&format!("m{}", m % 6))),
                        second,
                        atom_term(&t, b),
                        Term::Int((ty % 4) as i64),
                    ],
                )
            })
            .collect();
        for r in &rows {
            kb.assert_fact(r.clone());
        }
        prop_assert_eq!(&kb.facts_for(key), &rows, "stripe store dropped or reordered rows");
        kb.optimize();
        prop_assert_eq!(&kb.facts_for(key), &rows, "stripe compaction changed rows");
        let prover = Prover::new(&kb, ProofLimits { max_depth: 2, max_steps: 100_000 });
        for r in rows.iter().filter(|r| r.is_ground()).take(16) {
            prop_assert!(prover.prove_ground(r).0, "ground fact {:?} unprovable", r);
        }
    }
}
