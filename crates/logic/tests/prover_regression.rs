//! Differential regression: the zero-allocation goal-stack prover must
//! report exactly the seed semantics — same `proved`, same `steps`, same
//! `depth_cuts`, same `aborted` — as the pre-refactor clone-per-expansion
//! implementation kept in `prover::reference`, across recursion, builtins,
//! compounds, tight step budgets, and tight depth bounds.

use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::{reference, ProofLimits, Prover};
use p2mdie_logic::subst::Bindings;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;

fn lit(t: &SymbolTable, name: &str, args: Vec<Term>) -> Literal {
    Literal::new(t.intern(name), args)
}

/// Family chain with the classic two-clause `ancestor/2` recursion.
fn family_kb(n: usize) -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    for i in 0..n {
        kb.assert_fact(lit(
            &t,
            "parent",
            vec![
                Term::Sym(t.intern(&format!("p{i}"))),
                Term::Sym(t.intern(&format!("p{}", i + 1))),
            ],
        ));
    }
    kb.assert_rule(Clause::new(
        lit(&t, "ancestor", vec![Term::Var(0), Term::Var(1)]),
        vec![lit(&t, "parent", vec![Term::Var(0), Term::Var(1)])],
    ));
    kb.assert_rule(Clause::new(
        lit(&t, "ancestor", vec![Term::Var(0), Term::Var(2)]),
        vec![
            lit(&t, "parent", vec![Term::Var(0), Term::Var(1)]),
            lit(&t, "ancestor", vec![Term::Var(1), Term::Var(2)]),
        ],
    ));
    (t, kb)
}

/// Trains-style KB: cars with attributes, rules mixing facts, compounds and
/// arithmetic builtins.
fn trains_kb() -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    let cfg = t.intern("cfg");
    for tr in 0..12i64 {
        let train = Term::Sym(t.intern(&format!("t{tr}")));
        for c in 0..(2 + tr % 3) {
            let car = Term::Sym(t.intern(&format!("t{tr}c{c}")));
            kb.assert_fact(lit(&t, "has_car", vec![train.clone(), car.clone()]));
            kb.assert_fact(lit(
                &t,
                "wheels",
                vec![car.clone(), Term::Int(2 + (tr + c) % 3)],
            ));
            if (tr + c) % 2 == 0 {
                kb.assert_fact(lit(&t, "closed", vec![car.clone()]));
            }
            // A compound-valued attribute to exercise App unification.
            kb.assert_fact(lit(
                &t,
                "shape",
                vec![
                    car.clone(),
                    Term::app(cfg, vec![Term::Int(tr % 4), Term::Int(c % 2)]),
                ],
            ));
        }
    }
    // heavy(T) :- has_car(T, C), wheels(C, W), W >= 3.
    kb.assert_rule(Clause::new(
        lit(&t, "heavy", vec![Term::Var(0)]),
        vec![
            lit(&t, "has_car", vec![Term::Var(0), Term::Var(1)]),
            lit(&t, "wheels", vec![Term::Var(1), Term::Var(2)]),
            lit(&t, ">=", vec![Term::Var(2), Term::Int(3)]),
        ],
    ));
    // boxy(T) :- has_car(T, C), closed(C), shape(C, cfg(S, 0)).
    kb.assert_rule(Clause::new(
        lit(&t, "boxy", vec![Term::Var(0)]),
        vec![
            lit(&t, "has_car", vec![Term::Var(0), Term::Var(1)]),
            lit(&t, "closed", vec![Term::Var(1)]),
            lit(
                &t,
                "shape",
                vec![
                    Term::Var(1),
                    Term::app(cfg, vec![Term::Var(2), Term::Int(0)]),
                ],
            ),
        ],
    ));
    // good(T) :- heavy(T), boxy(T).   (rule-over-rule nesting)
    kb.assert_rule(Clause::new(
        lit(&t, "good", vec![Term::Var(0)]),
        vec![
            lit(&t, "heavy", vec![Term::Var(0)]),
            lit(&t, "boxy", vec![Term::Var(0)]),
        ],
    ));
    (t, kb)
}

fn assert_agree(kb: &KnowledgeBase, limits: ProofLimits, goal: &Literal) {
    let new = Prover::new(kb, limits).prove_ground(goal);
    let old = reference::Prover::new(kb, limits).prove_ground(goal);
    assert_eq!(new.0, old.0, "proved mismatch on {goal:?} under {limits:?}");
    assert_eq!(new.1, old.1, "stats mismatch on {goal:?} under {limits:?}");
}

#[test]
fn family_chain_agrees_across_limits() {
    let (t, kb) = family_kb(30);
    let c = |n: &str| Term::Sym(t.intern(n));
    let queries = [
        lit(&t, "parent", vec![c("p0"), c("p1")]),
        lit(&t, "parent", vec![c("p1"), c("p0")]),
        lit(&t, "ancestor", vec![c("p0"), c("p30")]),
        lit(&t, "ancestor", vec![c("p30"), c("p0")]),
        lit(&t, "ancestor", vec![c("p5"), c("p6")]),
        lit(&t, "ancestor", vec![c("p5"), Term::Var(0)]),
    ];
    let limit_grid = [
        ProofLimits::default(),
        ProofLimits {
            max_depth: 3,
            max_steps: 100_000,
        },
        ProofLimits {
            max_depth: 64,
            max_steps: 100_000,
        },
        ProofLimits {
            max_depth: 64,
            max_steps: 200,
        },
        ProofLimits {
            max_depth: 64,
            max_steps: 7,
        },
        ProofLimits {
            max_depth: 1,
            max_steps: 50,
        },
    ];
    for limits in limit_grid {
        for q in &queries {
            assert_agree(&kb, limits, q);
        }
    }
}

#[test]
fn trains_kb_agrees_on_every_train() {
    let (t, kb) = trains_kb();
    for tr in 0..12 {
        let train = Term::Sym(t.intern(&format!("t{tr}")));
        for pred in ["heavy", "boxy", "good"] {
            for limits in [
                ProofLimits::default(),
                ProofLimits {
                    max_depth: 2,
                    max_steps: 4_000,
                },
                ProofLimits {
                    max_depth: 10,
                    max_steps: 25,
                },
            ] {
                assert_agree(&kb, limits, &lit(&t, pred, vec![train.clone()]));
            }
        }
    }
}

#[test]
fn open_queries_enumerate_identically() {
    let (t, kb) = trains_kb();
    let limits = ProofLimits::default();
    let goal = lit(&t, "heavy", vec![Term::Var(0)]);
    let new = Prover::new(&kb, limits);
    let old = reference::Prover::new(&kb, limits);

    let mut new_sols = Vec::new();
    let new_stats = new.run(std::slice::from_ref(&goal), Bindings::new(), &mut |b| {
        new_sols.push(b.resolve_literal(&goal));
        true
    });
    let mut old_sols = Vec::new();
    let old_stats = old.run(std::slice::from_ref(&goal), Bindings::new(), &mut |b| {
        old_sols.push(b.resolve_literal(&goal));
        true
    });
    assert!(!new_sols.is_empty());
    assert_eq!(
        new_sols, old_sols,
        "solution streams must match in order and content"
    );
    assert_eq!(new_stats, old_stats);
}

#[test]
fn prebound_coverage_path_agrees() {
    let (t, kb) = trains_kb();
    let limits = ProofLimits::default();
    // Simulate coverage: V0 prebound to each train, prove the `good` body.
    let body = vec![
        lit(&t, "heavy", vec![Term::Var(0)]),
        lit(&t, "boxy", vec![Term::Var(0)]),
    ];
    for tr in 0..12 {
        let mut b1 = Bindings::new();
        b1.bind(0, Term::Sym(t.intern(&format!("t{tr}"))));
        let mut b2 = Bindings::new();
        b2.bind(0, Term::Sym(t.intern(&format!("t{tr}"))));
        let new = Prover::new(&kb, limits).prove_with_bindings(&body, b1);
        let old = reference::Prover::new(&kb, limits).prove_with_bindings(&body, b2);
        assert_eq!(new, old, "train t{tr}");
    }
}
