//! Memory-layout audit: pins the data-movement contracts the deduction
//! kernels rely on. These are *representation* guarantees, not behavior —
//! a refactor can pass every differential test and still silently reopen
//! the cache-miss regressions this PR closed, so CI checks the layout
//! directly:
//!
//! 1. `TermId` is a bare `u32` (`#[repr(transparent)]`): column stripes
//!    are dense 4-byte lanes the all-ground compare kernel streams over.
//! 2. After [`KnowledgeBase::optimize`], a predicate's column stripes are
//!    exactly adjacent — one position-major allocation with no capacity
//!    slack between positions.
//! 3. Sealed CSR posting runs tile one contiguous index buffer: run `k`
//!    ends exactly where run `k + 1` begins, keys strictly sorted, no
//!    pending tail.

use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use p2mdie_logic::TermId;

/// A bond/4 table dense enough that every position has several posting
/// keys with multi-fact runs.
fn sample_kb() -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    for i in 0..200u32 {
        kb.assert_fact(Literal::new(
            t.intern("bond"),
            vec![
                Term::Sym(t.intern(&format!("m{}", i % 7))),
                Term::Sym(t.intern(&format!("a{}", i % 23))),
                Term::Sym(t.intern(&format!("a{}", (i * 5) % 23))),
                Term::Int((i % 4) as i64),
            ],
        ));
    }
    (t, kb)
}

#[test]
fn term_id_is_a_bare_u32() {
    assert_eq!(std::mem::size_of::<TermId>(), 4, "TermId must stay 4 bytes");
    assert_eq!(
        std::mem::align_of::<TermId>(),
        4,
        "TermId must stay u32-aligned"
    );
    assert_eq!(
        std::mem::size_of::<[TermId; 16]>(),
        64,
        "TermId stripes must pack with no padding"
    );
}

#[test]
fn stripes_are_adjacent_after_optimize() {
    let (t, mut kb) = sample_kb();
    kb.optimize();
    let key = Literal::new(t.intern("bond"), vec![Term::Int(0); 4]).key();
    let pid = kb.pred_id(key).expect("bond entry");
    let cols = kb.fact_cols(pid);
    let n = cols.len() as usize;
    assert_eq!(n, 200);
    for pos in 0..cols.arity() - 1 {
        let cur = cols.stripe(pos);
        let next = cols.stripe(pos + 1);
        assert_eq!(cur.len(), n);
        assert_eq!(
            cur.as_ptr().wrapping_add(cur.len()),
            next.as_ptr(),
            "stripe {} not adjacent to stripe {}: optimize left capacity slack",
            pos + 1,
            pos
        );
    }
}

#[test]
fn csr_runs_tile_one_buffer() {
    let (t, mut kb) = sample_kb();
    kb.optimize();
    let key = Literal::new(t.intern("bond"), vec![Term::Int(0); 4]).key();
    let pid = kb.pred_id(key).expect("bond entry");
    for pos in 0..4 {
        let (keys, offs, idx, pending) = kb.posting_parts(pid, pos).expect("indexed position");
        assert_eq!(
            pending, 0,
            "optimize must seal the pending tail (pos {pos})"
        );
        assert_eq!(offs.len(), keys.len() + 1, "one run per key (pos {pos})");
        assert_eq!(
            offs.first(),
            Some(&0),
            "runs start at the buffer head (pos {pos})"
        );
        assert_eq!(
            *offs.last().unwrap() as usize,
            idx.len(),
            "runs must cover the whole index buffer (pos {pos})"
        );
        assert!(
            offs.windows(2).all(|w| w[0] <= w[1]),
            "run offsets must be non-decreasing (pos {pos})"
        );
        assert!(
            keys.windows(2).all(|w| w[0].index() < w[1].index()),
            "posting keys must be strictly sorted (pos {pos})"
        );
        assert_eq!(
            idx.len(),
            200,
            "every fact posts exactly once per position (pos {pos})"
        );
        for k in 0..keys.len() {
            let run = &idx[offs[k] as usize..offs[k + 1] as usize];
            assert!(
                run.windows(2).all(|w| w[0] < w[1]),
                "run {k} must be strictly ascending (pos {pos})"
            );
        }
    }
}
