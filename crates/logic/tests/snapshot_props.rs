//! Property tests pinning snapshot-loaded knowledge bases to freshly built
//! ones:
//!
//! 1. **Differential proving** — on randomized programs (multi-argument
//!    facts with compound arguments, recursive rules, builtins) and
//!    randomized queries/limits, a KB restored from
//!    `to_snapshot()`/`from_snapshot()` reports exactly the original's
//!    `(proved, steps, depth_cuts, aborted)` and the same solution list in
//!    the same order — whether restored into a fresh symbol table or into
//!    the shared one.
//! 2. **Index plans survive the round trip** — the restored KB's retrieval
//!    plans (tried set and reference candidate count) match the original's
//!    for every bound pattern, i.e. posting lists and columns really were
//!    adopted, not rebuilt differently.

use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::{reference, ProofLimits, Prover};
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use proptest::prelude::*;

const ELEMS: [&str; 3] = ["c", "n", "o"];

/// Molecule-flavored KB from raw byte seeds (same shape as the compiled-KB
/// differential suite, compound atoms included). With `seal: false` the KB
/// is snapshotted mid-bulk-load — CSR posting lists still carrying a
/// pending tail — which `to_snapshot` must merge into sealed runs.
fn build_kb(
    bonds: &[(u8, u8, u8, u8)],
    atms: &[(u8, u8, u8)],
    vals: &[i64],
    seal: bool,
) -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    let mol = |m: u8| Term::Sym(t.intern(&format!("m{}", m % 6)));
    let atom = |a: u8| {
        if a % 5 == 4 {
            Term::app(t.intern("at"), vec![Term::Int((a % 25) as i64)])
        } else {
            Term::Sym(t.intern(&format!("a{}", a % 25)))
        }
    };
    for &(m, a, b, ty) in bonds {
        kb.assert_fact(Literal::new(
            t.intern("bond"),
            vec![mol(m), atom(a), atom(b), Term::Int((ty % 4) as i64)],
        ));
    }
    for &(m, a, e) in atms {
        kb.assert_fact(Literal::new(
            t.intern("atm"),
            vec![
                mol(m),
                atom(a),
                Term::Sym(t.intern(ELEMS[(e % 3) as usize])),
            ],
        ));
    }
    for &v in vals {
        kb.assert_fact(Literal::new(t.intern("val"), vec![Term::Int(v % 20)]));
    }
    let lit = |name: &str, args: Vec<Term>| Literal::new(t.intern(name), args);
    kb.assert_rule(Clause::new(
        lit("path", vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
        vec![lit(
            "bond",
            vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
        )],
    ));
    kb.assert_rule(Clause::new(
        lit("path", vec![Term::Var(0), Term::Var(1), Term::Var(4)]),
        vec![
            lit(
                "bond",
                vec![Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)],
            ),
            lit("path", vec![Term::Var(0), Term::Var(2), Term::Var(4)]),
        ],
    ));
    kb.assert_rule(Clause::new(
        lit("big", vec![Term::Var(0)]),
        vec![
            lit("val", vec![Term::Var(0)]),
            lit(">=", vec![Term::Var(0), Term::Int(10)]),
        ],
    ));
    if seal {
        kb.optimize();
    }
    (t, kb)
}

/// A query literal over the KB's predicates (constants drawn from — and
/// beyond — the fact pools; variables possibly shared).
fn build_query(t: &SymbolTable, pred_pick: u8, seeds: &[u8]) -> Literal {
    let (name, arity) = match pred_pick % 5 {
        0 => ("bond", 4),
        1 => ("atm", 3),
        2 => ("val", 1),
        3 => ("path", 3),
        _ => ("big", 1),
    };
    let mut args = Vec::with_capacity(arity);
    for p in 0..arity {
        let s = seeds[p % seeds.len()].wrapping_add(p as u8);
        let term = match s % 4 {
            0 => Term::Var((s / 4 % 3) as u32),
            1 => match (name, p) {
                ("bond", 0) | ("atm", 0) | ("path", 0) => {
                    Term::Sym(t.intern(&format!("m{}", s % 6)))
                }
                ("bond", 3) => Term::Int((s % 4) as i64),
                ("val", _) | ("big", _) => Term::Int((s % 20) as i64),
                ("atm", 2) => Term::Sym(t.intern(ELEMS[(s % 3) as usize])),
                _ if s % 5 == 4 => Term::app(t.intern("at"), vec![Term::Int((s % 25) as i64)]),
                _ => Term::Sym(t.intern(&format!("a{}", s % 25))),
            },
            2 => match (name, p) {
                ("val", _) | ("big", _) | ("bond", 3) => Term::Int((s % 25) as i64),
                _ if s % 5 == 4 => Term::app(t.intern("at"), vec![Term::Int((s % 25) as i64)]),
                _ => Term::Sym(t.intern(&format!("a{}", s % 25))),
            },
            _ => Term::Sym(t.intern("zz_absent")),
        };
        args.push(term);
    }
    Literal::new(t.intern(name), args)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot-loaded KBs prove bit-identically to the freshly built KB.
    #[test]
    fn snapshot_loaded_kb_matches_fresh_kb(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..100),
        atms in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..50),
        vals in proptest::collection::vec(0i64..40, 0..16),
        queries in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 1..5)), 1..6),
        max_steps in 1u64..2500,
        max_depth in 0u32..6,
        recall in 0usize..8,
        seal in any::<bool>(),
    ) {
        let (t, kb) = build_kb(&bonds, &atms, &vals, seal);
        // Build the queries *before* snapshotting, so every query symbol is
        // part of the captured dictionary and ids agree across tables.
        let goals: Vec<Literal> = queries
            .iter()
            .map(|(pick, seeds)| build_query(&t, *pick, seeds))
            .collect();

        let snap = kb.to_snapshot();
        let loaded_fresh =
            KnowledgeBase::from_snapshot(snap.clone(), SymbolTable::new()).unwrap();
        let loaded_shared = KnowledgeBase::from_snapshot(snap, t.clone()).unwrap();

        let limits = ProofLimits { max_depth, max_steps };
        let fresh = Prover::new(&kb, limits);
        let restored = [
            Prover::new(&loaded_fresh, limits),
            Prover::new(&loaded_shared, limits),
        ];
        for goal in &goals {
            let want_prove = fresh.prove_ground(goal);
            let want_sols = fresh.solutions(goal, recall);
            for (i, p) in restored.iter().enumerate() {
                prop_assert_eq!(
                    p.prove_ground(goal), want_prove,
                    "prove diverged (restore {}) on {:?}", i, goal
                );
                let got = p.solutions(goal, recall);
                prop_assert_eq!(
                    &got.0, &want_sols.0,
                    "solutions diverged (restore {}) on {:?}", i, goal
                );
                prop_assert_eq!(
                    got.1, want_sols.1,
                    "solution stats diverged (restore {}) on {:?}", i, goal
                );
            }
        }
    }

    /// Retrieval plans — tried sets and reference candidate counts — are
    /// identical after a snapshot round trip.
    #[test]
    fn snapshot_preserves_index_plans(
        bonds in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..150),
        patterns in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 4), 1..5),
        seal in any::<bool>(),
    ) {
        let (t, kb) = build_kb(&bonds, &[], &[], seal);
        let key = Literal::new(t.intern("bond"), vec![Term::Int(0); 4]).key();
        // Materialize probe terms before the capture (shared dictionary).
        let bounds: Vec<Vec<Option<Term>>> = patterns
            .iter()
            .map(|pattern| {
                pattern
                    .iter()
                    .enumerate()
                    .map(|(p, &s)| match s % 3 {
                        0 => None,
                        _ => Some(match p {
                            0 => Term::Sym(t.intern(&format!("m{}", s % 7))),
                            3 => Term::Int((s % 5) as i64),
                            _ if s % 5 == 4 => {
                                Term::app(t.intern("at"), vec![Term::Int((s % 26) as i64)])
                            }
                            _ => Term::Sym(t.intern(&format!("a{}", s % 26))),
                        }),
                    })
                    .collect()
            })
            .collect();
        let loaded =
            KnowledgeBase::from_snapshot(kb.to_snapshot(), SymbolTable::new()).unwrap();
        // Snapshots always ship sealed CSR runs: even when the source KB
        // still carried a pending tail, the restored store must not.
        let pid = loaded.pred_id(key).expect("bond restored");
        for pos in 0..4 {
            let (_, _, _, pending) = loaded.posting_parts(pid, pos).expect("indexed position");
            prop_assert_eq!(pending, 0, "restored posting at pos {} not sealed", pos);
        }
        for bound in &bounds {
            prop_assert_eq!(
                loaded.plan_candidates(key, bound),
                kb.plan_candidates(key, bound),
                "plan diverged under {:?}", bound
            );
        }
    }
}

/// The column-native contract: restoring a snapshot materializes **no** row
/// literals — the loaded KB holds only columns plus irregular side rows —
/// while still proving, planning, and (lazily) rebuilding rows identically.
/// Late facts asserted *after* a restore keep the store consistent too.
#[test]
fn restore_materializes_no_rows() {
    let (t, kb) = build_kb(
        &[(1, 2, 3, 1), (1, 9, 4, 2), (2, 2, 9, 0), (5, 14, 19, 3)],
        &[(1, 2, 0), (2, 9, 1)],
        &[3, 12, 17],
        true,
    );
    // The assert-built KB keeps rows only as the test-only oracle view
    // (`row-oracle` is on for every cargo test run).
    assert_eq!(kb.resident_rows(), kb.num_facts());

    let restored =
        KnowledgeBase::from_snapshot(kb.to_snapshot(), SymbolTable::new()).expect("snapshot loads");
    assert_eq!(restored.num_facts(), kb.num_facts());
    assert_eq!(
        restored.resident_rows(),
        0,
        "snapshot restore must not materialize row literals"
    );
    // The lazily rebuilt rows equal the originals, relation by relation.
    for key in kb.predicates() {
        assert_eq!(kb.facts_for(key), restored.facts_for(key));
    }
    // And a late assert after restore stays consistent (indexes, plans,
    // proofs) without resurrecting a row store.
    let mut grown = restored.clone();
    let bond = t.intern("bond");
    grown.assert_fact(Literal::new(
        bond,
        vec![
            Term::Sym(t.intern("m1")),
            Term::Sym(t.intern("a2")),
            Term::Sym(t.intern("a7")),
            Term::Int(1),
        ],
    ));
    assert_eq!(
        grown.resident_rows(),
        0,
        "late asserts must not skew the (absent) row store"
    );
    let key = Literal::new(bond, vec![Term::Int(0); 4]).key();
    assert_eq!(grown.facts_for(key).len(), kb.facts_for(key).len() + 1);
    let goal = Literal::new(
        bond,
        vec![
            Term::Var(0),
            Term::Sym(t.intern("a2")),
            Term::Var(1),
            Term::Var(2),
        ],
    );
    let limits = ProofLimits::default();
    let a = Prover::new(&grown, limits).solutions(&goal, 16);
    let b = reference::Prover::new(&grown, limits).prove_ground(&goal);
    assert!(b.0, "reference proves the grown goal");
    // Seeds give bond(m1,a2,a3,_) and bond(m2,a2,a9,_); the late assert
    // adds bond(m1,a2,a7,_): three bonds out of a2 in total.
    assert_eq!(
        a.0.len(),
        3,
        "all bonds from a2 are found, late fact included"
    );
}
