//! Probe: row-oracle must be on for test builds (self-dev-dependency).
use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;

#[test]
fn row_oracle_is_on_in_tests() {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    kb.assert_fact(Literal::new(t.intern("p"), vec![Term::Int(1)]));
    assert_eq!(
        kb.resident_rows(),
        1,
        "row-oracle feature must be enabled for cargo test"
    );
}
