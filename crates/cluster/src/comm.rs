//! The communication endpoint: the paper's §2.2 abstraction.
//!
//! Exactly three operations, with the paper's semantics:
//!
//! * [`Endpoint::send`] — non-blocking point-to-point send;
//! * [`Endpoint::broadcast`] — non-blocking send to every other rank;
//! * [`Endpoint::recv_from`] — *blocking* receive from a named source rank
//!   (MPI `MPI_Recv` with an explicit source), buffering messages from
//!   other sources until asked for.
//!
//! Every send is timestamped with its virtual arrival time at the
//! destination (`sender_clock + latency + bytes/bandwidth`); every receive
//! Lamport-merges the arrival into the receiver's clock. Every payload's
//! exact encoded size is recorded in the shared [`TrafficStats`], and a
//! send the transport could not deliver is counted there as a *dropped*
//! send (never silently discarded).
//!
//! The endpoint is generic over the [`Transport`] that actually moves the
//! bytes: the in-process [`MeshTransport`] (the default — crossbeam
//! channels between threads) or the socket-backed
//! [`crate::net::TcpTransport`] (real processes, length-prefixed frames).
//! Everything in this module — clocks, statistics, source buffering,
//! poison propagation — is identical on both, which is what makes a
//! multi-process run bit-for-bit reproducible against the simulation.

use crate::codec::{from_bytes, to_bytes, DecodeError, Wire};
use crate::stats::TrafficStats;
use crate::transport::{MeshTransport, Transport, TransportEvent};
use crate::vtime::{CostModel, VirtualClock};
use bytes::Bytes;
use p2mdie_obs::{event, span, Span, Tracer};
use std::collections::VecDeque;

/// A timestamped message in flight.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender rank.
    pub from: usize,
    /// Virtual time at which the message reaches the destination.
    pub arrival: f64,
    /// True for the internal panic-propagation marker.
    pub poison: bool,
    /// Encoded payload.
    pub payload: Bytes,
}

/// A rank poisoned the cluster by panicking; receivers panic in turn so the
/// whole run unwinds instead of deadlocking.
#[derive(Debug)]
pub struct Poisoned {
    /// The rank whose panic started the unwind.
    pub origin: usize,
}

/// How a link to a peer died.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// The peer's link closed: it exited (cleanly or not) without `Stop`
    /// or poison, or its stream broke.
    Closed,
    /// The peer delivered bytes that did not parse as a frame; the link is
    /// treated as dead from that point on.
    Malformed(&'static str),
}

/// A blocking receive failed: the awaited peer's link is dead (closed, or
/// poisoned by a malformed frame). Rank-tagged so the failure is
/// diagnosable instead of a bare panic backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvError {
    /// The rank whose receive failed.
    pub rank: usize,
    /// The source rank it was waiting on.
    pub from: usize,
    /// What killed the link.
    pub fault: LinkFault,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fault {
            LinkFault::Closed => write!(
                f,
                "rank {}: channel closed while receiving from rank {} (peer exited early?)",
                self.rank, self.from
            ),
            LinkFault::Malformed(ctx) => write!(
                f,
                "rank {}: malformed frame from rank {} ({ctx})",
                self.rank, self.from
            ),
        }
    }
}

impl std::error::Error for RecvError {}

/// Why a [`Endpoint::recv_msg`] call failed: the link died under the
/// receive, or the frame arrived but would not decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The link to the peer died mid-receive.
    Closed(RecvError),
    /// The payload was truncated or malformed.
    Decode(DecodeError),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Closed(e) => e.fmt(f),
            CommError::Decode(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CommError {}

impl From<RecvError> for CommError {
    fn from(e: RecvError) -> Self {
        CommError::Closed(e)
    }
}

impl From<DecodeError> for CommError {
    fn from(e: DecodeError) -> Self {
        CommError::Decode(e)
    }
}

/// The structured panic payload protocol layers throw when a receive they
/// cannot recover from fails (see `Msg::recv` in the core crate). Carrying
/// the failure as a value instead of a formatted string lets the runtime
/// map it to a rank-tagged `ClusterError` after catching the unwind.
#[derive(Clone, Debug)]
pub struct CommFailure {
    /// The rank whose receive failed.
    pub rank: usize,
    /// The peer it was receiving from.
    pub from: usize,
    /// What the protocol expected to receive.
    pub expected: String,
    /// The underlying communication error.
    pub error: CommError,
}

impl std::fmt::Display for CommFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: failed receiving {} from rank {}: {}",
            self.rank, self.expected, self.from, self.error
        )
    }
}

impl std::error::Error for CommFailure {}

/// One rank's communication endpoint, generic over the [`Transport`] that
/// moves the bytes (defaults to the in-process mesh).
pub struct Endpoint<T: Transport = MeshTransport> {
    rank: usize,
    size: usize,
    transport: T,
    pending: Vec<VecDeque<Envelope>>,
    /// Per-peer link obituaries (only transports with per-peer links — TCP
    /// — ever populate these).
    faults: Vec<Option<LinkFault>>,
    /// The whole fabric is gone; nothing will ever arrive again.
    fabric_closed: bool,
    /// Ranks this endpoint has *acknowledged* as dead (recovery mode):
    /// their link faults are expected and no longer abort receives.
    down: Vec<bool>,
    /// While set, sends are additionally tallied in the recovery totals of
    /// [`TrafficStats`] (so reports can separate recovery traffic from the
    /// algorithm's own).
    recovery_phase: bool,
    /// While set, sends are additionally tallied in the constraint totals
    /// of [`TrafficStats`] (the constraint-driven strategy's pruning
    /// exchange, kept separate from the paper-shaped traffic).
    constraint_phase: bool,
    clock: VirtualClock,
    model: CostModel,
    stats: TrafficStats,
    compute_steps: u64,
    poisoned: bool,
    /// Flight-recorder handle for this rank. When no trace session is
    /// active (the default), every use is one relaxed atomic load.
    tracer: Tracer,
    /// The open `recovery` span while [`Endpoint::set_recovery_phase`] is
    /// on, so recovery traffic shows as a phase in the trace timeline.
    recovery_span: Option<Span>,
    /// The open `constraint` span while [`Endpoint::set_constraint_phase`]
    /// is on.
    constraint_span: Option<Span>,
}

impl<T: Transport> Endpoint<T> {
    /// Assembles an endpoint from its parts. `rank` must be a valid index
    /// for `size` ranks, and `stats` must be sized for the same cluster.
    ///
    /// This is how the runtime builds in-process endpoints and how a
    /// worker *process* builds its endpoint around a freshly-connected
    /// [`crate::net::TcpTransport`].
    pub fn from_parts(
        rank: usize,
        size: usize,
        transport: T,
        model: CostModel,
        stats: TrafficStats,
    ) -> Self {
        assert!(rank < size, "rank {rank} out of range for size {size}");
        assert_eq!(stats.size(), size, "stats sized for a different cluster");
        Endpoint {
            rank,
            size,
            transport,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            faults: vec![None; size],
            fabric_closed: false,
            down: vec![false; size],
            recovery_phase: false,
            constraint_phase: false,
            clock: VirtualClock::new(),
            model,
            stats,
            compute_steps: 0,
            poisoned: false,
            tracer: Tracer::for_rank(rank),
            recovery_span: None,
            constraint_span: None,
        }
    }

    /// This rank's flight-recorder handle (copyable; free when tracing is
    /// off).
    #[inline]
    pub fn tracer(&self) -> Tracer {
        self.tracer
    }

    /// This rank's id (0 = master).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks (workers + master).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of worker ranks (`size - 1`).
    #[inline]
    pub fn workers(&self) -> usize {
        self.size - 1
    }

    /// Current virtual time at this rank.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The cost model in force.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Shared traffic statistics.
    #[inline]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Direct access to the transport (used by the process runtime to
    /// exchange shutdown reports outside the metered protocol).
    #[inline]
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Total metered compute steps charged so far.
    #[inline]
    pub fn compute_steps(&self) -> u64 {
        self.compute_steps
    }

    /// Charges `steps` inference steps of compute to this rank's clock.
    pub fn advance_steps(&mut self, steps: u64) {
        self.compute_steps += steps;
        self.clock.advance(self.model.compute_time(steps));
    }

    /// Advances the clock by raw seconds (setup costs etc.).
    pub fn advance_secs(&mut self, secs: f64) {
        self.clock.advance(secs);
    }

    /// Non-blocking send of an encodable message to rank `to`.
    pub fn send<T2: Wire>(&mut self, to: usize, msg: &T2) {
        self.send_bytes(to, to_bytes(msg));
    }

    /// Non-blocking send of pre-encoded bytes to rank `to`. A send the
    /// transport cannot deliver (receiver gone, stream broken) is counted
    /// as a dropped send in the traffic statistics — the run outcome
    /// exposes the total, so lost messages are diagnosable.
    pub fn send_bytes(&mut self, to: usize, payload: Bytes) {
        assert!(to < self.size, "destination rank {to} out of range");
        assert_ne!(to, self.rank, "no loopback sends in this protocol");
        self.stats.record(self.rank, to, payload.len());
        if self.recovery_phase {
            self.stats.record_recovery(payload.len());
        }
        if self.constraint_phase {
            self.stats.record_constraint(payload.len());
        }
        self.clock.advance(self.model.send_overhead);
        let arrival = self.clock.now() + self.model.transfer_time(payload.len());
        let bytes = payload.len();
        let env = Envelope {
            from: self.rank,
            arrival,
            poison: false,
            payload,
        };
        let delivered = self.transport.send(to, env);
        if !delivered {
            self.stats.record_dropped(self.rank, to);
        }
        event!(
            self.tracer,
            "send",
            self.clock.now(),
            to = to,
            bytes = bytes,
            arrival = arrival,
            dropped = !delivered,
        );
    }

    /// Non-blocking broadcast to every other rank (implemented, like LAM on
    /// switched Ethernet, as point-to-point sends — each counted in the
    /// traffic statistics).
    pub fn broadcast<T2: Wire>(&mut self, msg: &T2) {
        let payload = to_bytes(msg);
        for to in 0..self.size {
            if to != self.rank {
                self.send_bytes(to, payload.clone());
            }
        }
    }

    /// Blocking receive of the next message *from a specific rank*,
    /// buffering messages from other sources. Merges the arrival time into
    /// this rank's clock and charges the receive overhead.
    ///
    /// A peer whose link dies (process exit, stream error, or a malformed
    /// frame on a socket transport) surfaces as a rank-tagged
    /// [`RecvError`] — after any already-buffered messages from it have
    /// been delivered — instead of hanging or tearing the rank down with a
    /// panic mid-receive.
    ///
    /// # Panics
    /// Panics with [`Poisoned`] when a peer rank panicked (the deliberate
    /// whole-run unwind).
    pub fn recv_from(&mut self, from: usize) -> Result<Bytes, RecvError> {
        assert!(from < self.size, "source rank {from} out of range");
        loop {
            if let Some(env) = self.pending[from].pop_front() {
                return Ok(self.deliver(env));
            }
            if let Some(fault) = self.faults[from] {
                return Err(RecvError {
                    rank: self.rank,
                    from,
                    fault,
                });
            }
            if self.fabric_closed {
                return Err(RecvError {
                    rank: self.rank,
                    from,
                    fault: LinkFault::Closed,
                });
            }
            if let Some(env) = self.pump() {
                if env.from == from {
                    return Ok(self.deliver(env));
                }
                self.pending[env.from].push_back(env);
            }
        }
    }

    /// Blocking receive from a specific rank, decoded. Dead-link and
    /// malformed-frame failures both arrive as a [`CommError`] value, so
    /// protocol layers can diagnose (or recover) instead of unwinding.
    pub fn recv_msg<T2: Wire>(&mut self, from: usize) -> Result<T2, CommError> {
        Ok(from_bytes(self.recv_from(from)?)?)
    }

    /// Blocks for one transport event. Returns the envelope when a message
    /// arrived; records the fault and returns `None` otherwise.
    ///
    /// # Panics
    /// Panics with [`Poisoned`] on a poison marker.
    fn pump(&mut self) -> Option<Envelope> {
        match self.transport.recv() {
            TransportEvent::Envelope(env) => {
                if env.poison {
                    self.enter_poisoned(env.from);
                }
                Some(env)
            }
            TransportEvent::Closed { peer: Some(p) } => {
                self.faults[p].get_or_insert(LinkFault::Closed);
                None
            }
            TransportEvent::Closed { peer: None } => {
                self.fabric_closed = true;
                None
            }
            TransportEvent::Malformed { peer, context } => {
                self.faults[peer].get_or_insert(LinkFault::Malformed(context));
                None
            }
        }
    }

    /// Blocking receive from `from` that *watches every other link*: the
    /// moment any rank not already [marked down](Endpoint::mark_down) has
    /// a dead link, the wait aborts with `Err(that_rank)` — the recovering
    /// master's membership-event primitive. A fault on an acknowledged-dead
    /// rank is expected and ignored.
    ///
    /// # Panics
    /// Panics with [`Poisoned`] when a peer rank panicked.
    pub fn recv_from_watching(&mut self, from: usize) -> Result<Bytes, usize> {
        assert!(from < self.size, "source rank {from} out of range");
        loop {
            if let Some(env) = self.pending[from].pop_front() {
                return Ok(self.deliver(env));
            }
            if let Some(dead) = self.first_unacknowledged_fault() {
                return Err(dead);
            }
            if self.fabric_closed {
                return Err(from);
            }
            if let Some(env) = self.pump() {
                if env.from == from {
                    return Ok(self.deliver(env));
                }
                self.pending[env.from].push_back(env);
            }
        }
    }

    /// Blocking receive from whichever of two ranks delivers first
    /// (already-buffered messages from `a` win ties). Used by recovering
    /// workers that must hear either the ring predecessor *or* a master
    /// abort. A dead link on either source surfaces as a [`RecvError`]
    /// naming it.
    ///
    /// # Panics
    /// Panics with [`Poisoned`] when a peer rank panicked.
    pub fn recv_from_either(&mut self, a: usize, b: usize) -> Result<(usize, Bytes), RecvError> {
        assert!(a < self.size && b < self.size, "source rank out of range");
        loop {
            for s in [a, b] {
                if let Some(env) = self.pending[s].pop_front() {
                    return Ok((s, self.deliver(env)));
                }
            }
            for s in [a, b] {
                if let Some(fault) = self.faults[s] {
                    return Err(RecvError {
                        rank: self.rank,
                        from: s,
                        fault,
                    });
                }
            }
            if self.fabric_closed {
                return Err(RecvError {
                    rank: self.rank,
                    from: a,
                    fault: LinkFault::Closed,
                });
            }
            if let Some(env) = self.pump() {
                if env.from == a || env.from == b {
                    let from = env.from;
                    return Ok((from, self.deliver(env)));
                }
                self.pending[env.from].push_back(env);
            }
        }
    }

    /// Acknowledges `rank` as dead: its link fault (present or future) no
    /// longer aborts [`Endpoint::recv_from_watching`].
    pub fn mark_down(&mut self, rank: usize) {
        self.down[rank] = true;
    }

    /// The ranks acknowledged dead so far, ascending.
    pub fn downed(&self) -> Vec<usize> {
        (0..self.size).filter(|&r| self.down[r]).collect()
    }

    /// Discards everything buffered from `rank` (stale in-flight messages
    /// from a dead peer must not leak into the resumed protocol).
    pub fn clear_pending(&mut self, rank: usize) {
        self.pending[rank].clear();
    }

    /// Toggles the recovery-traffic phase: while on, sends are additionally
    /// tallied in the recovery totals of [`TrafficStats`], and the phase
    /// shows as one `recovery` span on this rank's trace timeline.
    pub fn set_recovery_phase(&mut self, on: bool) {
        if on && !self.recovery_phase {
            self.recovery_span = Some(span!(self.tracer, "recovery", self.clock.now()));
        } else if !on {
            if let Some(s) = self.recovery_span.take() {
                s.end(self.clock.now());
            }
        }
        self.recovery_phase = on;
    }

    /// Toggles the constraint-traffic phase: while on, sends are
    /// additionally tallied in the constraint totals of [`TrafficStats`],
    /// and the phase shows as one `constraint` span on this rank's trace
    /// timeline. Used by the constraint-driven search strategy around its
    /// worker↔worker pruning exchange.
    pub fn set_constraint_phase(&mut self, on: bool) {
        if on && !self.constraint_phase {
            self.constraint_span = Some(span!(self.tracer, "constraint", self.clock.now()));
        } else if !on {
            if let Some(s) = self.constraint_span.take() {
                s.end(self.clock.now());
            }
        }
        self.constraint_phase = on;
    }

    fn first_unacknowledged_fault(&self) -> Option<usize> {
        (0..self.size).find(|&r| self.faults[r].is_some() && !self.down[r])
    }

    fn deliver(&mut self, env: Envelope) -> Bytes {
        self.clock.merge(env.arrival);
        self.clock.advance(self.model.recv_overhead);
        event!(
            self.tracer,
            "recv",
            self.clock.now(),
            from = env.from,
            bytes = env.payload.len(),
        );
        env.payload
    }

    /// True once this endpoint observed a poison marker.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Sends the poison marker to every other rank (used by the runtime's
    /// panic handler) unless already poisoned by someone else.
    pub fn broadcast_poison(&mut self) {
        if self.poisoned {
            return;
        }
        self.poisoned = true;
        for to in 0..self.size {
            if to != self.rank {
                let _ = self.transport.send(
                    to,
                    Envelope {
                        from: self.rank,
                        arrival: self.clock.now(),
                        poison: true,
                        payload: Bytes::new(),
                    },
                );
            }
        }
    }

    fn enter_poisoned(&mut self, origin: usize) -> ! {
        self.poisoned = true;
        std::panic::panic_any(Poisoned { origin });
    }
}

impl<T: Transport> std::fmt::Debug for Endpoint<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Endpoint(rank {}/{}, t={:.6}s)",
            self.rank,
            self.size,
            self.now()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::to_bytes;
    use crate::transport::{MeshItem, MeshTransport};
    use crossbeam::channel::unbounded;

    fn two_rank_endpoint() -> (Endpoint, crossbeam::channel::Sender<MeshItem>) {
        let stats = TrafficStats::new(2);
        let (tx0, _rx0) = unbounded::<MeshItem>();
        let (tx1, rx1) = unbounded::<MeshItem>();
        let transport = MeshTransport::from_channels(vec![tx0.clone(), tx0], rx1);
        let ep = Endpoint::from_parts(1, 2, transport, CostModel::free(), stats);
        (ep, tx1)
    }

    /// A peer that exits early closes the mesh channel; the receive must
    /// surface a rank-tagged error (and keep delivering already-buffered
    /// envelopes first), not panic.
    #[test]
    fn closed_channel_surfaces_as_recv_error() {
        let (mut ep, tx1) = two_rank_endpoint();
        tx1.send(MeshItem::Env(Envelope {
            from: 0,
            arrival: 0.0,
            poison: false,
            payload: to_bytes(&7u32),
        }))
        .unwrap();
        drop(tx1); // the peer "exits"

        let first: u32 = ep.recv_msg(0).unwrap();
        assert_eq!(first, 7, "in-flight messages still deliver");
        assert_eq!(
            ep.recv_from(0).unwrap_err(),
            RecvError {
                rank: 1,
                from: 0,
                fault: LinkFault::Closed
            }
        );
        match ep.recv_msg::<u32>(0) {
            Err(CommError::Closed(e)) => {
                assert_eq!((e.rank, e.from), (1, 0));
                assert!(format!("{e}").contains("rank 1"), "error names the rank");
            }
            other => panic!("expected a closed-channel error, got {other:?}"),
        }
    }

    /// A send the transport cannot deliver must land in the dropped-send
    /// counters, not vanish.
    #[test]
    fn undeliverable_send_is_counted_as_dropped() {
        let stats = TrafficStats::new(2);
        let (tx0, rx0) = unbounded::<MeshItem>();
        let (tx1, rx1) = unbounded::<MeshItem>();
        drop(rx0); // rank 0's receiver is gone
        let transport = MeshTransport::from_channels(vec![tx0, tx1], rx1);
        let mut ep = Endpoint::from_parts(1, 2, transport, CostModel::free(), stats.clone());
        ep.send(0, &42u64);
        assert_eq!(stats.total_dropped(), 1);
        assert_eq!(stats.dropped_between(1, 0), 1);
        // The attempted bytes are still accounted (they "would have
        // crossed the network"), which is what makes the drop visible as a
        // discrepancy rather than a silent hole.
        assert_eq!(stats.total_bytes(), 8);
        drop(ep);
    }

    /// The recovering master's primitive: a watching receive must abort
    /// the moment any unacknowledged rank dies, resume ignoring that rank
    /// once it is marked down, and still deliver live traffic.
    #[test]
    fn watching_receive_turns_death_into_an_event() {
        let mut mesh = MeshTransport::mesh(3);
        let t0 = mesh.remove(0);
        let handle = t0.down_handle(0);
        let mut ep0 = Endpoint::from_parts(0, 3, t0, CostModel::free(), TrafficStats::new(3));

        handle.notify(2); // rank 2 "dies"
        assert_eq!(ep0.recv_from_watching(1).unwrap_err(), 2);

        ep0.mark_down(2);
        assert_eq!(ep0.downed(), vec![2]);
        let mut t1 = mesh.remove(0); // rank 1's transport
        assert!(t1.send(
            0,
            Envelope {
                from: 1,
                arrival: 0.0,
                poison: false,
                payload: to_bytes(&9u32),
            }
        ));
        let bytes = ep0.recv_from_watching(1).unwrap();
        assert_eq!(from_bytes::<u32>(bytes).unwrap(), 9);
    }

    #[test]
    fn recv_from_either_takes_whichever_source_delivers() {
        let mut mesh = MeshTransport::mesh(3);
        let t0 = mesh.remove(0);
        let mut ep0 = Endpoint::from_parts(0, 3, t0, CostModel::free(), TrafficStats::new(3));
        let mut t2 = mesh.remove(1); // rank 2's transport
        assert!(t2.send(
            0,
            Envelope {
                from: 2,
                arrival: 0.0,
                poison: false,
                payload: to_bytes(&5u32),
            }
        ));
        let (from, bytes) = ep0.recv_from_either(1, 2).unwrap();
        assert_eq!(from, 2);
        assert_eq!(from_bytes::<u32>(bytes).unwrap(), 5);
    }

    #[test]
    fn comm_failure_displays_rank_tagged() {
        let f = CommFailure {
            rank: 0,
            from: 2,
            expected: "RulesFound".to_owned(),
            error: CommError::Closed(RecvError {
                rank: 0,
                from: 2,
                fault: LinkFault::Malformed("frame length"),
            }),
        };
        let s = format!("{f}");
        assert!(s.contains("rank 0"), "{s}");
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("RulesFound"), "{s}");
        assert!(s.contains("malformed"), "{s}");
    }
}
