//! The communication endpoint: the paper's §2.2 abstraction.
//!
//! Exactly three operations, with the paper's semantics:
//!
//! * [`Endpoint::send`] — non-blocking point-to-point send;
//! * [`Endpoint::broadcast`] — non-blocking send to every other rank;
//! * [`Endpoint::recv_from`] — *blocking* receive from a named source rank
//!   (MPI `MPI_Recv` with an explicit source), buffering messages from
//!   other sources until asked for.
//!
//! Every send is timestamped with its virtual arrival time at the
//! destination (`sender_clock + latency + bytes/bandwidth`); every receive
//! Lamport-merges the arrival into the receiver's clock. Every payload's
//! exact encoded size is recorded in the shared [`TrafficStats`].

use crate::codec::{from_bytes, to_bytes, DecodeError, Wire};
use crate::stats::TrafficStats;
use crate::vtime::{CostModel, VirtualClock};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;

/// A timestamped message in flight.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender rank.
    pub from: usize,
    /// Virtual time at which the message reaches the destination.
    pub arrival: f64,
    /// True for the internal panic-propagation marker.
    pub poison: bool,
    /// Encoded payload.
    pub payload: Bytes,
}

/// A rank poisoned the cluster by panicking; receivers panic in turn so the
/// whole run unwinds instead of deadlocking.
#[derive(Debug)]
pub struct Poisoned {
    /// The rank whose panic started the unwind.
    pub origin: usize,
}

/// A blocking receive found the mesh channel closed: every peer endpoint
/// was dropped (a rank exited early without `Stop`/poison). Rank-tagged so
/// the failure is diagnosable instead of a bare panic backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvError {
    /// The rank whose receive failed.
    pub rank: usize,
    /// The source rank it was waiting on.
    pub from: usize,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: channel closed while receiving from rank {} (peer exited early?)",
            self.rank, self.from
        )
    }
}

impl std::error::Error for RecvError {}

/// Why a [`Endpoint::recv_msg`] call failed: the channel closed under the
/// receive, or the frame arrived but would not decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The mesh channel disconnected mid-receive.
    Closed(RecvError),
    /// The payload was truncated or malformed.
    Decode(DecodeError),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Closed(e) => e.fmt(f),
            CommError::Decode(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CommError {}

impl From<RecvError> for CommError {
    fn from(e: RecvError) -> Self {
        CommError::Closed(e)
    }
}

impl From<DecodeError> for CommError {
    fn from(e: DecodeError) -> Self {
        CommError::Decode(e)
    }
}

/// One rank's communication endpoint.
pub struct Endpoint {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    pending: Vec<VecDeque<Envelope>>,
    clock: VirtualClock,
    model: CostModel,
    stats: TrafficStats,
    compute_steps: u64,
    poisoned: bool,
}

impl Endpoint {
    /// Assembles an endpoint (used by the runtime; not public API).
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
        model: CostModel,
        stats: TrafficStats,
    ) -> Self {
        Endpoint {
            rank,
            size,
            senders,
            rx,
            pending: (0..size).map(|_| VecDeque::new()).collect(),
            clock: VirtualClock::new(),
            model,
            stats,
            compute_steps: 0,
            poisoned: false,
        }
    }

    /// This rank's id (0 = master).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks (workers + master).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of worker ranks (`size - 1`).
    #[inline]
    pub fn workers(&self) -> usize {
        self.size - 1
    }

    /// Current virtual time at this rank.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The cost model in force.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Shared traffic statistics.
    #[inline]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Total metered compute steps charged so far.
    #[inline]
    pub fn compute_steps(&self) -> u64 {
        self.compute_steps
    }

    /// Charges `steps` inference steps of compute to this rank's clock.
    pub fn advance_steps(&mut self, steps: u64) {
        self.compute_steps += steps;
        self.clock.advance(self.model.compute_time(steps));
    }

    /// Advances the clock by raw seconds (setup costs etc.).
    pub fn advance_secs(&mut self, secs: f64) {
        self.clock.advance(secs);
    }

    /// Non-blocking send of an encodable message to rank `to`.
    pub fn send<T: Wire>(&mut self, to: usize, msg: &T) {
        self.send_bytes(to, to_bytes(msg));
    }

    /// Non-blocking send of pre-encoded bytes to rank `to`.
    pub fn send_bytes(&mut self, to: usize, payload: Bytes) {
        assert!(to < self.size, "destination rank {to} out of range");
        assert_ne!(to, self.rank, "no loopback sends in this protocol");
        self.stats.record(self.rank, to, payload.len());
        self.clock.advance(self.model.send_overhead);
        let arrival = self.clock.now() + self.model.transfer_time(payload.len());
        let env = Envelope {
            from: self.rank,
            arrival,
            poison: false,
            payload,
        };
        // Receiver gone ⇒ the run is already unwinding; drop silently.
        let _ = self.senders[to].send(env);
    }

    /// Non-blocking broadcast to every other rank (implemented, like LAM on
    /// switched Ethernet, as point-to-point sends — each counted in the
    /// traffic statistics).
    pub fn broadcast<T: Wire>(&mut self, msg: &T) {
        let payload = to_bytes(msg);
        for to in 0..self.size {
            if to != self.rank {
                self.send_bytes(to, payload.clone());
            }
        }
    }

    /// Blocking receive of the next message *from a specific rank*,
    /// buffering messages from other sources. Merges the arrival time into
    /// this rank's clock and charges the receive overhead.
    ///
    /// A peer that exits early (dropping its endpoint without `Stop` or
    /// poison) eventually closes the mesh channel; that surfaces as a
    /// rank-tagged [`RecvError`] instead of tearing the rank down with a
    /// panic mid-receive.
    ///
    /// # Panics
    /// Panics with [`Poisoned`] when a peer rank panicked (the deliberate
    /// whole-run unwind).
    pub fn recv_from(&mut self, from: usize) -> Result<Bytes, RecvError> {
        assert!(from < self.size, "source rank {from} out of range");
        loop {
            if let Some(env) = self.pending[from].pop_front() {
                return Ok(self.deliver(env));
            }
            let env = self.rx.recv().map_err(|_| RecvError {
                rank: self.rank,
                from,
            })?;
            if env.poison {
                self.enter_poisoned(env.from);
            }
            if env.from == from {
                return Ok(self.deliver(env));
            }
            self.pending[env.from].push_back(env);
        }
    }

    /// Blocking receive from a specific rank, decoded. Closed-channel and
    /// malformed-frame failures both arrive as a [`CommError`] value, so
    /// protocol layers can diagnose (or recover) instead of unwinding.
    pub fn recv_msg<T: Wire>(&mut self, from: usize) -> Result<T, CommError> {
        Ok(from_bytes(self.recv_from(from)?)?)
    }

    fn deliver(&mut self, env: Envelope) -> Bytes {
        self.clock.merge(env.arrival);
        self.clock.advance(self.model.recv_overhead);
        env.payload
    }

    /// True once this endpoint observed a poison marker.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Sends the poison marker to every other rank (used by the runtime's
    /// panic handler) unless already poisoned by someone else.
    pub(crate) fn broadcast_poison(&mut self) {
        if self.poisoned {
            return;
        }
        self.poisoned = true;
        for to in 0..self.size {
            if to != self.rank {
                let _ = self.senders[to].send(Envelope {
                    from: self.rank,
                    arrival: self.clock.now(),
                    poison: true,
                    payload: Bytes::new(),
                });
            }
        }
    }

    fn enter_poisoned(&mut self, origin: usize) -> ! {
        self.poisoned = true;
        std::panic::panic_any(Poisoned { origin });
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Endpoint(rank {}/{}, t={:.6}s)",
            self.rank,
            self.size,
            self.now()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::to_bytes;
    use crossbeam::channel::unbounded;

    /// A peer that exits early closes the mesh channel; the receive must
    /// surface a rank-tagged error (and keep delivering already-buffered
    /// envelopes first), not panic.
    #[test]
    fn closed_channel_surfaces_as_recv_error() {
        let stats = TrafficStats::new(2);
        let (tx0, _rx0) = unbounded::<Envelope>();
        let (tx1, rx1) = unbounded::<Envelope>();
        let mut ep = Endpoint::new(
            1,
            2,
            vec![tx0.clone(), tx0.clone()],
            rx1,
            CostModel::free(),
            stats,
        );
        tx1.send(Envelope {
            from: 0,
            arrival: 0.0,
            poison: false,
            payload: to_bytes(&7u32),
        })
        .unwrap();
        drop(tx1); // the peer "exits"

        let first: u32 = ep.recv_msg(0).unwrap();
        assert_eq!(first, 7, "in-flight messages still deliver");
        assert_eq!(ep.recv_from(0).unwrap_err(), RecvError { rank: 1, from: 0 });
        match ep.recv_msg::<u32>(0) {
            Err(CommError::Closed(e)) => {
                assert_eq!((e.rank, e.from), (1, 0));
                assert!(format!("{e}").contains("rank 1"), "error names the rank");
            }
            other => panic!("expected a closed-channel error, got {other:?}"),
        }
    }
}
