//! Byte-accurate wire codec.
//!
//! Every message between ranks is serialized through [`Wire`]; the byte
//! counts feed the per-link traffic statistics that regenerate the paper's
//! Table 4 (communication in MBytes) and the bandwidth term of the
//! virtual-time model. Encoding is little-endian and self-describing only
//! where necessary (length prefixes); no compression.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Decoding failure (truncated or malformed payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was being decoded.
    pub context: &'static str,
}

impl DecodeError {
    /// Creates an error tagged with the decoding context.
    pub fn new(context: &'static str) -> Self {
        DecodeError { context }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: truncated or malformed {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Types that can be serialized to and from the wire.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value, consuming bytes from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError>;
}

/// Encodes a value into a fresh byte buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decodes a value from a byte buffer, requiring full consumption.
pub fn from_bytes<T: Wire>(mut bytes: Bytes) -> Result<T, DecodeError> {
    let v = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(DecodeError::new("trailing bytes"));
    }
    Ok(v)
}

macro_rules! need {
    ($buf:expr, $n:expr, $ctx:literal) => {
        if $buf.remaining() < $n {
            return Err(DecodeError::new($ctx));
        }
    };
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 1, "u8");
        Ok(buf.get_u8())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 4, "u32");
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "u64");
        Ok(buf.get_u64_le())
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "i64");
        Ok(buf.get_i64_le())
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "f64");
        Ok(buf.get_f64_le())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 1, "bool");
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::new("bool")),
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "usize");
        Ok(buf.get_u64_le() as usize)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let n = u32::decode(buf)? as usize;
        need!(buf, n, "string body");
        let raw = buf.copy_to_bytes(n);
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::new("string utf8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let n = u32::decode(buf)? as usize;
        // Sanity bound: a length prefix can never exceed remaining bytes
        // (each element takes at least one byte).
        if n > buf.remaining() {
            return Err(DecodeError::new("vec length"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 1, "option tag");
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(DecodeError::new("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v);
        let back: T = from_bytes(b).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(1.5f64);
        roundtrip(true);
        roundtrip(12345usize);
        roundtrip("héllo".to_owned());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, "x".to_owned()));
        roundtrip((1u32, 2u64, vec![false, true]));
    }

    #[test]
    fn truncated_input_errors() {
        let b = to_bytes(&42u64);
        let mut short = b.slice(..4);
        assert!(u64::decode(&mut short).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        42u32.encode(&mut buf);
        0u8.encode(&mut buf);
        assert_eq!(
            from_bytes::<u32>(buf.freeze()).unwrap_err().context,
            "trailing bytes"
        );
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Claim 2^31 elements with a 1-byte body.
        let mut buf = BytesMut::new();
        (1u32 << 31).encode(&mut buf);
        buf.put_u8(0);
        assert!(from_bytes::<Vec<u32>>(buf.freeze()).is_err());
    }

    #[test]
    fn bad_bool_and_option_tags() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        assert!(from_bytes::<bool>(buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        assert!(from_bytes::<Option<u8>>(buf.freeze()).is_err());
    }

    #[test]
    fn byte_counts_are_exact() {
        assert_eq!(to_bytes(&7u32).len(), 4);
        assert_eq!(to_bytes(&vec![1u32, 2]).len(), 4 + 8);
        assert_eq!(to_bytes(&"ab".to_owned()).len(), 4 + 2);
    }
}
