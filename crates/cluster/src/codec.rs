//! Byte-accurate wire codec.
//!
//! Every message between ranks is serialized through [`Wire`]; the byte
//! counts feed the per-link traffic statistics that regenerate the paper's
//! Table 4 (communication in MBytes) and the bandwidth term of the
//! virtual-time model. Encoding is little-endian and self-describing only
//! where necessary (length prefixes); no compression.
//!
//! Besides the primitives and containers, this module implements [`Wire`]
//! for the logic crate's terms, literals, clauses, and the serialized
//! compiled knowledge base ([`KbSnapshot`]) — the payload that lets a
//! master ship its fully-indexed background theory to workers in one
//! message (`Msg::KbSnapshot` in the core protocol) instead of every rank
//! rebuilding arena, posting lists, and compiled rules from scratch.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use p2mdie_logic::arena::TermId;
use p2mdie_logic::builtins::Builtin;
use p2mdie_logic::clause::{
    Clause, CompiledClause, CompiledLiteral, LitKind, Literal, PredId, PredKey,
};
use p2mdie_logic::snapshot::{KbSnapshot, PostingSnapshot, PredSnapshot};
use p2mdie_logic::symbol::SymbolId;
use p2mdie_logic::term::{Term, F64};
use std::fmt;

/// Decoding failure (truncated or malformed payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was being decoded.
    pub context: &'static str,
}

impl DecodeError {
    /// Creates an error tagged with the decoding context.
    pub fn new(context: &'static str) -> Self {
        DecodeError { context }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: truncated or malformed {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Types that can be serialized to and from the wire.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value, consuming bytes from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError>;
}

/// Encodes a value into a fresh byte buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decodes a value from a byte buffer, requiring full consumption.
pub fn from_bytes<T: Wire>(mut bytes: Bytes) -> Result<T, DecodeError> {
    let v = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(DecodeError::new("trailing bytes"));
    }
    Ok(v)
}

macro_rules! need {
    ($buf:expr, $n:expr, $ctx:literal) => {
        if $buf.remaining() < $n {
            return Err(DecodeError::new($ctx));
        }
    };
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 1, "u8");
        Ok(buf.get_u8())
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 2, "u16");
        Ok(buf.get_u16_le())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 4, "u32");
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "u64");
        Ok(buf.get_u64_le())
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "i64");
        Ok(buf.get_i64_le())
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "f64");
        Ok(buf.get_f64_le())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 1, "bool");
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::new("bool")),
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 8, "usize");
        Ok(buf.get_u64_le() as usize)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let n = u32::decode(buf)? as usize;
        need!(buf, n, "string body");
        let raw = buf.copy_to_bytes(n);
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::new("string utf8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let n = u32::decode(buf)? as usize;
        // Sanity bound: a length prefix can never exceed remaining bytes
        // (each element takes at least one byte).
        if n > buf.remaining() {
            return Err(DecodeError::new("vec length"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        need!(buf, 1, "option tag");
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(DecodeError::new("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

// ---------------------------------------------------------------------------
// Logic-crate payloads: terms, literals, clauses, and the compiled-KB
// snapshot. Byte layouts for terms/literals/clauses are the ones the core
// protocol has used since PR 0, so traffic statistics are unchanged.
// ---------------------------------------------------------------------------

impl Wire for Term {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Term::Var(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            Term::Sym(s) => {
                buf.put_u8(1);
                s.0.encode(buf);
            }
            Term::Int(i) => {
                buf.put_u8(2);
                i.encode(buf);
            }
            Term::Float(f) => {
                buf.put_u8(3);
                f.0.encode(buf);
            }
            Term::App(f, args) => {
                buf.put_u8(4);
                f.0.encode(buf);
                (args.len() as u32).encode(buf);
                for a in args.iter() {
                    a.encode(buf);
                }
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            0 => Term::Var(u32::decode(buf)?),
            1 => Term::Sym(SymbolId(u32::decode(buf)?)),
            2 => Term::Int(i64::decode(buf)?),
            3 => Term::Float(F64(f64::decode(buf)?)),
            4 => {
                let f = SymbolId(u32::decode(buf)?);
                let n = u32::decode(buf)? as usize;
                if n > buf.len() {
                    return Err(DecodeError::new("term arity"));
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(Term::decode(buf)?);
                }
                Term::app(f, args)
            }
            _ => return Err(DecodeError::new("term tag")),
        })
    }
}

impl Wire for Literal {
    fn encode(&self, buf: &mut BytesMut) {
        self.pred.0.encode(buf);
        (self.args.len() as u32).encode(buf);
        for a in self.args.iter() {
            a.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let pred = SymbolId(u32::decode(buf)?);
        let n = u32::decode(buf)? as usize;
        if n > buf.len() {
            return Err(DecodeError::new("literal arity"));
        }
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            args.push(Term::decode(buf)?);
        }
        Ok(Literal::new(pred, args))
    }
}

impl Wire for Clause {
    fn encode(&self, buf: &mut BytesMut) {
        self.head.encode(buf);
        (self.body.len() as u32).encode(buf);
        for l in &self.body {
            l.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let head = Literal::decode(buf)?;
        let n = u32::decode(buf)? as usize;
        if n > buf.len() {
            return Err(DecodeError::new("clause body length"));
        }
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(Literal::decode(buf)?);
        }
        Ok(Clause::new(head, body))
    }
}

impl Wire for TermId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(TermId(u32::decode(buf)?))
    }
}

impl Wire for PredKey {
    fn encode(&self, buf: &mut BytesMut) {
        self.pred.0.encode(buf);
        self.arity.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(PredKey {
            pred: SymbolId(u32::decode(buf)?),
            arity: u32::decode(buf)?,
        })
    }
}

impl Wire for LitKind {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LitKind::Unknown => buf.put_u8(0),
            LitKind::Pred(id) => {
                buf.put_u8(1);
                id.0.encode(buf);
            }
            LitKind::Builtin(b) => {
                buf.put_u8(2);
                buf.put_u8(b.code());
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(match u8::decode(buf)? {
            0 => LitKind::Unknown,
            1 => LitKind::Pred(PredId(u32::decode(buf)?)),
            2 => LitKind::Builtin(
                Builtin::from_code(u8::decode(buf)?)
                    .ok_or_else(|| DecodeError::new("builtin code"))?,
            ),
            _ => return Err(DecodeError::new("litkind tag")),
        })
    }
}

impl Wire for CompiledLiteral {
    fn encode(&self, buf: &mut BytesMut) {
        self.lit.encode(buf);
        self.kind.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(CompiledLiteral {
            lit: Literal::decode(buf)?,
            kind: LitKind::decode(buf)?,
        })
    }
}

impl Wire for CompiledClause {
    fn encode(&self, buf: &mut BytesMut) {
        self.head.encode(buf);
        (self.body.len() as u32).encode(buf);
        for l in self.body.iter() {
            l.encode(buf);
        }
        self.var_span.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let head = Literal::decode(buf)?;
        let n = u32::decode(buf)? as usize;
        if n > buf.len() {
            return Err(DecodeError::new("compiled body length"));
        }
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(CompiledLiteral::decode(buf)?);
        }
        Ok(CompiledClause {
            head,
            body: body.into_boxed_slice(),
            var_span: u32::decode(buf)?,
        })
    }
}

/// Bulk-decodes a length-prefixed `u32` run with one upfront bounds check.
/// Byte-identical to `Vec::<u32>::decode`, but columns / posting lists /
/// unindexed lists are the bulk of a snapshot's bytes, and the per-element
/// `need!` probe is measurable at that volume.
fn decode_u32_run(buf: &mut Bytes) -> Result<Vec<u32>, DecodeError> {
    let n = u32::decode(buf)? as usize;
    if n.saturating_mul(4) > buf.remaining() {
        return Err(DecodeError::new("u32 run length"));
    }
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

/// [`decode_u32_run`] for `TermId` cells.
fn decode_termid_run(buf: &mut Bytes) -> Result<Vec<TermId>, DecodeError> {
    let n = u32::decode(buf)? as usize;
    if n.saturating_mul(4) > buf.remaining() {
        return Err(DecodeError::new("u32 run length"));
    }
    Ok((0..n).map(|_| TermId(buf.get_u32_le())).collect())
}

/// CSR posting list: three flat runs, decoded in bulk. (Validation —
/// ascending keys, consistent offsets, in-bounds runs — happens in
/// `KnowledgeBase::from_snapshot`, not here.)
impl Wire for PostingSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.keys.encode(buf);
        self.offs.encode(buf);
        self.idx.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(PostingSnapshot {
            keys: decode_termid_run(buf)?,
            offs: decode_u32_run(buf)?,
            idx: decode_u32_run(buf)?,
        })
    }
}

impl Wire for PredSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.key.encode(buf);
        self.num_facts.encode(buf);
        self.irregular.encode(buf);
        // One flat position-major stripe run (protocol v4; v3 shipped one
        // run per column).
        self.cols.encode(buf);
        self.postings.encode(buf);
        self.unindexed.encode(buf);
        self.rules.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let key = PredKey::decode(buf)?;
        let num_facts = u32::decode(buf)?;
        let irregular = Vec::decode(buf)?;
        // Hand-rolled container walks so the u32 runs decode in bulk.
        let cols = decode_termid_run(buf)?;
        let nposts = u32::decode(buf)? as usize;
        if nposts > buf.remaining() {
            return Err(DecodeError::new("vec length"));
        }
        let mut postings = Vec::with_capacity(nposts);
        for _ in 0..nposts {
            need!(buf, 1, "option tag");
            postings.push(match buf.get_u8() {
                0 => None,
                1 => Some(PostingSnapshot::decode(buf)?),
                _ => return Err(DecodeError::new("option tag")),
            });
        }
        let nun = u32::decode(buf)? as usize;
        if nun > buf.remaining() {
            return Err(DecodeError::new("vec length"));
        }
        let mut unindexed = Vec::with_capacity(nun);
        for _ in 0..nun {
            unindexed.push(decode_u32_run(buf)?);
        }
        Ok(PredSnapshot {
            key,
            num_facts,
            irregular,
            cols,
            postings,
            unindexed,
            rules: Vec::decode(buf)?,
        })
    }
}

impl Wire for KbSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.symbols.encode(buf);
        self.terms.encode(buf);
        self.preds.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(KbSnapshot {
            symbols: Vec::decode(buf)?,
            terms: Vec::decode(buf)?,
            preds: Vec::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v);
        let back: T = from_bytes(b).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(0xBEEFu16);
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(1.5f64);
        roundtrip(true);
        roundtrip(12345usize);
        roundtrip("héllo".to_owned());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, "x".to_owned()));
        roundtrip((1u32, 2u64, vec![false, true]));
    }

    #[test]
    fn truncated_input_errors() {
        let b = to_bytes(&42u64);
        let mut short = b.slice(..4);
        assert!(u64::decode(&mut short).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        42u32.encode(&mut buf);
        0u8.encode(&mut buf);
        assert_eq!(
            from_bytes::<u32>(buf.freeze()).unwrap_err().context,
            "trailing bytes"
        );
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Claim 2^31 elements with a 1-byte body.
        let mut buf = BytesMut::new();
        (1u32 << 31).encode(&mut buf);
        buf.put_u8(0);
        assert!(from_bytes::<Vec<u32>>(buf.freeze()).is_err());
    }

    #[test]
    fn bad_bool_and_option_tags() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        assert!(from_bytes::<bool>(buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        assert!(from_bytes::<Option<u8>>(buf.freeze()).is_err());
    }

    #[test]
    fn byte_counts_are_exact() {
        assert_eq!(to_bytes(&7u16).len(), 2);
        assert_eq!(to_bytes(&7u32).len(), 4);
        assert_eq!(to_bytes(&vec![1u32, 2]).len(), 4 + 8);
        assert_eq!(to_bytes(&"ab".to_owned()).len(), 4 + 2);
    }
}
