//! Socket-backed transport: real OS processes over a localhost-or-LAN TCP
//! mesh.
//!
//! This is the layer that turns the simulator into a system that can run
//! on an actual cluster, the way the paper ran on LAM/MPI over switched
//! Ethernet. It is deliberately **std-only** (no async runtime, no socket
//! crates): `std::net::TcpStream` + one reader thread per link is exactly
//! enough for the paper's static, deterministic message pattern, and keeps
//! the offline shim setup untouched.
//!
//! # Frame format
//!
//! Every link carries length-prefixed frames:
//!
//! ```text
//! [len: u32 le] [kind: u8] [body…]          (len counts kind + body)
//! ```
//!
//! * kind 0, **Envelope** — `from: u32`, `flags: u8` (bit 0 = poison),
//!   `arrival: f64 le bits`, then the payload bytes. The *virtual arrival
//!   time* travels in the frame, so a receiving process Lamport-merges the
//!   exact same clock value the in-process simulation would — multi-process
//!   runs stay bit-for-bit deterministic.
//! * kind 1, **Hello** — `magic: u32`, `version: u16`, `rank: u32`,
//!   `addr: string` (the dialer's own listening address; empty on
//!   worker-to-worker dials). The rendezvous handshake.
//! * kind 2, **Roster** — the [`CostModel`] (five `f64`s) plus every
//!   worker's `(rank, address)`. Master → worker, once, after all workers
//!   said hello.
//! * kind 3, **Report** — `vtime: f64`, `steps: u64`, the sender's
//!   traffic row, and its recovery-traffic counters. Worker → master,
//!   once, at shutdown, *outside* the metered protocol (reports are
//!   bookkeeping, not algorithm traffic).
//!
//! Frames are decoded by the incremental [`FrameReader`], which accepts
//! arbitrary stream fragmentation — byte-at-a-time, coalesced, split
//! mid-length or mid-payload — and either yields exactly the frames that
//! were written or fails cleanly ([`FrameError`], no panic, no partial
//! frame ever surfaced).
//!
//! # Rendezvous handshake
//!
//! Connection establishment is master-anchored:
//!
//! 1. the master binds a listener and spawns/awaits `p` workers;
//! 2. each worker binds its *own* listener, dials the master, and sends
//!    `Hello { rank, addr }`;
//! 3. once all `p` ranks said hello, the master sends every worker the
//!    `Roster` (cost model + every worker's address);
//! 4. worker `k` dials every worker `j < k` (sending a `Hello` so the
//!    acceptor knows who called) and accepts dials from every `j > k`.
//!
//! The result is a full TCP mesh with the same topology as the in-process
//! channel mesh. Poison/shutdown propagation works across the process
//! boundary because poison is just an envelope flag: a panicking worker
//! broadcasts poison frames before exiting, and a worker that dies without
//! them surfaces as a per-link closure ([`crate::comm::LinkFault`]) at
//! every peer instead of a hang.
//!
//! Every handshake step is bounded twice: the run-level `timeout` caps the
//! whole rendezvous, and each *connection* additionally gets
//! [`HANDSHAKE_TIMEOUT`] (tunable via the `_opts` entry points) to
//! complete its `Hello` — so one peer that connects and goes silent fails
//! the rendezvous fast with a `NetError` naming the peer, instead of
//! stalling the mesh until the global watchdog.
//!
//! # When to use which transport
//!
//! Use the default in-process mesh ([`crate::run_cluster`]) for
//! simulations, tests, and all paper-shaped measurements — it is faster
//! and needs no setup. Use this module (via `run_cluster_tcp` or the core
//! crate's `ParallelConfig::with_transport`) when worker ranks must be
//! real OS processes: fault isolation, real clusters, or validating that
//! nothing silently depends on shared memory.

use crate::comm::{CommFailure, Endpoint, Envelope, Poisoned};
use crate::runtime::{ClusterError, ClusterOutcome};
use crate::stats::TrafficStats;
use crate::transport::{Transport, TransportEvent};
use crate::vtime::CostModel;
use bytes::Bytes;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::Child;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Handshake magic ("p2md").
pub const MAGIC: u32 = 0x7032_6d64;
/// Wire-protocol version; bumped on any frame-format *or payload-shape*
/// change (v2: `KbSnapshot` columns became full-arity when the fact store
/// went column-native; v3: the shutdown `Report` frame grew the worker's
/// recovery-traffic counters, and the protocol itself gained the
/// worker-death recovery messages — a v2 peer would mis-parse both;
/// v4: `PredSnapshot` columns flattened to one position-major stripe run
/// and posting lists moved from sorted pairs to CSR keys/offs/idx runs;
/// v5: the protocol gained the resident-service job-control messages —
/// `SubmitJob`/`JobAccepted`/`JobResult`/`CancelJob` — and workers became
/// resident between jobs, so a v4 peer would mis-parse a job submission
/// and would exit where a v5 worker idles;
/// v6: the protocol gained the introspection pair `MetricsQuery` /
/// `MetricsReport` — the master pulls live per-worker metric snapshots
/// between jobs, which a v5 idle loop would reject as an unexpected
/// message;
/// v7: the strategy seam — `WorkerConfig` grew the search strategy and its
/// seed, the protocol gained the worker↔worker `Constraint` broadcast of
/// the constraint-driven strategy, and the shutdown `Report` frame grew the
/// worker's constraint-traffic counters — a v6 peer would mis-parse all
/// three).
pub const PROTOCOL_VERSION: u16 = 7;
/// Default per-connection handshake bound: once a peer has *connected*, it
/// gets this long to complete its `Hello` (and a roster-fed worker dial
/// this long to succeed) before the rendezvous gives up on it. Without a
/// per-connection bound, a peer that connects and then goes silent — a
/// half-dead process, a port scanner, a partitioned host — stalls the
/// whole mesh until the run's *global* watchdog (typically 60 s) instead
/// of failing fast with a diagnosis. The global deadline still caps
/// everything; this bound only tightens the per-peer wait.
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);
/// Upper bound on one frame's body (guards against garbage length
/// prefixes; a compiled-KB snapshot for the paper-scale datasets is a few
/// MB, so 1 GiB is generous).
pub const MAX_FRAME: u32 = 1 << 30;
/// Exit code a *resident* worker process uses when its master link closed
/// while it sat idle between jobs: an orderly disconnect (or a kill landing
/// in the idle window), not a mid-job failure. Distinct from 0 (clean
/// shutdown after a report), 101 (panic), and 102 (poisoned), so a
/// post-shutdown signal is never misreported as a mid-run crash — the
/// child-failure diagnosis maps it to a friendly message.
pub const IDLE_DISCONNECT_EXIT: i32 = 4;

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// A byte stream failed to parse as a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameError {
    /// What was malformed.
    pub context: &'static str,
}

impl FrameError {
    fn new(context: &'static str) -> Self {
        FrameError { context }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.context)
    }
}

impl std::error::Error for FrameError {}

/// Cluster setup over sockets failed (bind, dial, or handshake).
#[derive(Debug)]
pub struct NetError {
    /// What went wrong.
    pub message: String,
}

impl NetError {
    fn new(message: impl Into<String>) -> Self {
        NetError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Frames.
// ---------------------------------------------------------------------------

/// A worker's shutdown report: final clock, metered steps, and its send
/// row of the traffic matrix (each process only records its own sends, so
/// the master aggregates these to recover whole-cluster statistics).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerReport {
    /// Final virtual clock.
    pub vtime: f64,
    /// Metered compute steps.
    pub steps: u64,
    /// `(bytes, messages, dropped)` per destination rank.
    pub sends: Vec<(u64, u64, u64)>,
    /// Bytes this worker sent during recovery phases (a labelled subset of
    /// `sends`, so the master can keep recovery traffic out of the
    /// paper-shaped numbers).
    pub recovery_bytes: u64,
    /// Messages this worker sent during recovery phases.
    pub recovery_messages: u64,
    /// Bytes this worker sent during constraint phases (the
    /// constraint-driven strategy's pruning exchange — a labelled subset of
    /// `sends`, kept out of the paper-shaped numbers).
    pub constraint_bytes: u64,
    /// Messages this worker sent during constraint phases.
    pub constraint_messages: u64,
}

/// One decoded frame (see the [module docs](self) for the byte layout).
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A protocol message between ranks.
    Envelope {
        /// Sender rank.
        from: u32,
        /// Poison marker.
        poison: bool,
        /// Virtual arrival time at the destination.
        arrival: f64,
        /// Encoded payload.
        payload: Vec<u8>,
    },
    /// Rendezvous: "I am rank `rank`, my listener is at `addr`".
    Hello {
        /// Handshake magic; must equal [`MAGIC`].
        magic: u32,
        /// Protocol version; must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// The dialer's rank.
        rank: u32,
        /// The dialer's own listening address ("" on worker-worker dials).
        addr: String,
    },
    /// Rendezvous: the master's answer — cost model plus every worker's
    /// address.
    Roster {
        /// The cost model every rank must meter with.
        model: CostModel,
        /// `(rank, address)` of every worker, rank-ascending.
        addrs: Vec<(u32, String)>,
    },
    /// A worker's shutdown report.
    Report(WorkerReport),
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one frame, length prefix included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = vec![0u8; 4]; // length patched below
    match frame {
        Frame::Envelope {
            from,
            poison,
            arrival,
            payload,
        } => {
            out.push(0);
            put_u32(&mut out, *from);
            out.push(u8::from(*poison));
            put_u64(&mut out, arrival.to_bits());
            out.extend_from_slice(payload);
        }
        Frame::Hello {
            magic,
            version,
            rank,
            addr,
        } => {
            out.push(1);
            put_u32(&mut out, *magic);
            out.extend_from_slice(&version.to_le_bytes());
            put_u32(&mut out, *rank);
            put_str(&mut out, addr);
        }
        Frame::Roster { model, addrs } => {
            out.push(2);
            for v in [
                model.sec_per_step,
                model.latency,
                model.bytes_per_sec,
                model.send_overhead,
                model.recv_overhead,
            ] {
                put_u64(&mut out, v.to_bits());
            }
            put_u32(&mut out, addrs.len() as u32);
            for (rank, addr) in addrs {
                put_u32(&mut out, *rank);
                put_str(&mut out, addr);
            }
        }
        Frame::Report(rep) => {
            out.push(3);
            put_u64(&mut out, rep.vtime.to_bits());
            put_u64(&mut out, rep.steps);
            put_u32(&mut out, rep.sends.len() as u32);
            for (b, m, d) in &rep.sends {
                put_u64(&mut out, *b);
                put_u64(&mut out, *m);
                put_u64(&mut out, *d);
            }
            put_u64(&mut out, rep.recovery_bytes);
            put_u64(&mut out, rep.recovery_messages);
            put_u64(&mut out, rep.constraint_bytes);
            put_u64(&mut out, rep.constraint_messages);
        }
    }
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// Bounds-checked cursor over one frame body.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.i
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        if self.remaining() < 1 {
            return Err(FrameError::new("truncated body"));
        }
        self.i += 1;
        Ok(self.b[self.i - 1])
    }
    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::new("truncated body"));
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }
    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| FrameError::new("string utf8"))
    }
}

/// Decodes one frame body (`kind` byte + payload, no length prefix). The
/// body must be consumed exactly.
fn decode_frame_body(body: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cur { b: body, i: 0 };
    let frame = match c.u8()? {
        0 => {
            let from = c.u32()?;
            let flags = c.u8()?;
            if flags > 1 {
                return Err(FrameError::new("envelope flags"));
            }
            let arrival = c.f64()?;
            let payload = c.take(c.remaining())?.to_vec();
            Frame::Envelope {
                from,
                poison: flags == 1,
                arrival,
                payload,
            }
        }
        1 => Frame::Hello {
            magic: c.u32()?,
            version: c.u16()?,
            rank: c.u32()?,
            addr: c.string()?,
        },
        2 => {
            let model = CostModel {
                sec_per_step: c.f64()?,
                latency: c.f64()?,
                bytes_per_sec: c.f64()?,
                send_overhead: c.f64()?,
                recv_overhead: c.f64()?,
            };
            let n = c.u32()? as usize;
            if n > c.remaining() {
                return Err(FrameError::new("roster length"));
            }
            let mut addrs = Vec::with_capacity(n);
            for _ in 0..n {
                let rank = c.u32()?;
                addrs.push((rank, c.string()?));
            }
            Frame::Roster { model, addrs }
        }
        3 => {
            let vtime = c.f64()?;
            let steps = c.u64()?;
            let n = c.u32()? as usize;
            if n.saturating_mul(24) > c.remaining() {
                return Err(FrameError::new("report length"));
            }
            let mut sends = Vec::with_capacity(n);
            for _ in 0..n {
                sends.push((c.u64()?, c.u64()?, c.u64()?));
            }
            Frame::Report(WorkerReport {
                vtime,
                steps,
                sends,
                recovery_bytes: c.u64()?,
                recovery_messages: c.u64()?,
                constraint_bytes: c.u64()?,
                constraint_messages: c.u64()?,
            })
        }
        _ => return Err(FrameError::new("frame kind")),
    };
    if c.remaining() != 0 {
        return Err(FrameError::new("trailing body bytes"));
    }
    Ok(frame)
}

/// Incremental frame decoder over an arbitrarily-fragmented byte stream.
///
/// Push chunks in arrival order; [`FrameReader::next_frame`] yields
/// `Ok(Some(frame))` for every complete frame, `Ok(None)` while a frame is
/// still incomplete (a truncated stream simply never completes — no
/// partial frame is surfaced), and `Err` the moment the stream is
/// unparseable (a bad length prefix or body). After an error the reader is
/// poisoned: the same error returns forever, because resynchronizing
/// inside a corrupt stream is not meaningful.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// A fresh reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly-read stream bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.start == self.buf.len() && self.start > 0 {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to decode the next complete frame.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 || len > MAX_FRAME {
            return Err(FrameError::new("frame length"));
        }
        let len = len as usize;
        if avail < 4 + len {
            return Ok(None);
        }
        let frame = decode_frame_body(&self.buf[self.start + 4..self.start + 4 + len])?;
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > (1 << 16) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// The TCP transport.
// ---------------------------------------------------------------------------

enum NetEvent {
    Transport(TransportEvent),
    Report { peer: usize, report: WorkerReport },
}

/// A full-mesh TCP transport for one rank: one duplex stream per peer,
/// one reader thread per stream feeding a single event queue. Built by
/// [`MasterRendezvous::accept_workers`] (rank 0) or [`worker_connect`]
/// (ranks 1..=p).
pub struct TcpTransport {
    rank: usize,
    streams: Vec<Option<TcpStream>>,
    events: mpsc::Receiver<NetEvent>,
    reports: Vec<Option<WorkerReport>>,
}

impl TcpTransport {
    /// Assembles the transport from established, handshaken streams
    /// (index = peer rank; `None` for self). Any bytes a handshake read
    /// over-consumed are carried in the per-stream [`FrameReader`]s.
    fn assemble(rank: usize, peers: Vec<Option<(TcpStream, FrameReader)>>) -> io::Result<Self> {
        let size = peers.len();
        let (tx, rx) = mpsc::channel();
        let mut streams = Vec::with_capacity(size);
        for (peer, slot) in peers.into_iter().enumerate() {
            match slot {
                None => streams.push(None),
                Some((stream, reader)) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(None)?;
                    let read_half = stream.try_clone()?;
                    let tx = tx.clone();
                    std::thread::Builder::new()
                        .name(format!("p2mdie-net-r{rank}-p{peer}"))
                        .spawn(move || reader_loop(peer, read_half, reader, tx))?;
                    streams.push(Some(stream));
                }
            }
        }
        drop(tx); // only reader threads hold senders now
        Ok(TcpTransport {
            rank,
            streams,
            events: rx,
            reports: vec![None; size],
        })
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the mesh (self included).
    pub fn size(&self) -> usize {
        self.streams.len()
    }

    fn write_frame(&mut self, to: usize, bytes: &[u8]) -> bool {
        let Some(stream) = self.streams[to].as_mut() else {
            return false;
        };
        if stream.write_all(bytes).is_err() {
            self.streams[to] = None;
            return false;
        }
        true
    }

    /// Sends the shutdown report to the master (rank 0). Bookkeeping, not
    /// protocol traffic: not metered, not counted in the statistics.
    pub fn send_report(&mut self, report: &WorkerReport) -> bool {
        let bytes = encode_frame(&Frame::Report(report.clone()));
        self.write_frame(0, &bytes)
    }

    /// Writes raw bytes to a peer, bypassing the frame codec. A failure-
    /// injection aid for tests (malformed-frame propagation); never used
    /// by the protocol itself.
    pub fn send_raw_bytes(&mut self, to: usize, bytes: &[u8]) -> bool {
        self.write_frame(to, bytes)
    }

    /// Master-side: blocks until every worker's shutdown [`WorkerReport`]
    /// arrived, the links died, or `timeout` elapsed. Returns the reports
    /// collected so far, indexed by rank.
    pub fn collect_reports(&mut self, timeout: Duration) -> &[Option<WorkerReport>] {
        self.collect_reports_except(timeout, &[])
    }

    /// [`TcpTransport::collect_reports`] excusing `dead` ranks: a worker
    /// that died mid-run (and was recovered around) will never report, so
    /// waiting the full timeout for it would turn every self-healed run
    /// into a timeout-length teardown.
    pub fn collect_reports_except(
        &mut self,
        timeout: Duration,
        dead: &[usize],
    ) -> &[Option<WorkerReport>] {
        let deadline = Instant::now() + timeout;
        while (1..self.reports.len()).any(|k| self.reports[k].is_none() && !dead.contains(&k)) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.events.recv_timeout(deadline - now) {
                Ok(NetEvent::Report { peer, report }) => self.reports[peer] = Some(report),
                Ok(NetEvent::Transport(_)) => {} // late envelopes/closures
                Err(_) => break,                 // timeout or every link gone
            }
        }
        &self.reports
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: usize, env: Envelope) -> bool {
        // Envelope sends are the hot path (a KB snapshot is multi-MB), so
        // the frame is assembled with exactly one payload copy instead of
        // going through the owned `Frame` (whose construction would copy
        // the payload a second time). Layout must match `encode_frame`.
        let payload = env.payload.as_slice();
        let body_len = 1 + 4 + 1 + 8 + payload.len();
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.push(0); // kind: Envelope
        put_u32(&mut out, env.from as u32);
        out.push(u8::from(env.poison));
        put_u64(&mut out, env.arrival.to_bits());
        out.extend_from_slice(payload);
        self.write_frame(to, &out)
    }

    fn recv(&mut self) -> TransportEvent {
        loop {
            match self.events.recv() {
                Ok(NetEvent::Transport(e)) => return e,
                Ok(NetEvent::Report { peer, report }) => self.reports[peer] = Some(report),
                Err(_) => return TransportEvent::Closed { peer: None },
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Unblock the reader threads; they exit on the resulting EOF/error.
        for s in self.streams.iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// One link's reader: drain frames, forward envelopes (and stash reports),
/// surface closure / malformed bytes as events, exit.
fn reader_loop(
    peer: usize,
    mut stream: TcpStream,
    mut reader: FrameReader,
    tx: mpsc::Sender<NetEvent>,
) {
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match reader.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Envelope {
                    from,
                    poison,
                    arrival,
                    payload,
                })) => {
                    if from as usize != peer {
                        let _ = tx.send(NetEvent::Transport(TransportEvent::Malformed {
                            peer,
                            context: "envelope source rank",
                        }));
                        return;
                    }
                    let env = Envelope {
                        from: from as usize,
                        arrival,
                        poison,
                        payload: Bytes::from(payload),
                    };
                    if tx
                        .send(NetEvent::Transport(TransportEvent::Envelope(env)))
                        .is_err()
                    {
                        return; // receiver gone; nothing left to do
                    }
                }
                Ok(Some(Frame::Report(report))) => {
                    if tx.send(NetEvent::Report { peer, report }).is_err() {
                        return;
                    }
                }
                Ok(Some(Frame::Hello { .. } | Frame::Roster { .. })) => {
                    let _ = tx.send(NetEvent::Transport(TransportEvent::Malformed {
                        peer,
                        context: "handshake frame after handshake",
                    }));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(NetEvent::Transport(TransportEvent::Malformed {
                        peer,
                        context: e.context,
                    }));
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                let _ = tx.send(NetEvent::Transport(TransportEvent::Closed {
                    peer: Some(peer),
                }));
                return;
            }
            Ok(n) => reader.push(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = tx.send(NetEvent::Transport(TransportEvent::Closed {
                    peer: Some(peer),
                }));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rendezvous.
// ---------------------------------------------------------------------------

/// Reads exactly one frame from `stream`, blocking up to `deadline`.
/// Over-read bytes stay buffered in `reader` (they may already contain the
/// peer's next frames — the caller must carry the reader forward).
fn read_one_frame(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    deadline: Instant,
    what: &str,
) -> Result<Frame, NetError> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match reader.next_frame() {
            Ok(Some(f)) => return Ok(f),
            Ok(None) => {}
            Err(e) => return Err(NetError::new(format!("{what}: {e}"))),
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::new(format!("{what}: handshake timed out")));
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(NetError::new(format!("{what}: peer closed the connection"))),
            Ok(n) => reader.push(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(NetError::new(format!("{what}: handshake timed out")))
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Accepts one connection, blocking up to `deadline` (the listener is
/// polled non-blocking so a dead dialer cannot hang the handshake).
fn accept_one(
    listener: &TcpListener,
    deadline: Instant,
    what: &str,
) -> Result<TcpStream, NetError> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(NetError::new(format!("{what}: accept timed out")));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

fn check_hello(frame: Frame, workers: usize, what: &str) -> Result<(usize, String), NetError> {
    let Frame::Hello {
        magic,
        version,
        rank,
        addr,
    } = frame
    else {
        return Err(NetError::new(format!("{what}: expected a Hello frame")));
    };
    if magic != MAGIC {
        return Err(NetError::new(format!("{what}: bad handshake magic")));
    }
    if version != PROTOCOL_VERSION {
        return Err(NetError::new(format!(
            "{what}: protocol version {version} != {PROTOCOL_VERSION}"
        )));
    }
    let rank = rank as usize;
    if rank == 0 || rank > workers {
        return Err(NetError::new(format!("{what}: rank {rank} out of range")));
    }
    Ok((rank, addr))
}

/// The master side of the rendezvous: bind, then
/// [`accept_workers`](MasterRendezvous::accept_workers).
pub struct MasterRendezvous {
    listener: TcpListener,
}

impl MasterRendezvous {
    /// Binds the master listener (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        Ok(MasterRendezvous {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address workers must dial.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the master's half of the handshake: accept `workers` hellos,
    /// send every worker the roster, assemble the transport (rank 0).
    /// Each accepted connection gets [`HANDSHAKE_TIMEOUT`] to complete its
    /// `Hello`; use [`MasterRendezvous::accept_workers_opts`] to tighten.
    pub fn accept_workers(
        self,
        workers: usize,
        model: CostModel,
        timeout: Duration,
    ) -> Result<TcpTransport, NetError> {
        self.accept_workers_opts(workers, model, timeout, HANDSHAKE_TIMEOUT)
    }

    /// [`MasterRendezvous::accept_workers`] with an explicit per-connection
    /// handshake bound: a peer that connects but never sends `Hello` fails
    /// the rendezvous after `handshake` (naming the peer's address) instead
    /// of consuming the whole global `timeout`.
    pub fn accept_workers_opts(
        self,
        workers: usize,
        model: CostModel,
        timeout: Duration,
        handshake: Duration,
    ) -> Result<TcpTransport, NetError> {
        let deadline = Instant::now() + timeout;
        let mut slots: Vec<Option<(TcpStream, FrameReader, String)>> = Vec::new();
        slots.resize_with(workers + 1, || None);
        for _ in 0..workers {
            // Waiting for a *connection* is bounded only globally (workers
            // may legitimately take a while to spawn); once connected, the
            // peer must say hello within the per-connection bound.
            let mut stream = accept_one(&self.listener, deadline, "master rendezvous")?;
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown peer>".to_owned());
            let conn_deadline = deadline.min(Instant::now() + handshake);
            let what = format!("master rendezvous: peer {peer}");
            let mut reader = FrameReader::new();
            let hello = read_one_frame(&mut stream, &mut reader, conn_deadline, &what)?;
            let (rank, addr) = check_hello(hello, workers, &what)?;
            if slots[rank].is_some() {
                return Err(NetError::new(format!(
                    "master rendezvous: rank {rank} connected twice"
                )));
            }
            if addr.is_empty() {
                return Err(NetError::new(format!(
                    "master rendezvous: rank {rank} sent no listener address"
                )));
            }
            slots[rank] = Some((stream, reader, addr));
        }
        let addrs: Vec<(u32, String)> = slots
            .iter()
            .enumerate()
            .filter_map(|(r, s)| s.as_ref().map(|(_, _, a)| (r as u32, a.clone())))
            .collect();
        let roster = encode_frame(&Frame::Roster {
            model,
            addrs: addrs.clone(),
        });
        let mut peers: Vec<Option<(TcpStream, FrameReader)>> = Vec::with_capacity(workers + 1);
        peers.push(None); // self (rank 0)
        for slot in slots.into_iter().skip(1) {
            let (mut stream, reader, _) = slot.expect("all ranks accounted for");
            stream.write_all(&roster)?;
            peers.push(Some((stream, reader)));
        }
        Ok(TcpTransport::assemble(0, peers)?)
    }
}

/// The worker side of the rendezvous: dial the master, announce the rank,
/// receive the roster, complete the worker-to-worker mesh. Returns the
/// transport plus the [`CostModel`] the master dictated (the worker's
/// endpoint must meter with exactly the master's model, or virtual time
/// diverges).
pub fn worker_connect(
    master_addr: &str,
    rank: usize,
    timeout: Duration,
) -> Result<(TcpTransport, CostModel), NetError> {
    worker_connect_opts(master_addr, rank, timeout, HANDSHAKE_TIMEOUT)
}

/// [`worker_connect`] with an explicit per-connection handshake bound (see
/// [`MasterRendezvous::accept_workers_opts`]): mesh dials and accepted
/// peers' `Hello`s are each bounded by `handshake`, so one silent peer
/// fails this worker's rendezvous fast instead of stalling it until the
/// global `timeout`.
pub fn worker_connect_opts(
    master_addr: &str,
    rank: usize,
    timeout: Duration,
    handshake: Duration,
) -> Result<(TcpTransport, CostModel), NetError> {
    assert!(rank >= 1, "worker ranks start at 1");
    let deadline = Instant::now() + timeout;

    // Dial the master first: the local address of that stream names the
    // interface that reaches the cluster, so binding our own listener
    // there (instead of hard-coding loopback) advertises an address other
    // hosts' workers can actually dial.
    let master_sock = resolve(master_addr)?;
    let mut master = dial(master_sock, deadline, "worker rendezvous")?;
    let listener = TcpListener::bind((master.local_addr()?.ip(), 0))?;
    let my_addr = listener.local_addr()?.to_string();
    master.write_all(&encode_frame(&Frame::Hello {
        magic: MAGIC,
        version: PROTOCOL_VERSION,
        rank: rank as u32,
        addr: my_addr,
    }))?;
    let mut master_reader = FrameReader::new();
    // The roster only goes out once *every* rank said hello, so this wait
    // legitimately depends on the slowest sibling: bound it by the global
    // deadline, not the per-connection one.
    let roster = read_one_frame(
        &mut master,
        &mut master_reader,
        deadline,
        "worker rendezvous",
    )?;
    let Frame::Roster { model, addrs } = roster else {
        return Err(NetError::new("worker rendezvous: expected a Roster frame"));
    };
    let workers = addrs.len();
    if rank > workers {
        return Err(NetError::new(format!(
            "worker rendezvous: rank {rank} not in a {workers}-worker roster"
        )));
    }

    let mut peers: Vec<Option<(TcpStream, FrameReader)>> = Vec::new();
    peers.resize_with(workers + 1, || None);
    peers[0] = Some((master, master_reader));

    // Dial every lower-ranked worker; they accept and read our hello. A
    // rostered peer's listener is already bound (workers bind before their
    // hello), so each dial gets the per-connection bound, not the global.
    for (peer, addr) in &addrs {
        let peer = *peer as usize;
        if peer >= rank {
            continue;
        }
        let sock = resolve(addr)?;
        let conn_deadline = deadline.min(Instant::now() + handshake);
        let mut stream = dial(sock, conn_deadline, &format!("worker mesh: rank {peer}"))?;
        stream.write_all(&encode_frame(&Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            rank: rank as u32,
            addr: String::new(),
        }))?;
        peers[peer] = Some((stream, FrameReader::new()));
    }

    // Accept every higher-ranked worker's dial; once connected, a peer
    // must complete its hello within the per-connection bound.
    for _ in rank + 1..=workers {
        let mut stream = accept_one(&listener, deadline, "worker mesh")?;
        let peer_addr = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown peer>".to_owned());
        let conn_deadline = deadline.min(Instant::now() + handshake);
        let what = format!("worker mesh: peer {peer_addr}");
        let mut reader = FrameReader::new();
        let hello = read_one_frame(&mut stream, &mut reader, conn_deadline, &what)?;
        let (peer, _) = check_hello(hello, workers, &what)?;
        if peer <= rank {
            return Err(NetError::new(format!(
                "worker mesh: unexpected dial from rank {peer}"
            )));
        }
        if peers[peer].is_some() {
            return Err(NetError::new(format!(
                "worker mesh: rank {peer} dialed twice"
            )));
        }
        peers[peer] = Some((stream, reader));
    }

    Ok((TcpTransport::assemble(rank, peers)?, model))
}

fn resolve(addr: &str) -> Result<SocketAddr, NetError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| NetError::new(format!("address `{addr}` did not resolve")))
}

/// First retry pause after a refused dial; doubles per attempt.
const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(4);
/// Ceiling on the (pre-jitter) retry pause.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(256);

/// The pause before retry number `attempt` (0-based): exponential from
/// [`DIAL_BACKOFF_BASE`] capped at [`DIAL_BACKOFF_CAP`], with uniform
/// jitter in `[½·pause, pause]` so a whole cohort of workers restarting at
/// once (exactly the recovery scenario) spreads its dials instead of
/// hammering the listener in lockstep.
fn dial_backoff(attempt: u32, rng: &mut rand::rngs::StdRng) -> Duration {
    use rand::Rng as _;
    let exp = DIAL_BACKOFF_BASE
        .saturating_mul(1u32 << attempt.min(16))
        .min(DIAL_BACKOFF_CAP);
    let micros = exp.as_micros() as u64;
    Duration::from_micros(rng.random_range(micros / 2..=micros))
}

/// Dials with jittered-exponential-backoff retries until `deadline` (the
/// peer's listener may not be up yet when processes race through startup,
/// and a recovering mesh redials en masse).
fn dial(addr: SocketAddr, deadline: Instant, what: &str) -> Result<TcpStream, NetError> {
    use rand::SeedableRng as _;
    // Deterministic but caller-distinct jitter: different ranks dial with
    // different `what` strings, so their schedules decorrelate.
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in what.bytes().chain(addr.port().to_le_bytes()) {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut attempt = 0u32;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::new(format!("{what}: dialing {addr} timed out")));
        }
        match TcpStream::connect_timeout(&addr, deadline - now) {
            Ok(s) => return Ok(s),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused | io::ErrorKind::ConnectionReset
                ) =>
            {
                std::thread::sleep(dial_backoff(attempt, &mut rng).min(deadline - now));
                attempt += 1;
            }
            Err(e) => return Err(NetError::new(format!("{what}: dialing {addr}: {e}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// The multi-process runtime.
// ---------------------------------------------------------------------------

/// Bound on collecting one child's stderr during a failure diagnosis (see
/// [`ChildSet::diagnose`]).
const STDERR_COLLECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Tracks the spawned worker processes; kills whatever is still alive on
/// drop so a failed run never leaks children.
struct ChildSet {
    children: Vec<(usize, Child, Option<std::process::ExitStatus>)>,
}

impl ChildSet {
    fn new() -> Self {
        ChildSet {
            children: Vec::new(),
        }
    }

    fn push(&mut self, rank: usize, child: Child) {
        self.children.push((rank, child, None));
    }

    /// Polls until every child exited or `timeout` elapsed; stragglers are
    /// killed and reaped.
    fn wait_all(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let mut all_done = true;
            for (_, child, status) in self.children.iter_mut() {
                if status.is_none() {
                    match child.try_wait() {
                        Ok(Some(s)) => *status = Some(s),
                        _ => all_done = false,
                    }
                }
            }
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for (_, child, status) in self.children.iter_mut() {
            if status.is_none() {
                let _ = child.kill();
                if let Ok(s) = child.wait() {
                    *status = Some(s);
                }
            }
        }
    }

    /// Exit status + captured stderr for one rank (call after `wait_all`).
    ///
    /// Stderr is read on a helper thread bounded by
    /// [`STDERR_COLLECT_TIMEOUT`]: a wedged worker (or a grandchild it
    /// leaked) can hold the pipe's write end open indefinitely, and an
    /// unbounded `read_to_string` here would turn one stuck process into a
    /// stuck *teardown*. On timeout the reader thread is abandoned (it
    /// exits whenever the pipe finally closes) and the diagnosis says so.
    fn diagnose(&mut self, rank: usize, fallback: &str) -> String {
        for (r, child, status) in self.children.iter_mut() {
            if *r != rank {
                continue;
            }
            let mut msg = match status {
                Some(s) if s.code() == Some(IDLE_DISCONNECT_EXIT) => format!(
                    "process was disconnected while idle between jobs \
                     (exit code {IDLE_DISCONNECT_EXIT}; not a mid-job failure)"
                ),
                Some(s) => format!("process exited with {s}"),
                None => fallback.to_owned(),
            };
            if let Some(mut err) = child.stderr.take() {
                let (tx, rx) = mpsc::channel();
                let spawned = std::thread::Builder::new()
                    .name(format!("p2mdie-stderr-r{rank}"))
                    .spawn(move || {
                        let mut text = String::new();
                        let _ = err.read_to_string(&mut text);
                        let _ = tx.send(text);
                    })
                    .is_ok();
                match if spawned {
                    rx.recv_timeout(STDERR_COLLECT_TIMEOUT).ok()
                } else {
                    None
                } {
                    Some(text) if !text.trim().is_empty() => {
                        msg.push_str("; stderr: ");
                        msg.push_str(text.trim());
                    }
                    Some(_) => {}
                    None => msg.push_str("; stderr: <collection timed out>"),
                }
            }
            return msg;
        }
        fallback.to_owned()
    }

    /// The lowest-ranked child that exited abnormally, if any (call after
    /// `wait_all`). Ranks in `excused` — workers whose death the run
    /// already recovered from — do not count as failures.
    fn first_failure(&mut self, excused: &[usize]) -> Option<usize> {
        let mut failed: Vec<usize> = self
            .children
            .iter()
            .filter(|(r, _, s)| !excused.contains(r) && s.map(|s| !s.success()).unwrap_or(true))
            .map(|(r, _, _)| *r)
            .collect();
        failed.sort_unstable();
        failed.first().copied()
    }
}

impl Drop for ChildSet {
    fn drop(&mut self) {
        for (_, child, status) in self.children.iter_mut() {
            if status.is_none() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Runs a master–worker cluster where every worker is a real OS process
/// connected over localhost TCP.
///
/// The caller provides `spawn`, which must launch the worker process for
/// a given rank, pointing it at the master's rendezvous address (the core
/// crate's `p2mdie-worker` binary is the standard worker; pipe its stderr
/// if you want it quoted in failure diagnoses). Everything else mirrors
/// [`crate::run_cluster`]: the master closure runs on the calling thread,
/// worker failures surface as rank-tagged [`ClusterError`]s instead of
/// hangs, and the returned [`ClusterOutcome`] carries whole-cluster
/// statistics (worker processes report their clocks, steps, and traffic
/// rows in a shutdown frame).
pub fn run_cluster_tcp<R>(
    workers: usize,
    model: CostModel,
    timeout: Duration,
    mut spawn: impl FnMut(usize, SocketAddr) -> io::Result<Child>,
    master: impl FnOnce(&mut Endpoint<TcpTransport>) -> R,
) -> Result<ClusterOutcome<R>, ClusterError> {
    assert!(workers >= 1, "need at least one worker");
    let net_err = |e: NetError| ClusterError::Net { message: e.message };
    // Env-driven flight recording: with `P2MDIE_TRACE=<base>` set, the
    // master rank records into an in-process session here, each worker
    // process streams JSONL to `<base>.rank<k>.jsonl` (the worker binary
    // honours the same variable), and after the run the pieces Lamport-merge
    // into `<base>` + `<base>.chrome.json`.
    let trace_base = std::env::var("P2MDIE_TRACE").ok();
    if trace_base.is_some() {
        p2mdie_obs::trace::start(p2mdie_obs::trace::TraceConfig::default());
    }

    let rendezvous = MasterRendezvous::bind("127.0.0.1:0").map_err(net_err)?;
    let addr = rendezvous.local_addr().map_err(net_err)?;

    let mut children = ChildSet::new();
    for rank in 1..=workers {
        match spawn(rank, addr) {
            Ok(child) => children.push(rank, child),
            Err(e) => {
                return Err(ClusterError::Net {
                    message: format!("spawning worker rank {rank}: {e}"),
                })
            }
        }
    }

    let transport = rendezvous
        .accept_workers(workers, model, timeout)
        .map_err(net_err)?;
    let size = workers + 1;
    let stats = TrafficStats::new(size);
    let mut ep = Endpoint::from_parts(0, size, transport, model, stats.clone());

    let master_result = catch_unwind(AssertUnwindSafe(|| master(&mut ep)));
    let result = match master_result {
        Ok(r) => r,
        Err(payload) => {
            // Wake every worker that is still blocked, then diagnose.
            ep.broadcast_poison();
            drop(ep);
            children.wait_all(timeout);
            if let Some(p) = payload.downcast_ref::<Poisoned>() {
                return Err(ClusterError::WorkerPanicked {
                    rank: p.origin,
                    message: children.diagnose(p.origin, "poisoned the run"),
                });
            }
            if let Some(cf) = payload.downcast_ref::<CommFailure>() {
                let mut message = cf.to_string();
                let detail = children.diagnose(cf.from, "");
                if !detail.is_empty() {
                    message.push_str(" [");
                    message.push_str(&detail);
                    message.push(']');
                }
                return Err(ClusterError::Comm {
                    rank: cf.from,
                    message,
                });
            }
            // The master's own bug: match the in-process runtime and keep
            // unwinding (children are killed by the ChildSet drop).
            std::panic::resume_unwind(payload);
        }
    };

    // Gather the workers' shutdown reports and reap the processes. A rank
    // the master acknowledged as dead mid-run (worker-death recovery) is
    // excused: it will never report, its abnormal exit is the fault the
    // run already healed, and its traffic row is simply lost (its sends
    // were received and metered by the survivors' clocks regardless).
    let recovered_dead = ep.downed();
    let reports = ep
        .transport_mut()
        .collect_reports_except(timeout, &recovered_dead)
        .to_vec();
    children.wait_all(timeout);
    let mut worker_vtimes = Vec::with_capacity(workers);
    let mut worker_steps = Vec::with_capacity(workers);
    for (rank, report) in reports.iter().enumerate().take(workers + 1).skip(1) {
        match report {
            Some(rep) => {
                stats.absorb_row(rank, &rep.sends);
                stats.absorb_recovery(rep.recovery_bytes, rep.recovery_messages);
                stats.absorb_constraint(rep.constraint_bytes, rep.constraint_messages);
                worker_vtimes.push(rep.vtime);
                worker_steps.push(rep.steps);
            }
            None if recovered_dead.contains(&rank) => {
                worker_vtimes.push(0.0);
                worker_steps.push(0);
            }
            None => {
                let message = children.diagnose(rank, "exited without a shutdown report");
                return Err(ClusterError::WorkerProcess { rank, message });
            }
        }
    }
    if let Some(rank) = children.first_failure(&recovered_dead) {
        let message = children.diagnose(rank, "did not exit");
        return Err(ClusterError::WorkerProcess { rank, message });
    }

    crate::runtime::warn_dropped_sends(stats.total_dropped(), ep.now());
    if let Some(base) = &trace_base {
        merge_trace_files(base, workers);
    }
    Ok(ClusterOutcome {
        result,
        master_vtime: ep.now(),
        worker_vtimes,
        master_steps: ep.compute_steps(),
        worker_steps,
        dropped_sends: stats.total_dropped(),
        stats,
    })
}

/// The per-rank JSONL file a worker process streams its trace to when
/// `P2MDIE_TRACE=<base>` is set (`<base>.rank<k>.jsonl`).
pub fn trace_rank_path(base: &str, rank: usize) -> String {
    format!("{base}.rank{rank}.jsonl")
}

/// The Chrome `trace_event` file written next to a merged trace base.
pub fn trace_chrome_path(base: &str) -> String {
    format!("{base}.chrome.json")
}

/// Finishes the master's trace session, loads every worker's per-rank
/// JSONL file that exists, Lamport-merges the lot on the virtual-time
/// axis, and writes `<base>` (merged JSONL) plus `<base>.chrome.json`
/// (Perfetto-loadable). Missing rank files — a worker that died before
/// flushing — are simply skipped; the merge is best-effort diagnostics,
/// never a run failure.
fn merge_trace_files(base: &str, workers: usize) {
    let mut traces = Vec::new();
    if let Some((trace, _summary)) = p2mdie_obs::trace::finish() {
        traces.push(trace);
    }
    for rank in 1..=workers {
        if let Ok(text) = std::fs::read_to_string(trace_rank_path(base, rank)) {
            if let Ok(t) = p2mdie_obs::Trace::from_jsonl(&text) {
                traces.push(t);
            }
        }
    }
    if traces.is_empty() {
        return;
    }
    let merged = p2mdie_obs::Trace::merge(traces);
    let _ = std::fs::write(base, merged.to_jsonl());
    let _ = std::fs::write(trace_chrome_path(base), merged.chrome_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_frame(from: u32, payload: &[u8]) -> Frame {
        Frame::Envelope {
            from,
            poison: false,
            arrival: 1.25,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn frames_roundtrip() {
        let frames = vec![
            env_frame(3, b"hello"),
            Frame::Envelope {
                from: 0,
                poison: true,
                arrival: 0.0,
                payload: vec![],
            },
            Frame::Hello {
                magic: MAGIC,
                version: PROTOCOL_VERSION,
                rank: 2,
                addr: "127.0.0.1:9999".to_owned(),
            },
            Frame::Roster {
                model: CostModel::beowulf_2005(),
                addrs: vec![(1, "a:1".to_owned()), (2, "b:2".to_owned())],
            },
            Frame::Report(WorkerReport {
                vtime: 12.5,
                steps: 99,
                sends: vec![(1, 2, 0), (0, 0, 3)],
                recovery_bytes: 77,
                recovery_messages: 4,
                constraint_bytes: 31,
                constraint_messages: 2,
            }),
        ];
        let mut reader = FrameReader::new();
        for f in &frames {
            reader.push(&encode_frame(f));
        }
        for f in &frames {
            assert_eq!(reader.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_delivery_decodes_identically() {
        let frames = vec![env_frame(1, b"abc"), env_frame(2, &[0u8; 100])];
        let stream: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for b in stream {
            reader.push(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn truncated_stream_never_surfaces_a_partial_frame() {
        let bytes = encode_frame(&env_frame(1, b"payload"));
        for cut in 0..bytes.len() {
            let mut reader = FrameReader::new();
            reader.push(&bytes[..cut]);
            assert_eq!(
                reader.next_frame().unwrap(),
                None,
                "cut at {cut} must stay pending"
            );
        }
    }

    #[test]
    fn garbage_length_prefix_fails_cleanly() {
        let mut reader = FrameReader::new();
        reader.push(&0xFFFF_FFFFu32.to_le_bytes());
        let err = reader.next_frame().unwrap_err();
        assert_eq!(err.context, "frame length");
        // Poisoned: the error sticks.
        reader.push(b"more");
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn bad_kind_and_trailing_bytes_are_rejected() {
        let mut raw = encode_frame(&env_frame(1, b"x"));
        raw[4] = 200; // kind byte
        let mut reader = FrameReader::new();
        reader.push(&raw);
        assert_eq!(reader.next_frame().unwrap_err().context, "frame kind");

        // A Hello whose body claims a longer string than the frame holds.
        let mut raw = encode_frame(&Frame::Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            rank: 1,
            addr: "abcdef".to_owned(),
        });
        let last = raw.len() - 1;
        raw.truncate(last); // shorten body…
        let new_len = (raw.len() - 4) as u32;
        raw[..4].copy_from_slice(&new_len.to_le_bytes()); // …but fix the prefix
        let mut reader = FrameReader::new();
        reader.push(&raw);
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn dial_backoff_is_exponential_capped_and_jittered() {
        use rand::rngs::StdRng;
        use rand::SeedableRng as _;

        let mut rng = StdRng::seed_from_u64(9);
        for attempt in 0..20 {
            let exp = DIAL_BACKOFF_BASE
                .saturating_mul(1u32 << attempt.min(16))
                .min(DIAL_BACKOFF_CAP);
            let d = dial_backoff(attempt, &mut rng);
            assert!(d <= exp, "attempt {attempt}: {d:?} above the envelope");
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} below half jitter");
            assert!(d <= DIAL_BACKOFF_CAP);
        }
        // Deterministic: same seed, same schedule.
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let sa: Vec<Duration> = (0..8).map(|i| dial_backoff(i, &mut a)).collect();
        let sb: Vec<Duration> = (0..8).map(|i| dial_backoff(i, &mut b)).collect();
        assert_eq!(sa, sb);
        // Jittered: a different seed gives a different schedule.
        let mut c = StdRng::seed_from_u64(4);
        let sc: Vec<Duration> = (0..8).map(|i| dial_backoff(i, &mut c)).collect();
        assert_ne!(sa, sc);
    }

    /// A worker killed (or disconnected) while idle between jobs exits
    /// with [`IDLE_DISCONNECT_EXIT`], and the child-failure diagnosis says
    /// so instead of reporting a mid-run crash.
    #[test]
    fn idle_disconnect_exit_code_gets_a_friendly_diagnosis() {
        let spawn = |code: i32| {
            std::process::Command::new("sh")
                .args(["-c", &format!("exit {code}")])
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("spawn sh")
        };
        let mut children = ChildSet::new();
        children.push(1, spawn(IDLE_DISCONNECT_EXIT));
        children.push(2, spawn(101));
        children.wait_all(Duration::from_secs(10));
        let idle = children.diagnose(1, "fallback");
        assert!(
            idle.contains("idle between jobs") && idle.contains("not a mid-job failure"),
            "unexpected diagnosis: {idle}"
        );
        let crash = children.diagnose(2, "fallback");
        assert!(
            crash.contains("exited with") && !crash.contains("idle between jobs"),
            "unexpected diagnosis: {crash}"
        );
        // Both are still *failures* from the mesh's point of view: the
        // distinct code only changes the story, not the verdict.
        assert_eq!(children.first_failure(&[]), Some(1));
        assert_eq!(children.first_failure(&[1]), Some(2));
    }

    #[test]
    fn arrival_time_is_bit_exact() {
        let arrival = 1_234.567_890_123_456_7;
        let bytes = encode_frame(&Frame::Envelope {
            from: 1,
            poison: false,
            arrival,
            payload: vec![],
        });
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        let Some(Frame::Envelope { arrival: got, .. }) = reader.next_frame().unwrap() else {
            panic!("expected envelope");
        };
        assert_eq!(got.to_bits(), arrival.to_bits());
    }
}
