//! Message-passing cluster substrate with a LogP-style virtual-time model.
//!
//! Plays the role LAM/MPI + the 8-CPU Beowulf cluster played in Fonseca et
//! al. (CLUSTER 2005). Ranks carry deterministic virtual clocks so that
//! execution time, speedup, and communication volume can be *measured*
//! (DESIGN.md §3, substitution 1) — and the transport underneath is
//! pluggable: ranks can be OS threads joined by channels (the default
//! simulator) or real OS processes joined by a TCP mesh.
//!
//! * [`codec`] — byte-accurate wire encoding (Table 4's MBytes);
//! * [`vtime`] — the cost model (`t_step`, latency, bandwidth) and clocks;
//! * [`stats`] — per-link traffic counters (dropped sends included);
//! * [`comm`] — the paper's §2.2 primitives: non-blocking `send` and
//!   `broadcast`, blocking `recv_from`, on a generic [`Endpoint`];
//! * [`transport`] — the [`Transport`] seam, the in-process
//!   [`MeshTransport`], and the fault-injecting [`ChaosTransport`];
//! * [`net`] — the socket-backed [`TcpTransport`]: length-prefixed frames,
//!   the rendezvous handshake, and the multi-process runtime
//!   [`run_cluster_tcp`];
//! * [`runtime`] — the in-process runtime
//!   `run_cluster(p, model, master, worker)`.
//!
//! ```
//! use p2mdie_cluster::{run_cluster, CostModel};
//!
//! let out = run_cluster(
//!     2,
//!     CostModel::free(),
//!     |ep| {
//!         ep.broadcast(&21u64);
//!         (1..=2).map(|w| ep.recv_msg::<u64>(w).unwrap()).sum::<u64>()
//!     },
//!     |ep| {
//!         let x: u64 = ep.recv_msg(0).unwrap();
//!         ep.send(0, &(x * ep.rank() as u64));
//!     },
//! )
//! .unwrap();
//! assert_eq!(out.result, 21 + 42);
//! ```

pub mod codec;
pub mod comm;
pub mod net;
pub mod runtime;
pub mod stats;
pub mod transport;
pub mod vtime;

pub use codec::{from_bytes, to_bytes, DecodeError, Wire};
pub use comm::{CommError, CommFailure, Endpoint, Envelope, LinkFault, RecvError};
pub use net::{
    run_cluster_tcp, worker_connect, Frame, FrameError, FrameReader, MasterRendezvous, NetError,
    TcpTransport, WorkerReport,
};
pub use runtime::{run_cluster, run_cluster_with, ClusterError, ClusterOutcome};
pub use stats::TrafficStats;
pub use transport::{
    maybe_chaos, ChaosConfig, ChaosTransport, DownHandle, MeshItem, MeshTransport, Transport,
    TransportEvent,
};
pub use vtime::{CostModel, VirtualClock};
