//! Message-passing cluster substrate with a LogP-style virtual-time model.
//!
//! Plays the role LAM/MPI + the 8-CPU Beowulf cluster played in Fonseca et
//! al. (CLUSTER 2005): ranks are OS threads, links are crossbeam channels,
//! and every rank carries a deterministic virtual clock so that execution
//! time, speedup, and communication volume can be *measured* even though
//! everything runs on one machine (DESIGN.md §3, substitution 1).
//!
//! * [`codec`] — byte-accurate wire encoding (Table 4's MBytes);
//! * [`vtime`] — the cost model (`t_step`, latency, bandwidth) and clocks;
//! * [`stats`] — per-link traffic counters;
//! * [`comm`] — the paper's §2.2 primitives: non-blocking `send` and
//!   `broadcast`, blocking `recv_from`;
//! * [`runtime`] — `run_cluster(p, model, master, worker)`.
//!
//! ```
//! use p2mdie_cluster::{run_cluster, CostModel};
//!
//! let out = run_cluster(
//!     2,
//!     CostModel::free(),
//!     |ep| {
//!         ep.broadcast(&21u64);
//!         (1..=2).map(|w| ep.recv_msg::<u64>(w).unwrap()).sum::<u64>()
//!     },
//!     |ep| {
//!         let x: u64 = ep.recv_msg(0).unwrap();
//!         ep.send(0, &(x * ep.rank() as u64));
//!     },
//! )
//! .unwrap();
//! assert_eq!(out.result, 21 + 42);
//! ```

pub mod codec;
pub mod comm;
pub mod runtime;
pub mod stats;
pub mod vtime;

pub use codec::{from_bytes, to_bytes, DecodeError, Wire};
pub use comm::{CommError, Endpoint, Envelope, RecvError};
pub use runtime::{run_cluster, ClusterError, ClusterOutcome};
pub use stats::TrafficStats;
pub use vtime::{CostModel, VirtualClock};
