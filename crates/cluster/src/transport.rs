//! The pluggable transport layer underneath [`crate::comm::Endpoint`].
//!
//! The paper's algorithm ran on LAM/MPI over a Beowulf cluster; this
//! reproduction started with ranks as threads and links as channels. The
//! [`Transport`] trait is the seam between those two worlds: everything
//! *above* it — virtual-clock metering, per-link traffic statistics, the
//! `recv_from` source buffering that makes runs deterministic — lives in
//! `Endpoint` and is transport-agnostic; everything *below* it is "move
//! these [`Envelope`]s between ranks".
//!
//! Two implementations ship:
//!
//! * [`MeshTransport`] — the in-process mesh: every rank is an OS thread
//!   and every link an unbounded channel. This is the default (and what
//!   [`crate::run_cluster`] uses), because it is fastest, needs no setup,
//!   and keeps whole cluster simulations in one address space. All the
//!   paper-shaped measurements (Table 4 traffic, `master_vtime`) are taken
//!   on this transport.
//! * [`crate::net::TcpTransport`] — real sockets: every rank is an OS
//!   *process* and every link a `TcpStream` carrying length-prefixed
//!   frames (see [`crate::net`] for the frame format and the rendezvous
//!   handshake). Use it when workers must actually live in separate
//!   processes — on one machine for fault isolation, or on a real cluster.
//!
//! Both transports carry the same [`Envelope`]: the payload bytes plus the
//! sender rank, the poison flag, and the *virtual arrival time* — so a
//! multi-process run Lamport-merges exactly the same clock values as the
//! in-process simulation and stays bit-for-bit deterministic.

use crate::comm::Envelope;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// What a blocking [`Transport::recv`] can yield besides a message.
#[derive(Debug)]
pub enum TransportEvent {
    /// A message arrived.
    Envelope(Envelope),
    /// A link closed. `Some(rank)` names the peer whose link died (a
    /// process exit or stream error); `None` means the whole fabric is
    /// gone and no message will ever arrive again (the in-process mesh can
    /// only detect this aggregate form).
    Closed {
        /// The dead peer, when the transport can tell.
        peer: Option<usize>,
    },
    /// A peer delivered bytes that do not parse as a frame. The link is
    /// dead from this point on (resynchronizing inside a corrupt byte
    /// stream is not attempted).
    Malformed {
        /// The offending peer.
        peer: usize,
        /// What failed to parse.
        context: &'static str,
    },
}

/// Moves [`Envelope`]s between ranks. See the [module docs](self) for the
/// contract split between `Endpoint` and the transport.
pub trait Transport {
    /// Best-effort, non-blocking send to rank `to`. Returns `false` when
    /// the envelope could not be handed off (peer gone, stream broken);
    /// the caller accounts such losses as dropped sends.
    fn send(&mut self, to: usize, env: Envelope) -> bool;

    /// Blocks until the next event: a message from any peer, or a link
    /// failure. Ordering per peer is FIFO; ordering across peers is
    /// arrival order.
    fn recv(&mut self) -> TransportEvent;
}

/// The in-process transport: one unbounded channel per rank, every rank
/// holding a sender to every other. This is exactly the substrate the
/// simulator has always run on, now behind the [`Transport`] seam.
pub struct MeshTransport {
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
}

impl MeshTransport {
    /// Assembles one rank's transport from raw channel halves (tests and
    /// custom topologies; [`MeshTransport::mesh`] is the usual entry).
    pub fn from_channels(senders: Vec<Sender<Envelope>>, rx: Receiver<Envelope>) -> MeshTransport {
        MeshTransport { senders, rx }
    }

    /// Builds the full `size`-rank mesh, returning one transport per rank
    /// (index = rank).
    pub fn mesh(size: usize) -> Vec<MeshTransport> {
        let mut txs = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| MeshTransport {
                senders: txs.clone(),
                rx,
            })
            .collect()
    }
}

impl Transport for MeshTransport {
    fn send(&mut self, to: usize, env: Envelope) -> bool {
        self.senders[to].send(env).is_ok()
    }

    fn recv(&mut self) -> TransportEvent {
        match self.rx.recv() {
            Ok(env) => TransportEvent::Envelope(env),
            // The mesh shares one channel per receiver, so closure is only
            // observable in aggregate: every peer's sender is gone.
            Err(_) => TransportEvent::Closed { peer: None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn env(from: usize) -> Envelope {
        Envelope {
            from,
            arrival: 0.0,
            poison: false,
            payload: Bytes::from(b"x".as_slice()),
        }
    }

    #[test]
    fn mesh_routes_between_ranks() {
        let mut mesh = MeshTransport::mesh(3);
        let mut t2 = mesh.pop().unwrap();
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        assert!(t0.send(1, env(0)));
        assert!(t2.send(1, env(2)));
        for _ in 0..2 {
            match t1.recv() {
                TransportEvent::Envelope(e) => assert!(e.from == 0 || e.from == 2),
                other => panic!("expected an envelope, got {other:?}"),
            }
        }
    }

    #[test]
    fn send_to_dead_peer_fails() {
        let mut mesh = MeshTransport::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        drop(mesh); // rank 0 exited; its receiver is gone
        assert!(!t1.send(0, env(1)));
    }
}
