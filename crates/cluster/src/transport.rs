//! The pluggable transport layer underneath [`crate::comm::Endpoint`].
//!
//! The paper's algorithm ran on LAM/MPI over a Beowulf cluster; this
//! reproduction started with ranks as threads and links as channels. The
//! [`Transport`] trait is the seam between those two worlds: everything
//! *above* it — virtual-clock metering, per-link traffic statistics, the
//! `recv_from` source buffering that makes runs deterministic — lives in
//! `Endpoint` and is transport-agnostic; everything *below* it is "move
//! these [`Envelope`]s between ranks".
//!
//! Two base transports ship:
//!
//! * [`MeshTransport`] — the in-process mesh: every rank is an OS thread
//!   and every link an unbounded channel. This is the default (and what
//!   [`crate::run_cluster`] uses), because it is fastest, needs no setup,
//!   and keeps whole cluster simulations in one address space. All the
//!   paper-shaped measurements (Table 4 traffic, `master_vtime`) are taken
//!   on this transport.
//! * [`crate::net::TcpTransport`] — real sockets: every rank is an OS
//!   *process* and every link a `TcpStream` carrying length-prefixed
//!   frames (see [`crate::net`] for the frame format and the rendezvous
//!   handshake). Use it when workers must actually live in separate
//!   processes — on one machine for fault isolation, or on a real cluster.
//!
//! Both transports carry the same [`Envelope`]: the payload bytes plus the
//! sender rank, the poison flag, and the *virtual arrival time* — so a
//! multi-process run Lamport-merges exactly the same clock values as the
//! in-process simulation and stays bit-for-bit deterministic.
//!
//! # Death notifications
//!
//! A TCP link reports a dead peer naturally (`Closed { peer: Some(r) }`
//! when the stream breaks), but the in-process mesh cannot: every rank
//! holds a clone of every sender, so one rank's exit never closes a
//! survivor's channel. The mesh therefore carries an out-of-band item
//! alongside envelopes — the runtime supervisor grabs a [`DownHandle`] to
//! a rank before spawning it and injects a [`MeshItem::Down`] when that
//! rank's thread dies, which the receiving transport surfaces as the same
//! `Closed { peer: Some(r) }` event a broken socket would produce. Failure
//! detection thus looks identical above the [`Transport`] seam on both
//! substrates.
//!
//! # Chaos testing
//!
//! [`ChaosTransport`] wraps any transport with deterministic, seed-driven
//! fault injection: kill-after-N-sends, random drops, one-message delays
//! (reordering), and payload truncation. It exists so every recovery path
//! in the master's supervision loop can be exercised in-process under
//! `cargo test` — no sockets, no subprocesses, and the same faults every
//! run (the generator is a seeded [`StdRng`]). The master rank is normally
//! wrapped with a no-op [`ChaosConfig`] so only workers die.

use crate::comm::Envelope;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a blocking [`Transport::recv`] can yield besides a message.
#[derive(Debug)]
pub enum TransportEvent {
    /// A message arrived.
    Envelope(Envelope),
    /// A link closed. `Some(rank)` names the peer whose link died (a
    /// process exit, a stream error, or an injected [`MeshItem::Down`]);
    /// `None` means the whole fabric is gone and no message will ever
    /// arrive again.
    Closed {
        /// The dead peer, when the transport can tell.
        peer: Option<usize>,
    },
    /// A peer delivered bytes that do not parse as a frame. The link is
    /// dead from this point on (resynchronizing inside a corrupt byte
    /// stream is not attempted).
    Malformed {
        /// The offending peer.
        peer: usize,
        /// What failed to parse.
        context: &'static str,
    },
}

/// Moves [`Envelope`]s between ranks. See the [module docs](self) for the
/// contract split between `Endpoint` and the transport.
pub trait Transport {
    /// Best-effort, non-blocking send to rank `to`. Returns `false` when
    /// the envelope could not be handed off (peer gone, stream broken);
    /// the caller accounts such losses as dropped sends.
    fn send(&mut self, to: usize, env: Envelope) -> bool;

    /// Blocks until the next event: a message from any peer, or a link
    /// failure. Ordering per peer is FIFO; ordering across peers is
    /// arrival order.
    fn recv(&mut self) -> TransportEvent;
}

/// One item on an in-process mesh channel: a protocol envelope, or an
/// out-of-band death notification injected by the runtime supervisor (see
/// the [module docs](self)).
#[derive(Debug)]
pub enum MeshItem {
    /// A protocol message.
    Env(Envelope),
    /// "Rank `r` is dead" — surfaced as `Closed { peer: Some(r) }`.
    Down(usize),
}

/// A cloneable handle that injects a death notification into one rank's
/// mesh channel. The in-process runtime hands the master a handle per
/// worker so a worker thread's demise becomes a per-peer closure event,
/// exactly like a broken TCP stream.
#[derive(Clone)]
pub struct DownHandle {
    tx: Sender<MeshItem>,
}

impl DownHandle {
    /// Notifies the handle's owner that `rank` died. Returns `false` when
    /// the owner itself is already gone.
    pub fn notify(&self, rank: usize) -> bool {
        self.tx.send(MeshItem::Down(rank)).is_ok()
    }
}

/// The in-process transport: one unbounded channel per rank, every rank
/// holding a sender to every other. This is exactly the substrate the
/// simulator has always run on, now behind the [`Transport`] seam.
pub struct MeshTransport {
    senders: Vec<Sender<MeshItem>>,
    rx: Receiver<MeshItem>,
}

impl MeshTransport {
    /// Assembles one rank's transport from raw channel halves (tests and
    /// custom topologies; [`MeshTransport::mesh`] is the usual entry).
    pub fn from_channels(senders: Vec<Sender<MeshItem>>, rx: Receiver<MeshItem>) -> MeshTransport {
        MeshTransport { senders, rx }
    }

    /// Builds the full `size`-rank mesh, returning one transport per rank
    /// (index = rank).
    pub fn mesh(size: usize) -> Vec<MeshTransport> {
        let mut txs = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<MeshItem>();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| MeshTransport {
                senders: txs.clone(),
                rx,
            })
            .collect()
    }

    /// A handle that injects death notifications into rank `to`'s channel.
    pub fn down_handle(&self, to: usize) -> DownHandle {
        DownHandle {
            tx: self.senders[to].clone(),
        }
    }
}

impl Transport for MeshTransport {
    fn send(&mut self, to: usize, env: Envelope) -> bool {
        self.senders[to].send(MeshItem::Env(env)).is_ok()
    }

    fn recv(&mut self) -> TransportEvent {
        match self.rx.recv() {
            Ok(MeshItem::Env(env)) => TransportEvent::Envelope(env),
            Ok(MeshItem::Down(rank)) => TransportEvent::Closed { peer: Some(rank) },
            // The mesh shares one channel per receiver, so spontaneous
            // closure is only observable in aggregate: every peer's sender
            // is gone.
            Err(_) => TransportEvent::Closed { peer: None },
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos: deterministic fault injection over any transport.
// ---------------------------------------------------------------------------

/// What faults a [`ChaosTransport`] injects. The default is a no-op (no
/// faults); build up from there. All randomness comes from a seeded
/// generator, so a given config produces the same fault sequence every
/// run.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// After this many successful `send` calls the transport dies: every
    /// later send fails and every later recv reports the fabric closed —
    /// the in-process equivalent of `kill -9` on the rank.
    pub kill_after_sends: Option<u64>,
    /// Probability that a send is silently swallowed (reported delivered,
    /// never arrives).
    pub drop_prob: f64,
    /// Probability that a received envelope is held back until one more
    /// event is delivered — a single-message reorder. Breaks the per-peer
    /// FIFO contract [`crate::comm::Endpoint`] relies on, so this knob is
    /// for transport-level unit tests only.
    pub delay_prob: f64,
    /// Probability that a sent envelope's payload is truncated to half its
    /// length (surfaces as a decode failure at the receiver).
    pub truncate_prob: f64,
    /// Seed for the fault generator.
    pub seed: u64,
}

impl ChaosConfig {
    /// A no-fault config with the given seed.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }

    /// Kills the transport after `n` sends.
    pub fn kill_after_sends(mut self, n: u64) -> Self {
        self.kill_after_sends = Some(n);
        self
    }

    /// Drops each send with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Delays (reorders by one) each received envelope with probability
    /// `p`.
    pub fn delay_prob(mut self, p: f64) -> Self {
        self.delay_prob = p;
        self
    }

    /// Truncates each sent payload with probability `p`.
    pub fn truncate_prob(mut self, p: f64) -> Self {
        self.truncate_prob = p;
        self
    }

    fn is_noop(&self) -> bool {
        self.kill_after_sends.is_none()
            && self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.truncate_prob == 0.0
    }
}

/// Deterministic fault injection over any [`Transport`] (see the
/// [module docs](self)).
pub struct ChaosTransport<T> {
    inner: T,
    cfg: ChaosConfig,
    rng: StdRng,
    sends: u64,
    dead: bool,
    delayed: Option<Envelope>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the faults described by `cfg`.
    pub fn new(inner: T, cfg: ChaosConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        ChaosTransport {
            inner,
            cfg,
            rng,
            sends: 0,
            dead: false,
            delayed: None,
        }
    }

    /// Whether the kill switch has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, to: usize, env: Envelope) -> bool {
        if self.dead {
            return false;
        }
        if let Some(n) = self.cfg.kill_after_sends {
            if self.sends >= n {
                self.dead = true;
                return false;
            }
        }
        self.sends += 1;
        if self.cfg.drop_prob > 0.0 && self.rng.random_bool(self.cfg.drop_prob) {
            return true; // swallowed: "delivered", never arrives
        }
        let env = if self.cfg.truncate_prob > 0.0
            && !env.payload.is_empty()
            && self.rng.random_bool(self.cfg.truncate_prob)
        {
            Envelope {
                payload: env.payload.slice(..env.payload.len() / 2),
                ..env
            }
        } else {
            env
        };
        self.inner.send(to, env)
    }

    fn recv(&mut self) -> TransportEvent {
        if self.dead {
            return TransportEvent::Closed { peer: None };
        }
        if let Some(env) = self.delayed.take() {
            return TransportEvent::Envelope(env);
        }
        match self.inner.recv() {
            TransportEvent::Envelope(env)
                if self.cfg.delay_prob > 0.0 && self.rng.random_bool(self.cfg.delay_prob) =>
            {
                match self.inner.recv() {
                    // Hold the rolled envelope back until after this one
                    // (released from `delayed` on the next recv).
                    TransportEvent::Envelope(next) => {
                        self.delayed = Some(env);
                        TransportEvent::Envelope(next)
                    }
                    // Nothing left to reorder past: deliver in order (a
                    // mesh closure is sticky and re-surfaces next recv).
                    _ => TransportEvent::Envelope(env),
                }
            }
            other => other,
        }
    }
}

/// Wraps `inner` only when `cfg` actually injects faults; a no-op config
/// still wraps (uniform types for callers) but spends no RNG draws.
pub fn maybe_chaos<T: Transport>(inner: T, cfg: Option<ChaosConfig>) -> ChaosTransport<T> {
    match cfg {
        Some(cfg) if !cfg.is_noop() => ChaosTransport::new(inner, cfg),
        _ => ChaosTransport::new(inner, ChaosConfig::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn env(from: usize) -> Envelope {
        Envelope {
            from,
            arrival: 0.0,
            poison: false,
            payload: Bytes::from(b"x".as_slice()),
        }
    }

    fn env_payload(from: usize, payload: &[u8]) -> Envelope {
        Envelope {
            from,
            arrival: 0.0,
            poison: false,
            payload: Bytes::from(payload.to_vec()),
        }
    }

    /// A one-directional rank-0 → rank-1 pair where rank 1 holds no sender
    /// at all, so dropping rank 0's transport closes rank 1's channel (the
    /// full mesh keeps every channel open via each rank's own sender
    /// clone).
    fn one_way_pair() -> (MeshTransport, MeshTransport) {
        let (tx0, rx0) = unbounded::<MeshItem>();
        let (tx1, rx1) = unbounded::<MeshItem>();
        let t0 = MeshTransport::from_channels(vec![tx0, tx1], rx0);
        let t1 = MeshTransport::from_channels(Vec::new(), rx1);
        (t0, t1)
    }

    #[test]
    fn mesh_routes_between_ranks() {
        let mut mesh = MeshTransport::mesh(3);
        let mut t2 = mesh.pop().unwrap();
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        assert!(t0.send(1, env(0)));
        assert!(t2.send(1, env(2)));
        for _ in 0..2 {
            match t1.recv() {
                TransportEvent::Envelope(e) => assert!(e.from == 0 || e.from == 2),
                other => panic!("expected an envelope, got {other:?}"),
            }
        }
    }

    #[test]
    fn send_to_dead_peer_fails() {
        let mut mesh = MeshTransport::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        drop(mesh); // rank 0 exited; its receiver is gone
        assert!(!t1.send(0, env(1)));
    }

    #[test]
    fn down_notification_surfaces_as_per_peer_closure() {
        let mut mesh = MeshTransport::mesh(3);
        let handle = mesh[0].down_handle(0);
        let mut t0 = mesh.remove(0);
        assert!(handle.notify(2));
        match t0.recv() {
            TransportEvent::Closed { peer: Some(2) } => {}
            other => panic!("expected Closed{{Some(2)}}, got {other:?}"),
        }
    }

    #[test]
    fn chaos_kill_after_sends_is_exact() {
        let mesh = MeshTransport::mesh(2);
        let mut it = mesh.into_iter();
        let t0 = it.next().unwrap();
        let _keep = it.next().unwrap(); // keep rank 1's receiver alive
        let mut chaos = ChaosTransport::new(t0, ChaosConfig::new(7).kill_after_sends(3));
        for _ in 0..3 {
            assert!(chaos.send(1, env(0)));
        }
        assert!(!chaos.send(1, env(0)), "send 4 must fail");
        assert!(chaos.is_dead());
        match chaos.recv() {
            TransportEvent::Closed { peer: None } => {}
            other => panic!("dead transport must report fabric closed, got {other:?}"),
        }
    }

    #[test]
    fn chaos_drop_swallows_deterministically() {
        let run = |seed| {
            let (t0, mut t1) = one_way_pair();
            let mut chaos = ChaosTransport::new(t0, ChaosConfig::new(seed).drop_prob(0.5));
            for i in 0..20 {
                assert!(chaos.send(1, env_payload(0, &[i])));
            }
            drop(chaos);
            let mut got = Vec::new();
            loop {
                match t1.recv() {
                    TransportEvent::Envelope(e) => got.push(e.payload.as_slice()[0]),
                    TransportEvent::Closed { .. } => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            got
        };
        let a = run(11);
        assert!(a.len() < 20, "some sends must be dropped");
        assert!(!a.is_empty(), "some sends must survive");
        assert_eq!(a, run(11), "same seed, same fault sequence");
        assert_ne!(a, run(12), "different seed, different faults");
    }

    #[test]
    fn chaos_delay_reorders_by_one() {
        let (mut t0, t1) = one_way_pair();
        for i in 0..6 {
            assert!(t0.send(1, env_payload(0, &[i])));
        }
        drop(t0); // channel closes once the six envelopes drain
        let mut chaos = ChaosTransport::new(t1, ChaosConfig::new(3).delay_prob(1.0));
        let mut got = Vec::new();
        for _ in 0..6 {
            match chaos.recv() {
                TransportEvent::Envelope(e) => got.push(e.payload.as_slice()[0]),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Every envelope rolls a delay, so consecutive pairs swap.
        assert_eq!(got, vec![1, 0, 3, 2, 5, 4]);
    }

    #[test]
    fn chaos_truncation_halves_payloads() {
        let mut mesh = MeshTransport::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        let mut chaos = ChaosTransport::new(t0, ChaosConfig::new(5).truncate_prob(1.0));
        assert!(chaos.send(1, env_payload(0, &[1, 2, 3, 4])));
        match t1.recv() {
            TransportEvent::Envelope(e) => assert_eq!(e.payload.as_slice(), &[1, 2]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn noop_chaos_is_transparent() {
        let mut mesh = MeshTransport::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        let mut chaos = maybe_chaos(t0, None);
        for i in 0..10 {
            assert!(chaos.send(1, env_payload(0, &[i])));
        }
        for i in 0..10 {
            match t1.recv() {
                TransportEvent::Envelope(e) => assert_eq!(e.payload.as_slice(), &[i]),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
