//! The virtual-time model (DESIGN.md §3, substitution 1).
//!
//! The paper measured wall-clock seconds on an 8-CPU Beowulf cluster. This
//! reproduction runs all ranks as threads on one machine, so wall-clock
//! speedup is unmeasurable *by construction*; instead every rank carries a
//! deterministic LogP-style virtual clock:
//!
//! * compute advances a rank's clock by `inference_steps × sec_per_step`
//!   (the provers meter their own steps);
//! * sending costs the sender a fixed overhead `o_send`;
//! * a message's arrival time is
//!   `sender_clock + latency + bytes / bytes_per_sec`;
//! * a receiver's clock becomes `max(own, arrival) + o_recv` before the
//!   message is processed (Lamport max-merge).
//!
//! The master's clock when the run finishes is the reported `T(p)`;
//! speedup is `T(1)/T(p)`. The model preserves exactly the quantities the
//! paper's evaluation varies — compute shrinks with the local subset size,
//! communication grows with pipeline width and `p` — so the *shape* of
//! Tables 2–4 is reproduced; absolute seconds depend on the calibration
//! constant [`CostModel::sec_per_step`].

/// Cost parameters of the simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Seconds of compute per metered inference step (`t_step`).
    pub sec_per_step: f64,
    /// One-way message latency in seconds.
    pub latency: f64,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Sender-side per-message CPU overhead in seconds.
    pub send_overhead: f64,
    /// Receiver-side per-message CPU overhead in seconds.
    pub recv_overhead: f64,
}

impl CostModel {
    /// A 2005-era Beowulf preset: 100 Mbit/s switched Ethernet with
    /// LAM/MPI-like per-message overheads. `sec_per_step` is the single
    /// calibration constant; the default lands the sequential runs of the
    /// paper-scale datasets in the "thousands of seconds" the paper reports.
    pub fn beowulf_2005() -> Self {
        CostModel {
            sec_per_step: 4.0e-5,
            latency: 1.0e-4,
            bytes_per_sec: 12.5e6,
            send_overhead: 2.0e-5,
            recv_overhead: 2.0e-5,
        }
    }

    /// A zero-cost model (logical time only; useful in tests).
    pub fn free() -> Self {
        CostModel {
            sec_per_step: 0.0,
            latency: 0.0,
            bytes_per_sec: f64::INFINITY,
            send_overhead: 0.0,
            recv_overhead: 0.0,
        }
    }

    /// Network transit time for a message of `bytes` bytes.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bytes_per_sec
    }

    /// Compute time for `steps` metered inference steps.
    #[inline]
    pub fn compute_time(&self, steps: u64) -> f64 {
        steps as f64 * self.sec_per_step
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::beowulf_2005()
    }
}

/// A rank's virtual clock (seconds since run start).
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances by `dt` seconds (compute or overhead).
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot go backwards");
        self.now += dt;
    }

    /// Lamport merge: on receipt of a message that arrived at `arrival`,
    /// the clock jumps to the later of the two times.
    #[inline]
    pub fn merge(&mut self, arrival: f64) {
        if arrival > self.now {
            self.now = arrival;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_merges() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        assert_eq!(c.now(), 1.5);
        c.merge(1.0); // earlier arrival: no effect
        assert_eq!(c.now(), 1.5);
        c.merge(2.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = CostModel {
            latency: 0.1,
            bytes_per_sec: 100.0,
            ..CostModel::free()
        };
        assert!((m.transfer_time(50) - 0.6).abs() < 1e-12);
        assert!((m.transfer_time(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn compute_time_scales_with_steps() {
        let m = CostModel {
            sec_per_step: 2.0,
            ..CostModel::free()
        };
        assert_eq!(m.compute_time(3), 6.0);
    }

    #[test]
    fn free_model_is_free() {
        let m = CostModel::free();
        assert_eq!(m.transfer_time(1_000_000), 0.0);
        assert_eq!(m.compute_time(1_000_000), 0.0);
    }
}
