//! Per-link traffic accounting.
//!
//! Every `send` records its exact encoded byte count against the
//! `(from, to)` link. Summing the matrix reproduces the paper's Table 4
//! ("average communication exchanged in MBytes").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe traffic counters for a cluster of `size` ranks.
#[derive(Clone, Debug)]
pub struct TrafficStats {
    size: usize,
    bytes: Arc<Vec<AtomicU64>>,
    messages: Arc<Vec<AtomicU64>>,
    dropped: Arc<Vec<AtomicU64>>,
    /// Bytes/messages sent while the owning endpoint was in its recovery
    /// phase — a *subset* of the matrix above (recovery traffic is real
    /// traffic; these totals let reports state how much of it the
    /// repartition-and-resume protocol added).
    recovery_bytes: Arc<AtomicU64>,
    recovery_messages: Arc<AtomicU64>,
    /// Bytes/messages sent while the owning endpoint was in its constraint
    /// phase (the worker↔worker pruning-constraint exchange of the
    /// constraint-driven search strategy). Like the recovery totals, a
    /// labelled *subset* of the matrix — keeping it split means the
    /// paper-shaped Table-4 numbers can be reported with and without the
    /// strategy's extra traffic.
    constraint_bytes: Arc<AtomicU64>,
    constraint_messages: Arc<AtomicU64>,
}

impl TrafficStats {
    /// Creates zeroed counters for `size` ranks.
    pub fn new(size: usize) -> Self {
        TrafficStats {
            size,
            bytes: Arc::new((0..size * size).map(|_| AtomicU64::new(0)).collect()),
            messages: Arc::new((0..size * size).map(|_| AtomicU64::new(0)).collect()),
            dropped: Arc::new((0..size * size).map(|_| AtomicU64::new(0)).collect()),
            recovery_bytes: Arc::new(AtomicU64::new(0)),
            recovery_messages: Arc::new(AtomicU64::new(0)),
            constraint_bytes: Arc::new(AtomicU64::new(0)),
            constraint_messages: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn idx(&self, from: usize, to: usize) -> usize {
        assert!(from < self.size && to < self.size, "rank out of range");
        from * self.size + to
    }

    /// Records one message of `bytes` bytes on the `(from, to)` link.
    pub fn record(&self, from: usize, to: usize, bytes: usize) {
        let i = self.idx(from, to);
        self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one *dropped* send on the `(from, to)` link: the envelope
    /// was built and accounted, but the transport could not hand it off
    /// (the receiver was gone or the stream broke). A non-zero dropped
    /// count on a run that did not fail is a lost-message bug — it is
    /// surfaced in the run outcome precisely so it cannot stay invisible.
    pub fn record_dropped(&self, from: usize, to: usize) {
        let i = self.idx(from, to);
        self.dropped[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one recovery-phase message of `bytes` bytes (in *addition*
    /// to the normal [`record`](TrafficStats::record) for the link — the
    /// recovery totals are a labelled subset, not a separate matrix).
    pub fn record_recovery(&self, bytes: usize) {
        self.recovery_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.recovery_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes sent during recovery phases.
    pub fn recovery_bytes(&self) -> u64 {
        self.recovery_bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent during recovery phases.
    pub fn recovery_messages(&self) -> u64 {
        self.recovery_messages.load(Ordering::Relaxed)
    }

    /// Merges recovery totals reported by another process.
    pub fn absorb_recovery(&self, bytes: u64, messages: u64) {
        self.recovery_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.recovery_messages
            .fetch_add(messages, Ordering::Relaxed);
    }

    /// Tallies one constraint-phase message of `bytes` bytes (in *addition*
    /// to the normal [`record`](TrafficStats::record) for the link — like
    /// the recovery totals, a labelled subset, not a separate matrix).
    pub fn record_constraint(&self, bytes: usize) {
        self.constraint_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.constraint_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes sent during constraint phases.
    pub fn constraint_bytes(&self) -> u64 {
        self.constraint_bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent during constraint phases.
    pub fn constraint_messages(&self) -> u64 {
        self.constraint_messages.load(Ordering::Relaxed)
    }

    /// Merges constraint totals reported by another process.
    pub fn absorb_constraint(&self, bytes: u64, messages: u64) {
        self.constraint_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.constraint_messages
            .fetch_add(messages, Ordering::Relaxed);
    }

    /// Bytes sent on a specific link.
    pub fn bytes_between(&self, from: usize, to: usize) -> u64 {
        self.bytes[self.idx(from, to)].load(Ordering::Relaxed)
    }

    /// Dropped sends on a specific link.
    pub fn dropped_between(&self, from: usize, to: usize) -> u64 {
        self.dropped[self.idx(from, to)].load(Ordering::Relaxed)
    }

    /// Messages sent on a specific link.
    pub fn messages_between(&self, from: usize, to: usize) -> u64 {
        self.messages[self.idx(from, to)].load(Ordering::Relaxed)
    }

    /// Total bytes over all links.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total messages over all links.
    pub fn total_messages(&self) -> u64 {
        self.messages
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total traffic in megabytes (10^6 bytes, as the paper reports).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes() as f64 / 1.0e6
    }

    /// Total dropped sends over all links.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// A plain snapshot of the byte matrix (`[from][to]`).
    pub fn byte_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.size)
            .map(|f| (0..self.size).map(|t| self.bytes_between(f, t)).collect())
            .collect()
    }

    /// One rank's send row as plain `(bytes, messages, dropped)` triples —
    /// what a worker *process* reports back to the master at shutdown so
    /// the master's statistics cover the whole cluster, not just its own
    /// links (each process only ever records its own sends).
    pub fn send_row(&self, from: usize) -> Vec<(u64, u64, u64)> {
        (0..self.size)
            .map(|to| {
                let i = self.idx(from, to);
                (
                    self.bytes[i].load(Ordering::Relaxed),
                    self.messages[i].load(Ordering::Relaxed),
                    self.dropped[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Merges a send row reported by another process (see [`send_row`];
    /// counters add, so merging the same row twice double-counts).
    ///
    /// [`send_row`]: TrafficStats::send_row
    pub fn absorb_row(&self, from: usize, row: &[(u64, u64, u64)]) {
        assert!(row.len() <= self.size, "row wider than the cluster");
        for (to, (b, m, d)) in row.iter().enumerate() {
            let i = self.idx(from, to);
            self.bytes[i].fetch_add(*b, Ordering::Relaxed);
            self.messages[i].fetch_add(*m, Ordering::Relaxed);
            self.dropped[i].fetch_add(*d, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = TrafficStats::new(3);
        s.record(0, 1, 100);
        s.record(0, 1, 50);
        s.record(2, 0, 7);
        assert_eq!(s.bytes_between(0, 1), 150);
        assert_eq!(s.messages_between(0, 1), 2);
        assert_eq!(s.bytes_between(1, 0), 0);
        assert_eq!(s.total_bytes(), 157);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn megabytes_use_decimal_units() {
        let s = TrafficStats::new(2);
        s.record(0, 1, 2_500_000);
        assert!((s.total_megabytes() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_snapshot_matches() {
        let s = TrafficStats::new(2);
        s.record(1, 0, 9);
        assert_eq!(s.byte_matrix(), vec![vec![0, 0], vec![9, 0]]);
    }

    #[test]
    fn clones_share_counters() {
        let s = TrafficStats::new(2);
        let s2 = s.clone();
        s2.record(0, 1, 4);
        assert_eq!(s.total_bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_panics() {
        TrafficStats::new(2).record(0, 2, 1);
    }

    #[test]
    fn dropped_sends_are_counted_separately() {
        let s = TrafficStats::new(2);
        s.record(0, 1, 10);
        s.record_dropped(0, 1);
        assert_eq!(s.dropped_between(0, 1), 1);
        assert_eq!(s.dropped_between(1, 0), 0);
        assert_eq!(s.total_dropped(), 1);
        // Dropped sends do not perturb the byte/message counters.
        assert_eq!(s.total_bytes(), 10);
        assert_eq!(s.total_messages(), 1);
    }

    #[test]
    fn recovery_totals_are_a_labelled_subset() {
        let s = TrafficStats::new(2);
        s.record(0, 1, 10);
        s.record_recovery(10);
        s.record(0, 1, 5);
        assert_eq!(s.recovery_bytes(), 10);
        assert_eq!(s.recovery_messages(), 1);
        // Recovery traffic is still counted in the matrix totals.
        assert_eq!(s.total_bytes(), 15);
        s.absorb_recovery(3, 2);
        assert_eq!(s.recovery_bytes(), 13);
        assert_eq!(s.recovery_messages(), 3);
    }

    #[test]
    fn constraint_totals_are_a_labelled_subset() {
        let s = TrafficStats::new(2);
        s.record(0, 1, 8);
        s.record_constraint(8);
        s.record(0, 1, 5);
        assert_eq!(s.constraint_bytes(), 8);
        assert_eq!(s.constraint_messages(), 1);
        // Constraint traffic is still counted in the matrix totals, and it
        // never bleeds into the recovery subset.
        assert_eq!(s.total_bytes(), 13);
        assert_eq!(s.recovery_bytes(), 0);
        s.absorb_constraint(4, 2);
        assert_eq!(s.constraint_bytes(), 12);
        assert_eq!(s.constraint_messages(), 3);
    }

    #[test]
    fn rows_roundtrip_across_processes() {
        let worker = TrafficStats::new(3);
        worker.record(1, 0, 100);
        worker.record(1, 2, 7);
        worker.record_dropped(1, 2);
        let master = TrafficStats::new(3);
        master.record(0, 1, 40);
        master.absorb_row(1, &worker.send_row(1));
        assert_eq!(master.bytes_between(1, 0), 100);
        assert_eq!(master.bytes_between(1, 2), 7);
        assert_eq!(master.dropped_between(1, 2), 1);
        assert_eq!(master.total_bytes(), 147);
        assert_eq!(master.total_messages(), 3);
    }
}
