//! The cluster harness: spawn `p` worker threads plus the master, wire up
//! the channel mesh, run both closures, and collect timing + traffic.
//!
//! This is the *in-process* runtime — ranks are threads, links are
//! channels, and it is the default because it is the fastest way to run a
//! whole simulated cluster. The multi-process runtime over real sockets
//! lives in [`crate::net`] (`run_cluster_tcp`); both produce the same
//! [`ClusterOutcome`].

use crate::comm::{CommFailure, Endpoint, Poisoned};
use crate::stats::TrafficStats;
use crate::transport::{DownHandle, MeshTransport, Transport};
use crate::vtime::CostModel;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Everything a finished cluster run reports.
#[derive(Debug)]
pub struct ClusterOutcome<R> {
    /// The master closure's return value.
    pub result: R,
    /// Virtual time at the master when it finished — the paper's `T(p)`.
    pub master_vtime: f64,
    /// Final virtual clocks of the workers (ranks 1..=p).
    pub worker_vtimes: Vec<f64>,
    /// Metered compute steps charged at the master.
    pub master_steps: u64,
    /// Metered compute steps per worker.
    pub worker_steps: Vec<u64>,
    /// Per-link traffic counters.
    pub stats: TrafficStats,
    /// Sends the transport could not deliver (receiver already gone). A
    /// clean run has zero; a non-zero count on a run that "succeeded" is a
    /// lost-message bug surfaced instead of swallowed.
    pub dropped_sends: u64,
}

/// A cluster run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// A worker rank panicked; the message is the panic payload when it was
    /// a string.
    WorkerPanicked {
        /// The panicking rank.
        rank: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// The master's protocol failed receiving from a peer (link died or a
    /// frame would not parse) — the multi-process analogue of a worker
    /// vanishing.
    Comm {
        /// The peer rank at fault.
        rank: usize,
        /// Rank-tagged diagnosis.
        message: String,
    },
    /// Cluster setup failed (bind, spawn, or rendezvous handshake).
    Net {
        /// What went wrong.
        message: String,
    },
    /// A worker OS process died or exited abnormally.
    WorkerProcess {
        /// The worker rank.
        rank: usize,
        /// Exit status / stderr diagnosis.
        message: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::WorkerPanicked { rank, message } => {
                write!(f, "worker rank {rank} panicked: {message}")
            }
            ClusterError::Comm { rank, message } => {
                write!(f, "communication with rank {rank} failed: {message}")
            }
            ClusterError::Net { message } => write!(f, "cluster setup failed: {message}"),
            ClusterError::WorkerProcess { rank, message } => {
                write!(f, "worker process rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Surfaces a non-zero dropped-send count at run end: as a structured
/// `dropped_sends_warning` event on the master's trace when a session is
/// active, and on stderr otherwise — either way the loss is never silent.
/// Shared by the in-process and TCP runtimes.
pub(crate) fn warn_dropped_sends(dropped: u64, master_vtime: f64) {
    if dropped == 0 {
        return;
    }
    let tracer = p2mdie_obs::Tracer::for_rank(0);
    if tracer.on() {
        p2mdie_obs::event!(
            tracer,
            "dropped_sends_warning",
            master_vtime,
            dropped = dropped
        );
    } else {
        eprintln!(
            "warning: cluster run finished with {dropped} dropped send(s) — \
             messages the transport could not deliver (receiver gone?)"
        );
    }
}

pub(crate) fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(p) = e.downcast_ref::<Poisoned>() {
        return format!("poisoned by rank {}", p.origin);
    }
    if let Some(cf) = e.downcast_ref::<CommFailure>() {
        return cf.to_string();
    }
    if let Some(s) = e.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = e.downcast_ref::<String>() {
        return s.clone();
    }
    "<non-string panic payload>".to_owned()
}

/// Runs a master–worker cluster of `workers` worker ranks (total ranks =
/// `workers + 1`; rank 0 is the master, which runs on the calling thread).
///
/// Worker panics are caught, propagated as poison so no rank deadlocks, and
/// surfaced as [`ClusterError::WorkerPanicked`]. A master panic unrelated to
/// a worker failure resumes unwinding.
pub fn run_cluster<R: Send>(
    workers: usize,
    model: CostModel,
    master: impl FnOnce(&mut Endpoint) -> R + Send,
    worker: impl Fn(&mut Endpoint) + Send + Sync,
) -> Result<ClusterOutcome<R>, ClusterError> {
    run_cluster_with(workers, model, false, |_, t| t, master, worker)
}

/// [`run_cluster`] with two extra knobs for the self-healing runtime:
///
/// * `wrap` turns each rank's raw [`MeshTransport`] into the transport the
///   endpoints actually run on (identity for normal runs; a
///   [`crate::transport::ChaosTransport`] for fault-injection tests).
/// * `recovery` switches the failure discipline from *abort* to *event*:
///   a worker panic no longer poisons the cluster — instead the runtime
///   injects a death notification into the master's channel (surfacing as
///   `Closed { peer }` there, exactly like a broken TCP link), and the
///   master's supervision loop decides what to do. When the master closure
///   completes despite losses, worker panics are *not* surfaced as run
///   errors; when it gives up with a [`CommFailure`] panic (loss budget
///   exhausted), that failure maps to [`ClusterError::Comm`].
pub fn run_cluster_with<T: Transport + Send, R: Send>(
    workers: usize,
    model: CostModel,
    recovery: bool,
    wrap: impl Fn(usize, MeshTransport) -> T,
    master: impl FnOnce(&mut Endpoint<T>) -> R + Send,
    worker: impl Fn(&mut Endpoint<T>) + Send + Sync,
) -> Result<ClusterOutcome<R>, ClusterError> {
    assert!(workers >= 1, "need at least one worker");
    let size = workers + 1;
    let stats = TrafficStats::new(size);

    let meshes = MeshTransport::mesh(size);
    let to_master: Vec<DownHandle> = meshes.iter().map(|t| t.down_handle(0)).collect();
    let mut endpoints: Vec<(Endpoint<T>, DownHandle)> = meshes
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let ep = Endpoint::from_parts(rank, size, wrap(rank, t), model, stats.clone());
            (ep, to_master[rank].clone())
        })
        .collect();

    // Worker thread body: run, catch panics, report (vtime, steps, panic
    // message) back through the join handle. On failure, either poison the
    // whole cluster (abort mode) or notify the master of this rank's death
    // (recovery mode).
    type WorkerRecord = (f64, u64, Option<String>);
    let run_worker = |mut ep: Endpoint<T>, down: DownHandle| -> WorkerRecord {
        let r = catch_unwind(AssertUnwindSafe(|| worker(&mut ep)));
        let failure = r.err().and_then(|e| {
            // A `Poisoned` panic is a secondary victim of another rank's
            // failure, not a root cause: don't report it, don't re-poison.
            if e.downcast_ref::<Poisoned>().is_some() {
                return None;
            }
            let msg = panic_message(&*e);
            if recovery {
                down.notify(ep.rank());
            } else {
                ep.broadcast_poison();
            }
            Some(msg)
        });
        (ep.now(), ep.compute_steps(), failure)
    };

    let (mut master_ep, _) = endpoints.remove(0);
    let (master_result, records) = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|(ep, down)| scope.spawn(|| run_worker(ep, down)))
            .collect();
        let master_result = catch_unwind(AssertUnwindSafe(|| master(&mut master_ep)));
        if master_result.is_err() {
            master_ep.broadcast_poison();
        }
        let records: Vec<WorkerRecord> = handles
            .into_iter()
            .map(|h| h.join().expect("worker report"))
            .collect();
        (master_result, records)
    });

    // Abort mode: surface the first worker failure (rank order) as the run
    // error. Recovery mode: worker deaths the master survived are part of
    // the outcome, not errors.
    if !recovery {
        for (i, (_, _, failure)) in records.iter().enumerate() {
            if let Some(msg) = failure {
                return Err(ClusterError::WorkerPanicked {
                    rank: i + 1,
                    message: msg.clone(),
                });
            }
        }
    }
    let result = match master_result {
        Ok(r) => r,
        Err(e) => {
            if recovery {
                if let Some(cf) = e.downcast_ref::<CommFailure>() {
                    return Err(ClusterError::Comm {
                        rank: cf.from,
                        message: cf.to_string(),
                    });
                }
            }
            // No worker failed, so this is the master's own bug: keep
            // unwinding.
            std::panic::resume_unwind(e)
        }
    };

    warn_dropped_sends(stats.total_dropped(), master_ep.now());
    Ok(ClusterOutcome {
        result,
        master_vtime: master_ep.now(),
        worker_vtimes: records.iter().map(|r| r.0).collect(),
        master_steps: master_ep.compute_steps(),
        worker_steps: records.iter().map(|r| r.1).collect(),
        dropped_sends: stats.total_dropped(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::from_bytes;

    #[test]
    fn ping_pong_round_trip() {
        let model = CostModel {
            latency: 0.5,
            ..CostModel::free()
        };
        let out = run_cluster(
            2,
            model,
            |ep| {
                ep.send(1, &7u64);
                ep.send(2, &9u64);
                let a: u64 = ep.recv_msg(1).unwrap();
                let b: u64 = ep.recv_msg(2).unwrap();
                (a, b)
            },
            |ep| {
                let x: u64 = ep.recv_msg(0).unwrap();
                ep.send(0, &(x * 10));
            },
        )
        .unwrap();
        assert_eq!(out.result, (70, 90));
        // Two hops of 0.5s latency each.
        assert!(out.master_vtime >= 1.0);
        assert_eq!(out.stats.total_messages(), 4);
        assert_eq!(out.stats.total_bytes(), 4 * 8);
        assert_eq!(out.dropped_sends, 0, "clean runs drop nothing");
    }

    #[test]
    fn recv_from_buffers_out_of_order_sources() {
        let out = run_cluster(
            2,
            CostModel::free(),
            |ep| {
                // Ask for rank 2's message first even though rank 1's may
                // arrive earlier.
                let b: u32 = ep.recv_msg(2).unwrap();
                let a: u32 = ep.recv_msg(1).unwrap();
                (a, b)
            },
            |ep| {
                let rank = ep.rank() as u32;
                ep.send(0, &rank);
            },
        )
        .unwrap();
        assert_eq!(out.result, (1, 2));
    }

    #[test]
    fn virtual_time_uses_lamport_merge() {
        let model = CostModel {
            sec_per_step: 1.0,
            latency: 10.0,
            ..CostModel::free()
        };
        let out = run_cluster(
            1,
            model,
            |ep| {
                ep.send(1, &1u8);
                let _: u8 = ep.recv_msg(1).unwrap();
                ep.now()
            },
            |ep| {
                let _: u8 = ep.recv_msg(0).unwrap();
                ep.advance_steps(5);
                ep.send(0, &1u8);
            },
        )
        .unwrap();
        // Master: send at 0, arrival at worker ≈10, +5 compute, +10 back.
        assert!((out.result - 25.0).abs() < 1e-9, "got {}", out.result);
        assert_eq!(out.worker_steps, vec![5]);
        assert_eq!(out.master_steps, 0);
    }

    #[test]
    fn broadcast_reaches_every_worker_and_is_counted_per_link() {
        let out = run_cluster(
            3,
            CostModel::free(),
            |ep| {
                ep.broadcast(&123u32);
                for w in 1..=3 {
                    let _: u32 = ep.recv_msg(w).unwrap();
                }
            },
            |ep| {
                let v: u32 = ep.recv_msg(0).unwrap();
                assert_eq!(v, 123);
                ep.send(0, &v);
            },
        )
        .unwrap();
        for w in 1..=3 {
            assert_eq!(out.stats.bytes_between(0, w), 4);
            assert_eq!(out.stats.bytes_between(w, 0), 4);
        }
    }

    #[test]
    fn worker_panic_is_surfaced_not_deadlocked() {
        let err = run_cluster(
            2,
            CostModel::free(),
            |ep| {
                // Master waits forever for a message that never comes; the
                // poison must wake it up.
                let _ = ep.recv_from(1);
            },
            |ep| {
                if ep.rank() == 2 {
                    panic!("injected failure");
                }
                // Rank 1 also blocks; poison must wake it too.
                let _ = ep.recv_from(0);
            },
        )
        .unwrap_err();
        match err {
            ClusterError::WorkerPanicked { rank, message } => {
                assert_eq!(rank, 2);
                assert!(message.contains("injected failure"));
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
    }

    #[test]
    fn undecodable_message_is_an_error_value() {
        let out = run_cluster(
            1,
            CostModel::free(),
            |ep| {
                ep.send(1, &0xFFu8); // one byte, not a valid u64
                let ok: bool = ep.recv_msg(1).unwrap();
                ok
            },
            |ep| {
                let raw = ep.recv_from(0).unwrap();
                let failed = from_bytes::<u64>(raw).is_err();
                ep.send(0, &failed);
            },
        )
        .unwrap();
        assert!(out.result);
    }

    #[test]
    fn worker_clocks_are_reported() {
        let model = CostModel {
            sec_per_step: 2.0,
            ..CostModel::free()
        };
        let out = run_cluster(
            2,
            model,
            |ep| {
                for w in 1..=2 {
                    let _: u8 = ep.recv_msg(w).unwrap();
                }
            },
            |ep| {
                ep.advance_steps(ep.rank() as u64);
                ep.send(0, &1u8);
            },
        )
        .unwrap();
        assert!((out.worker_vtimes[0] - 2.0).abs() < 1e-9);
        assert!((out.worker_vtimes[1] - 4.0).abs() < 1e-9);
    }
}
