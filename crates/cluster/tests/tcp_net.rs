//! Socket-level tests of the TCP transport: the rendezvous handshake, the
//! worker-to-worker mesh, virtual-time carriage in frames, poison
//! propagation across the "process" boundary (threads with real sockets
//! here; real processes are exercised in `crates/core/tests/`), and
//! dead-link surfacing.

use p2mdie_cluster::comm::{Endpoint, LinkFault, Poisoned};
use p2mdie_cluster::net::{worker_connect, MasterRendezvous, TcpTransport, WorkerReport};
use p2mdie_cluster::{CostModel, TrafficStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

/// Spins up a real TCP mesh of `workers` worker threads plus the master on
/// the calling thread.
fn tcp_mesh<R: Send>(
    workers: usize,
    model: CostModel,
    master: impl FnOnce(&mut Endpoint<TcpTransport>) -> R + Send,
    worker: impl Fn(&mut Endpoint<TcpTransport>) + Send + Sync,
) -> R {
    let rendezvous = MasterRendezvous::bind("127.0.0.1:0").unwrap();
    let addr = rendezvous.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        for rank in 1..=workers {
            let addr = addr.clone();
            let worker = &worker;
            scope.spawn(move || {
                let (transport, model) = worker_connect(&addr, rank, TIMEOUT).unwrap();
                let size = transport.size();
                let mut ep =
                    Endpoint::from_parts(rank, size, transport, model, TrafficStats::new(size));
                let r = catch_unwind(AssertUnwindSafe(|| worker(&mut ep)));
                if let Err(e) = r {
                    if e.downcast_ref::<Poisoned>().is_none() {
                        ep.broadcast_poison();
                    }
                }
            });
        }
        let transport = rendezvous.accept_workers(workers, model, TIMEOUT).unwrap();
        let size = workers + 1;
        let mut ep = Endpoint::from_parts(0, size, transport, model, TrafficStats::new(size));
        master(&mut ep)
    })
}

/// Master ↔ workers and worker ↔ worker links all carry traffic, sources
/// are buffered per rank, and the Lamport clocks merge the same values the
/// in-process mesh would (latency model applied at the sender).
#[test]
fn rendezvous_builds_a_full_mesh_with_virtual_time() {
    let model = CostModel {
        latency: 0.25,
        ..CostModel::free()
    };
    let t_master = tcp_mesh(
        3,
        model,
        |ep| {
            for k in 1..=3 {
                ep.send(k, &(k as u64 * 100));
            }
            // Receive in reverse order to exercise the pending buffers.
            for k in (1..=3).rev() {
                let v: u64 = ep.recv_msg(k).unwrap();
                assert_eq!(v, k as u64 * 100 + k as u64);
            }
            ep.now()
        },
        |ep| {
            let me = ep.rank();
            let v: u64 = ep.recv_msg(0).unwrap();
            // Ring hop: pass it through the worker mesh before answering.
            let next = me % 3 + 1;
            let prev = if me == 1 { 3 } else { me - 1 };
            ep.send(next, &v);
            let w: u64 = ep.recv_msg(prev).unwrap();
            assert_eq!(w, prev as u64 * 100);
            ep.send(0, &(me as u64 * 100 + me as u64));
        },
    );
    // Master sent at t=0; answers needed ≥ 3 hops of 0.25s latency.
    assert!(t_master >= 0.75, "master clock {t_master} missed the hops");
}

/// A worker panic must poison every rank across the sockets: the master's
/// blocking receive unwinds with `Poisoned { origin }` instead of hanging.
#[test]
fn poison_propagates_across_sockets() {
    let caught = tcp_mesh(
        2,
        CostModel::free(),
        |ep| {
            let r = catch_unwind(AssertUnwindSafe(|| ep.recv_from(1)));
            match r {
                Err(e) => match e.downcast_ref::<Poisoned>() {
                    Some(p) => p.origin,
                    None => panic!("master unwound without poison"),
                },
                Ok(x) => panic!("expected poison, got {x:?}"),
            }
        },
        |ep| {
            if ep.rank() == 2 {
                panic!("injected worker failure");
            }
            // Rank 1 blocks on the master; poison from rank 2 must wake it
            // (the catch in tcp_mesh swallows the secondary Poisoned).
            let _ = ep.recv_from(0);
        },
    );
    assert_eq!(caught, 2, "poison must name the failing rank");
}

/// A worker that exits without `Stop` or poison surfaces as a rank-tagged
/// `RecvError` with `LinkFault::Closed` at the master — not a hang.
#[test]
fn early_exit_surfaces_as_closed_link() {
    tcp_mesh(
        2,
        CostModel::free(),
        |ep| {
            // Rank 1 stays healthy and answers; rank 2 just leaves.
            let v: u32 = ep.recv_msg(1).unwrap();
            assert_eq!(v, 11);
            let err = ep.recv_from(2).unwrap_err();
            assert_eq!((err.rank, err.from, err.fault), (0, 2, LinkFault::Closed));
            // Rank 1's link is unaffected.
            ep.send(1, &1u32);
        },
        |ep| {
            if ep.rank() == 1 {
                ep.send(0, &11u32);
                let _: u32 = ep.recv_msg(0).unwrap();
            }
            // Rank 2 exits immediately: its streams close.
        },
    );
}

/// Garbage bytes on a link surface as `LinkFault::Malformed` naming the
/// offending peer, and the shutdown report still travels on healthy links.
#[test]
fn malformed_bytes_surface_as_malformed_link() {
    tcp_mesh(
        2,
        CostModel::free(),
        |ep| {
            let err = ep.recv_from(2).unwrap_err();
            assert_eq!((err.rank, err.from), (0, 2));
            assert!(
                matches!(err.fault, LinkFault::Malformed(_)),
                "got {:?}",
                err.fault
            );
            // Collect rank 1's report to prove healthy links survive.
            let _: u32 = ep.recv_msg(1).unwrap();
            ep.send(1, &0u8);
            let reports = ep.transport_mut().collect_reports(TIMEOUT).to_vec();
            assert!(reports[1].is_some(), "healthy rank 1 reported");
        },
        |ep| {
            if ep.rank() == 2 {
                // A length prefix far beyond MAX_FRAME.
                ep.transport_mut()
                    .send_raw_bytes(0, &0xFFFF_FFFFu32.to_le_bytes());
                return;
            }
            ep.send(0, &7u32);
            let _: u8 = ep.recv_msg(0).unwrap();
            let report = WorkerReport {
                vtime: ep.now(),
                steps: ep.compute_steps(),
                sends: ep.stats().send_row(ep.rank()),
            };
            assert!(ep.transport_mut().send_report(&report));
        },
    );
}

/// Worker reports carry the clocks, steps, and traffic rows the master
/// needs to reconstruct whole-cluster statistics.
#[test]
fn shutdown_reports_reach_the_master() {
    let model = CostModel {
        sec_per_step: 1.0,
        ..CostModel::free()
    };
    tcp_mesh(
        2,
        model,
        |ep| {
            for k in 1..=2 {
                let _: u64 = ep.recv_msg(k).unwrap();
            }
            ep.broadcast(&0u8);
            let reports = ep.transport_mut().collect_reports(TIMEOUT).to_vec();
            let stats = ep.stats().clone();
            for (k, slot) in reports.iter().enumerate().skip(1) {
                let rep = slot.as_ref().expect("report arrived");
                assert_eq!(rep.steps, k as u64 * 3);
                assert!(rep.vtime >= rep.steps as f64);
                stats.absorb_row(k, &rep.sends);
            }
            // Master broadcast (2 msgs) + one answer per worker = 4 total.
            assert_eq!(stats.total_messages(), 4);
            assert_eq!(stats.dropped_between(1, 0), 0);
        },
        |ep| {
            let me = ep.rank();
            ep.advance_steps(me as u64 * 3);
            ep.send(0, &(me as u64));
            let _: u8 = ep.recv_msg(0).unwrap();
            let report = WorkerReport {
                vtime: ep.now(),
                steps: ep.compute_steps(),
                sends: ep.stats().send_row(me),
            };
            assert!(ep.transport_mut().send_report(&report));
        },
    );
}
