//! Socket-level tests of the TCP transport: the rendezvous handshake, the
//! worker-to-worker mesh, virtual-time carriage in frames, poison
//! propagation across the "process" boundary (threads with real sockets
//! here; real processes are exercised in `crates/core/tests/`), and
//! dead-link surfacing.

use p2mdie_cluster::comm::{Endpoint, LinkFault, Poisoned};
use p2mdie_cluster::net::{worker_connect, MasterRendezvous, TcpTransport, WorkerReport};
use p2mdie_cluster::{CostModel, TrafficStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

/// Spins up a real TCP mesh of `workers` worker threads plus the master on
/// the calling thread.
fn tcp_mesh<R: Send>(
    workers: usize,
    model: CostModel,
    master: impl FnOnce(&mut Endpoint<TcpTransport>) -> R + Send,
    worker: impl Fn(&mut Endpoint<TcpTransport>) + Send + Sync,
) -> R {
    let rendezvous = MasterRendezvous::bind("127.0.0.1:0").unwrap();
    let addr = rendezvous.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        for rank in 1..=workers {
            let addr = addr.clone();
            let worker = &worker;
            scope.spawn(move || {
                let (transport, model) = worker_connect(&addr, rank, TIMEOUT).unwrap();
                let size = transport.size();
                let mut ep =
                    Endpoint::from_parts(rank, size, transport, model, TrafficStats::new(size));
                let r = catch_unwind(AssertUnwindSafe(|| worker(&mut ep)));
                if let Err(e) = r {
                    if e.downcast_ref::<Poisoned>().is_none() {
                        ep.broadcast_poison();
                    }
                }
            });
        }
        let transport = rendezvous.accept_workers(workers, model, TIMEOUT).unwrap();
        let size = workers + 1;
        let mut ep = Endpoint::from_parts(0, size, transport, model, TrafficStats::new(size));
        master(&mut ep)
    })
}

/// Master ↔ workers and worker ↔ worker links all carry traffic, sources
/// are buffered per rank, and the Lamport clocks merge the same values the
/// in-process mesh would (latency model applied at the sender).
#[test]
fn rendezvous_builds_a_full_mesh_with_virtual_time() {
    let model = CostModel {
        latency: 0.25,
        ..CostModel::free()
    };
    let t_master = tcp_mesh(
        3,
        model,
        |ep| {
            for k in 1..=3 {
                ep.send(k, &(k as u64 * 100));
            }
            // Receive in reverse order to exercise the pending buffers.
            for k in (1..=3).rev() {
                let v: u64 = ep.recv_msg(k).unwrap();
                assert_eq!(v, k as u64 * 100 + k as u64);
            }
            ep.now()
        },
        |ep| {
            let me = ep.rank();
            let v: u64 = ep.recv_msg(0).unwrap();
            // Ring hop: pass it through the worker mesh before answering.
            let next = me % 3 + 1;
            let prev = if me == 1 { 3 } else { me - 1 };
            ep.send(next, &v);
            let w: u64 = ep.recv_msg(prev).unwrap();
            assert_eq!(w, prev as u64 * 100);
            ep.send(0, &(me as u64 * 100 + me as u64));
        },
    );
    // Master sent at t=0; answers needed ≥ 3 hops of 0.25s latency.
    assert!(t_master >= 0.75, "master clock {t_master} missed the hops");
}

/// A worker panic must poison every rank across the sockets: the master's
/// blocking receive unwinds with `Poisoned { origin }` instead of hanging.
#[test]
fn poison_propagates_across_sockets() {
    let caught = tcp_mesh(
        2,
        CostModel::free(),
        |ep| {
            // Block on the *failing* rank: its link carries the poison
            // frame before the stream close (per-link FIFO), so the master
            // deterministically unwinds poisoned. (Blocking on rank 1
            // instead would race poison-from-2 against closed-1 — rank 1
            // exits as soon as the poison reaches *it* — and sometimes
            // surface the benign-but-different `LinkFault::Closed`; rank 1
            // below still covers being woken while blocked on another
            // peer.)
            let r = catch_unwind(AssertUnwindSafe(|| ep.recv_from(2)));
            match r {
                Err(e) => match e.downcast_ref::<Poisoned>() {
                    Some(p) => p.origin,
                    None => panic!("master unwound without poison"),
                },
                Ok(x) => panic!("expected poison, got {x:?}"),
            }
        },
        |ep| {
            if ep.rank() == 2 {
                panic!("injected worker failure");
            }
            // Rank 1 blocks on the master; poison from rank 2 must wake it
            // (the catch in tcp_mesh swallows the secondary Poisoned).
            let _ = ep.recv_from(0);
        },
    );
    assert_eq!(caught, 2, "poison must name the failing rank");
}

/// A worker that exits without `Stop` or poison surfaces as a rank-tagged
/// `RecvError` with `LinkFault::Closed` at the master — not a hang.
#[test]
fn early_exit_surfaces_as_closed_link() {
    tcp_mesh(
        2,
        CostModel::free(),
        |ep| {
            // Rank 1 stays healthy and answers; rank 2 just leaves.
            let v: u32 = ep.recv_msg(1).unwrap();
            assert_eq!(v, 11);
            let err = ep.recv_from(2).unwrap_err();
            assert_eq!((err.rank, err.from, err.fault), (0, 2, LinkFault::Closed));
            // Rank 1's link is unaffected.
            ep.send(1, &1u32);
        },
        |ep| {
            if ep.rank() == 1 {
                ep.send(0, &11u32);
                let _: u32 = ep.recv_msg(0).unwrap();
            }
            // Rank 2 exits immediately: its streams close.
        },
    );
}

/// Garbage bytes on a link surface as `LinkFault::Malformed` naming the
/// offending peer, and the shutdown report still travels on healthy links.
#[test]
fn malformed_bytes_surface_as_malformed_link() {
    tcp_mesh(
        2,
        CostModel::free(),
        |ep| {
            let err = ep.recv_from(2).unwrap_err();
            assert_eq!((err.rank, err.from), (0, 2));
            assert!(
                matches!(err.fault, LinkFault::Malformed(_)),
                "got {:?}",
                err.fault
            );
            // Collect rank 1's report to prove healthy links survive.
            let _: u32 = ep.recv_msg(1).unwrap();
            ep.send(1, &0u8);
            let reports = ep.transport_mut().collect_reports(TIMEOUT).to_vec();
            assert!(reports[1].is_some(), "healthy rank 1 reported");
        },
        |ep| {
            if ep.rank() == 2 {
                // A length prefix far beyond MAX_FRAME.
                ep.transport_mut()
                    .send_raw_bytes(0, &0xFFFF_FFFFu32.to_le_bytes());
                return;
            }
            ep.send(0, &7u32);
            let _: u8 = ep.recv_msg(0).unwrap();
            let report = WorkerReport {
                vtime: ep.now(),
                steps: ep.compute_steps(),
                sends: ep.stats().send_row(ep.rank()),
                recovery_bytes: 0,
                recovery_messages: 0,
                constraint_bytes: 0,
                constraint_messages: 0,
            };
            assert!(ep.transport_mut().send_report(&report));
        },
    );
}

/// Worker reports carry the clocks, steps, and traffic rows the master
/// needs to reconstruct whole-cluster statistics.
#[test]
fn shutdown_reports_reach_the_master() {
    let model = CostModel {
        sec_per_step: 1.0,
        ..CostModel::free()
    };
    tcp_mesh(
        2,
        model,
        |ep| {
            for k in 1..=2 {
                let _: u64 = ep.recv_msg(k).unwrap();
            }
            ep.broadcast(&0u8);
            let reports = ep.transport_mut().collect_reports(TIMEOUT).to_vec();
            let stats = ep.stats().clone();
            for (k, slot) in reports.iter().enumerate().skip(1) {
                let rep = slot.as_ref().expect("report arrived");
                assert_eq!(rep.steps, k as u64 * 3);
                assert!(rep.vtime >= rep.steps as f64);
                stats.absorb_row(k, &rep.sends);
            }
            // Master broadcast (2 msgs) + one answer per worker = 4 total.
            assert_eq!(stats.total_messages(), 4);
            assert_eq!(stats.dropped_between(1, 0), 0);
        },
        |ep| {
            let me = ep.rank();
            ep.advance_steps(me as u64 * 3);
            ep.send(0, &(me as u64));
            let _: u8 = ep.recv_msg(0).unwrap();
            let report = WorkerReport {
                vtime: ep.now(),
                steps: ep.compute_steps(),
                sends: ep.stats().send_row(me),
                recovery_bytes: 0,
                recovery_messages: 0,
                constraint_bytes: 0,
                constraint_messages: 0,
            };
            assert!(ep.transport_mut().send_report(&report));
        },
    );
}

/// A peer that *connects* to the master but never sends its `Hello` must
/// fail the rendezvous after the per-connection handshake bound — naming
/// the silent peer — instead of stalling the mesh until the global
/// watchdog (the regression this guards: rendezvous reads used to be
/// bounded only by the run-level timeout, so one half-dead dialer consumed
/// the entire budget).
#[test]
fn stalled_peer_fails_master_rendezvous_fast() {
    use p2mdie_cluster::net::MasterRendezvous;
    use std::net::TcpStream;
    use std::time::Instant;

    let rendezvous = MasterRendezvous::bind("127.0.0.1:0").unwrap();
    let addr = rendezvous.local_addr().unwrap().to_string();
    // The fake peer: completes TCP, then goes silent (kept alive so the
    // stream never closes — closure would be the *other* failure path).
    let stalled = TcpStream::connect(&addr).expect("fake peer connects");
    let started = Instant::now();
    let err = match rendezvous.accept_workers_opts(
        1,
        CostModel::free(),
        TIMEOUT, // global watchdog: 20 s — must NOT be what bounds us
        Duration::from_millis(200),
    ) {
        Err(e) => e,
        Ok(_) => panic!("a silent peer must fail the handshake"),
    };
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "stalled peer held the rendezvous for {elapsed:?} (global-watchdog stall)"
    );
    assert!(
        err.message.contains("timed out"),
        "diagnosis must say the handshake timed out: {}",
        err.message
    );
    assert!(
        err.message.contains("peer 127.0.0.1"),
        "diagnosis must name the silent peer: {}",
        err.message
    );
    drop(stalled);
}

/// Same stall on the worker-to-worker mesh: a higher-ranked "worker" that
/// dials but never says hello must fail the accepting worker's rendezvous
/// within the per-connection bound, not the global timeout.
#[test]
fn stalled_peer_fails_worker_mesh_fast() {
    use p2mdie_cluster::net::{worker_connect_opts, MasterRendezvous};
    use std::net::TcpStream;
    use std::time::Instant;

    let rendezvous = MasterRendezvous::bind("127.0.0.1:0").unwrap();
    let addr = rendezvous.local_addr().unwrap().to_string();
    // Rank 1 of a 2-worker mesh: after the roster it accepts rank 2's
    // dial. The fake rank 2 below completes the master handshake honestly
    // (so the roster goes out) but then dials rank 1 and goes silent.
    let worker = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let started = Instant::now();
            let err = worker_connect_opts(&addr, 1, TIMEOUT, Duration::from_millis(200))
                .map(|_| ())
                .expect_err("a silent mesh peer must fail the handshake");
            (err, started.elapsed())
        }
    });
    let master = std::thread::spawn(move || {
        // Manual master half: accept both hellos, send the roster, then
        // keep the streams alive while rank 1 times out on rank 2.
        let t = rendezvous
            .accept_workers_opts(2, CostModel::free(), TIMEOUT, TIMEOUT)
            .map(|_| ());
        // Rank 1 fails its mesh accept and drops its master link; the
        // transport surfaces that as a closure, which is fine here.
        drop(t);
    });
    // Fake rank 2: real hello to the master, silence toward rank 1.
    let mut master_stream = TcpStream::connect(&addr).expect("fake rank 2 dials master");
    {
        use p2mdie_cluster::net::{encode_frame, Frame, FrameReader, MAGIC, PROTOCOL_VERSION};
        use std::io::{Read, Write};
        let my_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        master_stream
            .write_all(&encode_frame(&Frame::Hello {
                magic: MAGIC,
                version: PROTOCOL_VERSION,
                rank: 2,
                addr: my_listener.local_addr().unwrap().to_string(),
            }))
            .unwrap();
        // Read the roster, find rank 1's address, dial it — then nothing.
        let mut reader = FrameReader::new();
        let mut chunk = [0u8; 4096];
        let rank1_addr = loop {
            if let Some(Frame::Roster { addrs, .. }) = reader.next_frame().unwrap() {
                break addrs
                    .iter()
                    .find(|(r, _)| *r == 1)
                    .map(|(_, a)| a.clone())
                    .expect("rank 1 in roster");
            }
            let n = master_stream.read(&mut chunk).unwrap();
            assert!(n > 0, "master closed before sending the roster");
            reader.push(&chunk[..n]);
        };
        let _silent = TcpStream::connect(&rank1_addr).expect("fake dial to rank 1");
        let (err, elapsed) = worker.join().expect("rank 1 thread");
        assert!(
            elapsed < Duration::from_secs(5),
            "stalled mesh peer held rank 1 for {elapsed:?}"
        );
        assert!(
            err.message.contains("timed out") && err.message.contains("peer 127.0.0.1"),
            "diagnosis must name the silent mesh peer: {}",
            err.message
        );
    }
    drop(master_stream);
    master.join().expect("master thread");
}
