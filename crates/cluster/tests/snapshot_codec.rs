//! Byte-level tests of the compiled-KB snapshot codec: canonical
//! encodings round-trip exactly, and truncated or corrupted frames come
//! back as `DecodeError` values — never panics, never silently-wrong KBs.

use p2mdie_cluster::codec::{from_bytes, to_bytes};
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::snapshot::KbSnapshot;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::{Term, F64};
use proptest::prelude::*;

/// A KB with every term shape the codec must carry: symbols, ints, floats,
/// ground compounds, rules with builtin + pred + unknown dispatch.
fn build_kb(nmol: u8, natom: u8) -> KnowledgeBase {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    for m in 0..nmol.max(1) as i64 {
        for a in 0..natom.max(1) as i64 {
            kb.assert_fact(Literal::new(
                t.intern("atm"),
                vec![
                    Term::Sym(t.intern(&format!("m{m}"))),
                    Term::app(t.intern("at"), vec![Term::Int(a)]),
                    Term::Float(F64(0.25 * a as f64 - 0.5)),
                ],
            ));
        }
    }
    kb.assert_rule(Clause::new(
        Literal::new(t.intern("hot"), vec![Term::Var(0), Term::Var(1)]),
        vec![
            Literal::new(
                t.intern("atm"),
                vec![Term::Var(0), Term::Var(2), Term::Var(1)],
            ),
            Literal::new(t.intern(">="), vec![Term::Var(1), Term::Float(F64(0.0))]),
            Literal::new(t.intern("never_defined"), vec![Term::Var(0)]),
        ],
    ));
    kb.optimize();
    kb
}

#[test]
fn snapshot_bytes_roundtrip_and_restore() {
    let kb = build_kb(5, 8);
    let snap = kb.to_snapshot();
    let bytes = to_bytes(&snap);
    let back: KbSnapshot = from_bytes(bytes.clone()).unwrap();
    assert_eq!(back, snap);
    // Canonical: re-encoding the decoded snapshot yields identical bytes.
    assert_eq!(to_bytes(&back), bytes);
    // And the decoded snapshot restores to a KB that re-captures equal.
    let restored = KnowledgeBase::from_snapshot(back, SymbolTable::new()).unwrap();
    assert_eq!(restored.to_snapshot(), snap);
}

#[test]
fn truncated_snapshot_bytes_are_decode_errors() {
    let snap = build_kb(3, 4).to_snapshot();
    let bytes = to_bytes(&snap);
    // Every prefix must fail to decode (either mid-field or as trailing
    // garbage truncation); sample densely at the front and sparsely after.
    for cut in (0..bytes.len().min(64)).chain((64..bytes.len()).step_by(97)) {
        assert!(
            from_bytes::<KbSnapshot>(bytes.slice(..cut)).is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn corrupt_tag_bytes_are_rejected() {
    let snap = build_kb(2, 3).to_snapshot();
    let mut raw = to_bytes(&snap).to_vec();
    // The first term in the arena starts right after the symbols vector;
    // stomping every byte with an invalid term/kind tag value must never
    // produce a *valid* different snapshot that silently restores — it
    // either fails to decode or fails `from_snapshot` validation.
    let mut silently_ok = 0usize;
    for i in 0..raw.len() {
        let old = raw[i];
        raw[i] = 0xC9; // invalid as every tag; huge as a length byte
        match from_bytes::<KbSnapshot>(bytes::Bytes::from(raw.clone())) {
            Err(_) => {}
            Ok(s) => {
                if KnowledgeBase::from_snapshot(s, SymbolTable::new()).is_ok() {
                    silently_ok += 1;
                }
            }
        }
        raw[i] = old;
    }
    // A byte flip inside e.g. a float payload legitimately yields a
    // different-but-valid snapshot; but structural bytes dominate, so the
    // overwhelming majority of corruptions must be caught.
    assert!(
        silently_ok * 4 < raw.len(),
        "{silently_ok} of {} corruptions loaded silently",
        raw.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode → decode is the identity for arbitrary generated KBs.
    #[test]
    fn snapshot_roundtrip_property(nmol in 1u8..8, natom in 1u8..10) {
        let snap = build_kb(nmol, natom).to_snapshot();
        let back: KbSnapshot = from_bytes(to_bytes(&snap)).unwrap();
        prop_assert_eq!(back, snap);
    }
}
