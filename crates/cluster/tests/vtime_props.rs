//! Properties of the virtual-time substrate under random message
//! schedules: clocks never go backwards, byte accounting is exact, and
//! runs are deterministic.

use p2mdie_cluster::{run_cluster, CostModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random fan-out/fan-in schedule: the master sends each worker a
    /// random number of payloads, workers echo them back with random
    /// compute. Clocks must be monotone and bytes must match exactly.
    #[test]
    fn random_schedules_behave(
        sizes in proptest::collection::vec(1usize..200, 1..4),
        steps in proptest::collection::vec(0u64..500, 1..4),
    ) {
        let p = sizes.len();
        let model = CostModel::beowulf_2005();
        let expected_bytes: u64 = sizes.iter().map(|s| (*s as u64 + 4) * 2).sum();
        let out = run_cluster(
            p,
            model,
            |ep| {
                let mut t_prev = 0.0;
                for (k, s) in sizes.iter().enumerate() {
                    ep.send(k + 1, &vec![0u8; *s]);
                    assert!(ep.now() >= t_prev, "master clock went backwards");
                    t_prev = ep.now();
                }
                for k in 1..=sizes.len() {
                    let _: Vec<u8> = ep.recv_msg(k).unwrap();
                    assert!(ep.now() >= t_prev, "master clock went backwards");
                    t_prev = ep.now();
                }
                ep.now()
            },
            |ep| {
                let r = ep.rank();
                let data: Vec<u8> = ep.recv_msg(0).unwrap();
                ep.advance_steps(steps[(r - 1) % steps.len()]);
                ep.send(0, &data);
            },
        )
        .unwrap();
        prop_assert_eq!(out.stats.total_bytes(), expected_bytes);
        prop_assert_eq!(out.stats.total_messages(), 2 * p as u64);
        // Master's makespan dominates every worker's compute time.
        for (i, st) in out.worker_steps.iter().enumerate() {
            prop_assert_eq!(*st, steps[i % steps.len()]);
        }
        // Determinism: run the identical schedule again.
        let again = run_cluster(
            p,
            model,
            |ep| {
                for (k, s) in sizes.iter().enumerate() {
                    ep.send(k + 1, &vec![0u8; *s]);
                }
                for k in 1..=sizes.len() {
                    let _: Vec<u8> = ep.recv_msg(k).unwrap();
                }
                ep.now()
            },
            |ep| {
                let r = ep.rank();
                let data: Vec<u8> = ep.recv_msg(0).unwrap();
                ep.advance_steps(steps[(r - 1) % steps.len()]);
                ep.send(0, &data);
            },
        )
        .unwrap();
        prop_assert!((out.result - again.result).abs() < 1e-12);
    }
}
