//! Property tests for the length-prefixed frame reader against adversarial
//! stream splits: frames delivered byte-at-a-time, coalesced into one
//! chunk, or fragmented at random boundaries must decode identically;
//! truncated streams must surface *no* partial frame; corrupt prefixes and
//! bodies must fail cleanly (an error value, never a panic).

use p2mdie_cluster::net::{encode_frame, Frame, FrameReader, MAX_FRAME};
use p2mdie_cluster::{CostModel, WorkerReport};
use proptest::prelude::*;

/// A random frame of every kind the wire carries.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    let envelope = (
        0u32..16,
        any::<bool>(),
        0u64..1_000_000_000,
        proptest::collection::vec(0u8..=255, 0..200),
    )
        .prop_map(|(from, poison, tics, payload)| Frame::Envelope {
            from,
            poison,
            arrival: tics as f64 / 1.0e6,
            payload,
        });
    let hello = (1u32..16, proptest::collection::vec(0u8..=127, 0..30)).prop_map(|(rank, raw)| {
        Frame::Hello {
            magic: p2mdie_cluster::net::MAGIC,
            version: p2mdie_cluster::net::PROTOCOL_VERSION,
            rank,
            addr: raw.into_iter().map(|b| (b % 26 + b'a') as char).collect(),
        }
    });
    let report = (
        0u64..1_000_000,
        0u64..1_000_000,
        proptest::collection::vec((0u64..9999, 0u64..99, 0u64..9), 0..8),
        0u64..100_000,
        0u64..1_000,
        (0u64..100_000, 0u64..1_000),
    )
        .prop_map(
            |(t, steps, sends, recovery_bytes, recovery_messages, (cbytes, cmsgs))| {
                Frame::Report(WorkerReport {
                    vtime: t as f64 / 1.0e3,
                    steps,
                    sends,
                    recovery_bytes,
                    recovery_messages,
                    constraint_bytes: cbytes,
                    constraint_messages: cmsgs,
                })
            },
        );
    let roster =
        proptest::collection::vec((1u32..9, 0u8..26), 0..6).prop_map(|entries| Frame::Roster {
            model: CostModel::beowulf_2005(),
            addrs: entries
                .into_iter()
                .map(|(r, a)| (r, format!("127.0.0.1:{}", 1000 + a as u32)))
                .collect(),
        });
    prop_oneof![envelope, hello, report, roster]
}

/// Splits `stream` into chunks at the given relative cut sizes.
fn chunks<'a>(stream: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut cuts = cuts.iter().cycle();
    while i < stream.len() {
        let step = (cuts.next().copied().unwrap_or(1)).clamp(1, stream.len() - i);
        out.push(&stream[i..i + step]);
        i += step;
    }
    out
}

fn drain(reader: &mut FrameReader) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some(f) = reader.next_frame().expect("valid stream") {
        out.push(f);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any fragmentation of a valid stream decodes to exactly the frames
    /// that were written, in order.
    #[test]
    fn arbitrary_fragmentation_is_transparent(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
        cuts in proptest::collection::vec(1usize..64, 1..10),
    ) {
        let stream: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

        // Coalesced: the whole stream in one push.
        let mut coalesced = FrameReader::new();
        coalesced.push(&stream);
        prop_assert_eq!(drain(&mut coalesced), frames.clone());

        // Fragmented at random boundaries, draining after every chunk.
        let mut fragmented = FrameReader::new();
        let mut got = Vec::new();
        for chunk in chunks(&stream, &cuts) {
            fragmented.push(chunk);
            got.extend(drain(&mut fragmented));
        }
        prop_assert_eq!(&got, &frames);

        // Byte at a time.
        let mut trickled = FrameReader::new();
        let mut got = Vec::new();
        for b in &stream {
            trickled.push(std::slice::from_ref(b));
            got.extend(drain(&mut trickled));
        }
        prop_assert_eq!(&got, &frames);
    }

    /// A stream cut anywhere — mid-length-prefix or mid-payload — yields
    /// exactly the fully-contained frames and then stays pending: no
    /// error, no panic, and never a partial frame.
    #[test]
    fn truncation_surfaces_no_partial_frame(
        frames in proptest::collection::vec(frame_strategy(), 1..6),
        cut_num in 0u32..10_000,
    ) {
        let encoded: Vec<Vec<u8>> = frames.iter().map(encode_frame).collect();
        let stream: Vec<u8> = encoded.concat();
        let cut = (cut_num as usize * stream.len()) / 10_000;

        // How many frames are fully contained in the prefix?
        let mut consumed = 0;
        let mut whole = 0;
        for e in &encoded {
            if consumed + e.len() <= cut {
                consumed += e.len();
                whole += 1;
            } else {
                break;
            }
        }

        let mut reader = FrameReader::new();
        reader.push(&stream[..cut]);
        let got = drain(&mut reader);
        prop_assert_eq!(got.len(), whole, "cut at {} of {}", cut, stream.len());
        prop_assert_eq!(got.as_slice(), &frames[..whole]);
        prop_assert_eq!(reader.next_frame().expect("still pending"), None);
    }

    /// A corrupt length prefix fails cleanly and sticks (no resync inside a
    /// corrupt stream), regardless of what was decoded before it.
    #[test]
    fn corrupt_length_prefix_fails_cleanly(
        frames in proptest::collection::vec(frame_strategy(), 0..4),
        over in 1u32..1000,
    ) {
        let mut stream: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        stream.extend_from_slice(&(MAX_FRAME + over).to_le_bytes());
        stream.extend_from_slice(&[0u8; 8]);
        let mut reader = FrameReader::new();
        reader.push(&stream);
        for f in &frames {
            let got = reader.next_frame().expect("prefix valid");
            prop_assert_eq!(got.as_ref(), Some(f));
        }
        prop_assert!(reader.next_frame().is_err());
        reader.push(b"anything");
        prop_assert!(reader.next_frame().is_err(), "the error must stick");
    }

    /// Flipping any single body byte either still decodes (the flip hit a
    /// payload byte) or fails cleanly — never panics, never yields a frame
    /// plus trailing garbage.
    #[test]
    fn corrupt_body_bytes_never_panic(
        frame in frame_strategy(),
        flip_pos in 0u32..10_000,
        flip_bits in 1u8..=255,
    ) {
        let mut raw = encode_frame(&frame);
        let body_start = 4;
        let pos = body_start + (flip_pos as usize) % (raw.len() - body_start);
        raw[pos] ^= flip_bits;
        let mut reader = FrameReader::new();
        reader.push(&raw);
        // Must terminate with Ok(Some)/Ok(None)/Err — the property is the
        // absence of panics and of partial consumption weirdness.
        match reader.next_frame() {
            Ok(Some(_)) => prop_assert_eq!(reader.buffered(), 0, "no trailing garbage"),
            Ok(None) => {}
            Err(_) => {}
        }
    }
}
