//! The [`Dataset`] bundle and shared generator helpers.

use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_logic::symbol::SymbolTable;

/// A ready-to-learn ILP problem: background knowledge + modes + recommended
/// settings (inside the engine) and the labelled examples.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// The shared symbol table.
    pub syms: SymbolTable,
    /// KB + modes + tuned settings.
    pub engine: IlpEngine,
    /// Positive and negative examples.
    pub examples: Examples,
}

impl Dataset {
    /// `(|E+|, |E-|)` — the row of the paper's Table 1.
    pub fn characterization(&self) -> (usize, usize) {
        (self.examples.num_pos(), self.examples.num_neg())
    }
}

/// Scales an example-count target, keeping at least `min`.
pub(crate) fn scaled(count: usize, scale: f64, min: usize) -> usize {
    ((count as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rounds_and_floors() {
        assert_eq!(scaled(162, 1.0, 4), 162);
        assert_eq!(scaled(162, 0.25, 4), 41);
        assert_eq!(scaled(10, 0.01, 4), 4);
    }
}
