//! The [`Dataset`] bundle and shared generator helpers.

use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_logic::snapshot::KbSnapshot;
use p2mdie_logic::symbol::SymbolTable;

/// A ready-to-learn ILP problem: background knowledge + modes + recommended
/// settings (inside the engine) and the labelled examples.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// The shared symbol table.
    pub syms: SymbolTable,
    /// KB + modes + tuned settings.
    pub engine: IlpEngine,
    /// Positive and negative examples.
    pub examples: Examples,
}

impl Dataset {
    /// `(|E+|, |E-|)` — the row of the paper's Table 1.
    pub fn characterization(&self) -> (usize, usize) {
        (self.examples.num_pos(), self.examples.num_neg())
    }

    /// A serializable snapshot of this dataset's fully-built (interned,
    /// indexed, mode-pruned) background KB — what a master ships to workers
    /// so they skip the per-rank rebuild, and what a future multi-process
    /// deployment would persist next to the generated data.
    pub fn kb_snapshot(&self) -> KbSnapshot {
        self.engine.kb.to_snapshot()
    }
}

/// Scales an example-count target, keeping at least `min`.
pub(crate) fn scaled(count: usize, scale: f64, min: usize) -> usize {
    ((count as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rounds_and_floors() {
        assert_eq!(scaled(162, 1.0, 4), 162);
        assert_eq!(scaled(162, 0.25, 4), 41);
        assert_eq!(scaled(10, 0.01, 4), 4);
    }

    /// Every generated dataset's KB must snapshot and restore to an
    /// identical store (the worker-startup contract).
    #[test]
    fn dataset_kb_snapshots_roundtrip() {
        use p2mdie_logic::kb::KnowledgeBase;
        for ds in [
            crate::trains(10, 3),
            crate::carcinogenesis(0.05, 1),
            crate::mesh(0.05, 1),
            crate::pyrimidines(0.05, 1),
            crate::family(2, 1),
        ] {
            let snap = ds.kb_snapshot();
            let restored = KnowledgeBase::from_snapshot(snap.clone(), SymbolTable::new()).unwrap();
            assert_eq!(
                restored.num_facts(),
                ds.engine.kb.num_facts(),
                "{}",
                ds.name
            );
            assert_eq!(
                restored.num_rules(),
                ds.engine.kb.num_rules(),
                "{}",
                ds.name
            );
            assert_eq!(restored.to_snapshot(), snap, "{}", ds.name);
        }
    }
}
