//! A mesh-design-shaped dataset (Dolšak & Bratko's finite-element mesh by
//! proxy): learn how many finite elements each edge of a structure should
//! be subdivided into — `mesh(Edge, N)` with `N ∈ 1..=12`.
//!
//! The generator plants a deterministic mapping from three edge attributes
//! (length × support × load: 3 × 2 × 2 = 12 combinations) to the element
//! count, corrupts 12% of the counts (noise), and adds neighbour/opposite
//! relations so the hypothesis space contains many shallow, partially-good
//! rules — the property that makes the real mesh dataset produce
//! "some thousand rules at the end of one pipeline" (paper §5.3).

use crate::common::{scaled, Dataset};
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::modes::ModeSet;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

const COUNT_NOISE: f64 = 0.12;
/// Edges per simulated structure (neighbour rings are built within one).
const STRUCTURE_SIZE: usize = 40;

/// Generates the mesh-shaped dataset. `scale` multiplies the paper's
/// example counts (1.0 reproduces Table 1's 2840/278).
pub fn mesh(scale: f64, seed: u64) -> Dataset {
    let pos_target = scaled(2840, scale, 24);
    let neg_target = scaled(278, scale, 8);

    let syms = SymbolTable::new();
    let mut kb = KnowledgeBase::new(syms.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    let mesh_p = syms.intern("mesh");
    let lens = [
        syms.intern("short"),
        syms.intern("mid_len"),
        syms.intern("long"),
    ];
    let sups = [syms.intern("fixed"), syms.intern("free")];
    let loads = [syms.intern("loaded"), syms.intern("unloaded")];
    let neighbour = syms.intern("neighbour");
    let opposite = syms.intern("opposite");

    let mut pos = Vec::new();
    let mut edges: Vec<Term> = Vec::new();

    for e in 0..pos_target {
        let edge = Term::Sym(syms.intern(&format!("e{e}")));
        let len: usize = rng.random_range(0..3);
        let sup: usize = rng.random_range(0..2);
        let load: usize = rng.random_range(0..2);
        kb.assert_fact(Literal::new(lens[len], vec![edge.clone()]));
        kb.assert_fact(Literal::new(sups[sup], vec![edge.clone()]));
        kb.assert_fact(Literal::new(loads[load], vec![edge.clone()]));

        // Planted mapping: combo index 1..=12.
        let mut count = (len * 4 + sup * 2 + load + 1) as i64;
        if rng.random_bool(COUNT_NOISE) {
            // Noise: displace to a different class.
            let wrong = rng.random_range(1..=12i64);
            count = if wrong == count {
                (count % 12) + 1
            } else {
                wrong
            };
        }
        pos.push(Literal::new(mesh_p, vec![edge.clone(), Term::Int(count)]));
        edges.push(edge);
    }

    // Neighbour rings (both directions) and opposite pairs within each
    // structure of STRUCTURE_SIZE edges.
    for chunk in edges.chunks(STRUCTURE_SIZE) {
        let n = chunk.len();
        if n < 2 {
            continue;
        }
        for i in 0..n {
            let j = (i + 1) % n;
            kb.assert_fact(Literal::new(
                neighbour,
                vec![chunk[i].clone(), chunk[j].clone()],
            ));
            kb.assert_fact(Literal::new(
                neighbour,
                vec![chunk[j].clone(), chunk[i].clone()],
            ));
        }
        for i in 0..n / 2 {
            let j = i + n / 2;
            kb.assert_fact(Literal::new(
                opposite,
                vec![chunk[i].clone(), chunk[j].clone()],
            ));
            kb.assert_fact(Literal::new(
                opposite,
                vec![chunk[j].clone(), chunk[i].clone()],
            ));
        }
    }

    // Negatives: wrong (edge, count) pairs.
    let mut neg = Vec::new();
    while neg.len() < neg_target {
        let i = rng.random_range(0..pos.len());
        let Term::Int(right) = pos[i].args[1] else {
            unreachable!("counts are ints")
        };
        let mut wrong = rng.random_range(1..=12i64);
        if wrong == right {
            wrong = (wrong % 12) + 1;
        }
        neg.push(Literal::new(
            mesh_p,
            vec![pos[i].args[0].clone(), Term::Int(wrong)],
        ));
    }
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    let modes = ModeSet::parse(
        &syms,
        "mesh(+edge, #count)",
        &[
            (1, "short(+edge)"),
            (1, "mid_len(+edge)"),
            (1, "long(+edge)"),
            (1, "fixed(+edge)"),
            (1, "free(+edge)"),
            (1, "loaded(+edge)"),
            (1, "unloaded(+edge)"),
            (2, "neighbour(+edge, -edge)"),
            (2, "opposite(+edge, -edge)"),
        ],
    )
    .expect("static templates parse");

    let settings = Settings {
        noise: (neg_target as f64 * 0.03).round().max(2.0) as u32,
        min_pos: 3,
        max_body: 3,
        max_nodes: 250,
        max_var_depth: 2,
        max_bottom_literals: 40,
        proof: ProofLimits {
            max_depth: 4,
            max_steps: 1_500,
        },
        ..Settings::default()
    };

    // Release the generators' load-time over-allocation (arena, columns,
    // posting lists) before the KB is cloned per rank.
    kb.optimize();

    Dataset {
        name: "mesh",
        syms,
        engine: IlpEngine::new(kb, modes, settings),
        examples: Examples::new(pos, neg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_at_full_scale() {
        let d = mesh(1.0, 11);
        assert_eq!(d.characterization(), (2840, 278));
    }

    #[test]
    fn learns_attribute_rules() {
        let d = mesh(0.05, 11); // 142 pos, 14 neg — fast
        let run = d.engine.run_sequential(&d.examples);
        assert!(!run.theory.is_empty());
        // Most positives follow the planted 12-combo mapping; a good chunk
        // must be covered by clean rules.
        let mut cp = p2mdie_ilp::bitset::Bitset::new(d.examples.num_pos());
        for r in &run.theory {
            let cov = d.engine.evaluate(&r.clause, &d.examples, None, None);
            cp.union_with(&cov.pos);
        }
        let frac = cp.count() as f64 / d.examples.num_pos() as f64;
        assert!(frac > 0.7, "coverage fraction too low: {frac}");
    }

    #[test]
    fn rule_bags_are_large() {
        // The mesh shape must produce many good rules per search — the
        // paper's justification for bounding the pipeline width.
        let d = mesh(0.05, 11);
        let bottom = d.engine.saturate(&d.examples.pos[0]).unwrap();
        let out = d.engine.search(&bottom, &d.examples, None, &[]);
        assert!(out.good.len() >= 5, "only {} good rules", out.good.len());
    }

    #[test]
    fn deterministic() {
        let a = mesh(0.05, 2);
        let b = mesh(0.05, 2);
        assert_eq!(a.examples, b.examples);
    }
}
