//! The textbook family dataset (quickstart material): learn `daughter/2`
//! from `parent/2`, `male/1`, `female/1`.

use crate::common::Dataset;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::modes::ModeSet;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Generates a multi-generation family tree and the `daughter/2` learning
/// problem over it. `families` controls the size (each family contributes
/// roughly 14 people over 3 generations).
pub fn family(families: usize, seed: u64) -> Dataset {
    let syms = SymbolTable::new();
    let mut kb = KnowledgeBase::new(syms.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    let parent = syms.intern("parent");
    let male = syms.intern("male");
    let female = syms.intern("female");
    let daughter = syms.intern("daughter");

    let mut people: Vec<(Term, bool)> = Vec::new(); // (term, is_female)
    let mut parent_pairs: Vec<(Term, Term)> = Vec::new(); // (parent, child)
    let mut next_id = 0usize;
    let mut person = |rng: &mut StdRng, people: &mut Vec<(Term, bool)>| {
        let t = Term::Sym(syms.intern(&format!("p{next_id}")));
        next_id += 1;
        let is_female = rng.random_bool(0.5);
        people.push((t.clone(), is_female));
        (t, is_female)
    };

    for _ in 0..families {
        // Grandparents couple -> 2-3 children -> each has 1-3 children.
        let (g1, _) = person(&mut rng, &mut people);
        let (g2, _) = person(&mut rng, &mut people);
        let n_children = rng.random_range(2..=3);
        for _ in 0..n_children {
            let (c, _) = person(&mut rng, &mut people);
            parent_pairs.push((g1.clone(), c.clone()));
            parent_pairs.push((g2.clone(), c.clone()));
            let (spouse, _) = person(&mut rng, &mut people);
            let n_grand = rng.random_range(1..=3);
            for _ in 0..n_grand {
                let (gc, _) = person(&mut rng, &mut people);
                parent_pairs.push((c.clone(), gc.clone()));
                parent_pairs.push((spouse.clone(), gc.clone()));
            }
        }
    }

    for (t, is_female) in &people {
        let pred = if *is_female { female } else { male };
        kb.assert_fact(Literal::new(pred, vec![t.clone()]));
    }
    for (p, c) in &parent_pairs {
        kb.assert_fact(Literal::new(parent, vec![p.clone(), c.clone()]));
    }

    // Positives: daughter(C, P) for every parent(P, C) with female C.
    // Negatives: same pairs with male C, plus reversed pairs.
    let is_female = |t: &Term| {
        people
            .iter()
            .find(|(p, _)| p == t)
            .map(|(_, f)| *f)
            .unwrap_or(false)
    };
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (p, c) in &parent_pairs {
        if is_female(c) {
            pos.push(Literal::new(daughter, vec![c.clone(), p.clone()]));
            neg.push(Literal::new(daughter, vec![p.clone(), c.clone()]));
        } else {
            neg.push(Literal::new(daughter, vec![c.clone(), p.clone()]));
        }
    }
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    neg.truncate(pos.len().max(8));

    let modes = ModeSet::parse(
        &syms,
        "daughter(+person, +person)",
        &[
            (2, "parent(+person, +person)"),
            (1, "female(+person)"),
            (1, "male(+person)"),
        ],
    )
    .expect("static templates parse");

    let settings = Settings {
        noise: 0,
        min_pos: 2,
        max_body: 3,
        max_nodes: 500,
        max_var_depth: 2,
        proof: ProofLimits {
            max_depth: 4,
            max_steps: 2_000,
        },
        ..Settings::default()
    };

    // Release the generators' load-time over-allocation (arena, columns,
    // posting lists) before the KB is cloned per rank.
    kb.optimize();

    Dataset {
        name: "family",
        syms,
        engine: IlpEngine::new(kb, modes, settings),
        examples: Examples::new(pos, neg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_learnable_problem() {
        let d = family(4, 1);
        assert!(d.examples.num_pos() >= 8, "pos: {}", d.examples.num_pos());
        assert!(d.examples.num_neg() >= 8);
        let run = d.engine.run_sequential(&d.examples);
        assert!(!run.theory.is_empty(), "must learn daughter/2");
        // The textbook rule covers everything: expect a 1-2 clause theory
        // explaining all positives.
        assert_eq!(run.set_aside, 0);
        let c = &run.theory[0].clause;
        assert_eq!(c.body.len(), 2, "daughter(A,B) :- parent(B,A), female(A)");
    }

    #[test]
    fn deterministic_generation() {
        let a = family(3, 9);
        let b = family(3, 9);
        assert_eq!(a.examples, b.examples);
    }

    #[test]
    fn different_seeds_differ() {
        let a = family(3, 1);
        let b = family(3, 2);
        assert_ne!(a.examples, b.examples);
    }
}
