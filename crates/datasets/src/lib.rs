//! Synthetic relational dataset generators shaped after the benchmarks of
//! Fonseca et al. (CLUSTER 2005): carcinogenesis, mesh, and pyrimidines
//! (Table 1), plus the toy family and trains problems used by examples and
//! tests.
//!
//! The original datasets are not redistributable; each generator reproduces
//! the *shape* that matters to the paper's experiments — exact |E+|/|E−|,
//! relational schema, a planted ground-truth theory, and label noise — as
//! documented in DESIGN.md §3–4. All generators are seeded and
//! deterministic.
//!
//! ```
//! use p2mdie_datasets::carcinogenesis;
//!
//! let d = carcinogenesis(1.0, 42);
//! assert_eq!(d.characterization(), (162, 136)); // the paper's Table 1 row
//! ```

pub mod carcino;
pub mod common;
pub mod family;
pub mod mesh;
pub mod pyrimidines;
pub mod trains;

pub use carcino::carcinogenesis;
pub use common::Dataset;
pub use family::family;
pub use mesh::mesh;
pub use pyrimidines::pyrimidines;
pub use trains::trains;

/// Builds one of the paper's three datasets by its Table 1 name.
pub fn by_name(name: &str, scale: f64, seed: u64) -> Option<Dataset> {
    match name {
        "carcinogenesis" => Some(carcinogenesis(scale, seed)),
        "mesh" => Some(mesh(scale, seed)),
        "pyrimidines" => Some(pyrimidines(scale, seed)),
        _ => None,
    }
}

/// The paper's three dataset names, in Table 1 order.
pub const PAPER_DATASETS: [&str; 3] = ["carcinogenesis", "mesh", "pyrimidines"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_paper_datasets() {
        for name in PAPER_DATASETS {
            assert!(by_name(name, 0.05, 1).is_some(), "{name} must resolve");
        }
        assert!(by_name("nope", 1.0, 1).is_none());
    }
}
