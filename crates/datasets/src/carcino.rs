//! A carcinogenesis-shaped dataset (Srinivasan et al. 1997 by proxy).
//!
//! The original molecules are not redistributable, so this generator
//! produces synthetic molecules with the same *shape*: the exact
//! |E+| = 162 / |E−| = 136 of the paper's Table 1, an atom/bond relational
//! schema, numeric charges probed through threshold predicates, a planted
//! ground-truth theory of three clauses, and 8% label noise. What the
//! paper's experiments measure — search and evaluation cost scaling, rule
//! bags, accuracy stability under partitioning — depends on these shape
//! parameters, not on true chemistry (DESIGN.md §3, substitution 3).

use crate::common::{scaled, Dataset};
use p2mdie_ilp::coverage::evaluate_rule;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::modes::ModeSet;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::parser::Parser;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::{Term, F64};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

const ELEMS: &[(&str, f64)] = &[
    ("c", 0.58),
    ("h", 0.20),
    ("o", 0.10),
    ("n", 0.08),
    ("cl", 0.02),
    ("s", 0.02),
];
const LABEL_NOISE: f64 = 0.18;

/// The planted ground-truth theory (must stay inside the mode language).
const PLANTED: &str = "
    active(M) :- atm(M, A, n, C), gteq_chg(C, 0.25).
    active(M) :- bond(M, A, B, 7), atmel(M, A, o).
    active(M) :- bond(M, A, B, 3), atmel(M, A, s).
";

fn pick_elem(rng: &mut StdRng) -> &'static str {
    let mut x: f64 = rng.random();
    for (e, p) in ELEMS {
        if x < *p {
            return e;
        }
        x -= p;
    }
    "c"
}

/// Generates the carcinogenesis-shaped dataset. `scale` multiplies the
/// paper's example counts (1.0 reproduces Table 1's 162/136).
pub fn carcinogenesis(scale: f64, seed: u64) -> Dataset {
    let pos_target = scaled(162, scale, 8);
    let neg_target = scaled(136, scale, 8);

    let syms = SymbolTable::new();
    let mut kb = KnowledgeBase::new(syms.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    let atm = syms.intern("atm");
    let bond = syms.intern("bond");
    let atmel = syms.intern("atmel");
    let active = syms.intern("active");

    // Charge-threshold helpers. Descending for >=, ascending for =<, so a
    // small saturation recall captures the *tightest* satisfied thresholds.
    for lvl in [0.5, 0.25, 0.0, -0.25, -0.5] {
        kb.assert_fact(Literal::new(
            syms.intern("chg_desc"),
            vec![Term::Float(F64(lvl))],
        ));
    }
    for lvl in [-0.5, -0.25, 0.0, 0.25, 0.5] {
        kb.assert_fact(Literal::new(
            syms.intern("chg_asc"),
            vec![Term::Float(F64(lvl))],
        ));
    }
    let helper_rules = "
        gteq_chg(C, L) :- chg_desc(L), C >= L.
        lteq_chg(C, L) :- chg_asc(L), C =< L.
    ";
    for c in Parser::new(&syms, helper_rules)
        .expect("lex")
        .parse_program()
        .expect("parse")
    {
        kb.assert(c);
    }

    // Generate molecules in batches until both label quotas are met.
    let mut candidates: Vec<Term> = Vec::new();
    let mut mol_id = 0usize;
    let mut gen_batch =
        |kb: &mut KnowledgeBase, rng: &mut StdRng, candidates: &mut Vec<Term>, n: usize| {
            for _ in 0..n {
                let mol = Term::Sym(syms.intern(&format!("m{mol_id}")));
                mol_id += 1;
                let n_atoms = rng.random_range(8..=20);
                let atoms: Vec<Term> = (0..n_atoms)
                    .map(|a| Term::Sym(syms.intern(&format!("m{}_a{a}", mol_id - 1))))
                    .collect();
                for a in &atoms {
                    let elem = Term::Sym(syms.intern(pick_elem(rng)));
                    let charge = Term::Float(F64(
                        (rng.random::<f64>() * 2.0 - 1.0 + f64::EPSILON).round_to(2)
                    ));
                    kb.assert_fact(Literal::new(
                        atm,
                        vec![mol.clone(), a.clone(), elem.clone(), charge],
                    ));
                    kb.assert_fact(Literal::new(atmel, vec![mol.clone(), a.clone(), elem]));
                }
                // A connecting chain plus ~n/3 random extra bonds.
                let n_extra = n_atoms / 3;
                let add_bond = |kb: &mut KnowledgeBase, rng: &mut StdRng, i: usize, j: usize| {
                    let t: i64 = match rng.random::<f64>() {
                        x if x < 0.70 => 1,
                        x if x < 0.85 => 2,
                        x if x < 0.92 => 3,
                        _ => 7,
                    };
                    kb.assert_fact(Literal::new(
                        bond,
                        vec![
                            mol.clone(),
                            atoms[i].clone(),
                            atoms[j].clone(),
                            Term::Int(t),
                        ],
                    ));
                };
                for i in 1..n_atoms {
                    add_bond(kb, rng, i - 1, i);
                }
                for _ in 0..n_extra {
                    let i = rng.random_range(0..n_atoms);
                    let j = rng.random_range(0..n_atoms);
                    if i != j {
                        add_bond(kb, rng, i, j);
                    }
                }
                candidates.push(mol);
            }
        };

    // Label candidates with the planted theory, then flip 8%.
    let planted: Vec<p2mdie_logic::clause::Clause> = Parser::new(&syms, PLANTED)
        .expect("lex")
        .parse_program()
        .expect("parse");
    let proof = ProofLimits {
        max_depth: 4,
        max_steps: 4_000,
    };

    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for _round in 0..40 {
        if pos.len() >= pos_target && neg.len() >= neg_target {
            break;
        }
        let mut fresh = Vec::new();
        gen_batch(&mut kb, &mut rng, &mut fresh, 128);
        let cand_examples = Examples::new(
            fresh
                .iter()
                .map(|m| Literal::new(active, vec![m.clone()]))
                .collect(),
            vec![],
        );
        let mut truth = p2mdie_ilp::bitset::Bitset::new(fresh.len());
        for rule in &planted {
            let cov = evaluate_rule(&kb, proof, rule, &cand_examples, None, None);
            truth.union_with(&cov.pos);
        }
        for (i, m) in fresh.iter().enumerate() {
            let mut label = truth.get(i);
            if rng.random_bool(LABEL_NOISE) {
                label = !label;
            }
            let ex = Literal::new(active, vec![m.clone()]);
            if label && pos.len() < pos_target {
                pos.push(ex);
            } else if !label && neg.len() < neg_target {
                neg.push(ex);
            }
        }
        candidates.extend(fresh);
    }
    assert_eq!(
        pos.len(),
        pos_target,
        "generator could not reach the positive quota"
    );
    assert_eq!(
        neg.len(),
        neg_target,
        "generator could not reach the negative quota"
    );
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    let modes = ModeSet::parse(
        &syms,
        "active(+mol)",
        &[
            (10, "atm(+mol, -atom, #elem, -charge)"),
            (8, "bond(+mol, -atom, -atom, #btype)"),
            (1, "atmel(+mol, +atom, #elem)"),
            (2, "gteq_chg(+charge, #lvl)"),
            (2, "lteq_chg(+charge, #lvl)"),
        ],
    )
    .expect("static templates parse");

    let settings = Settings {
        noise: (neg_target as f64 * 0.01).round().max(1.0) as u32,
        min_pos: 2,
        max_body: 3,
        max_nodes: 800,
        max_var_depth: 2,
        max_bottom_literals: 120,
        proof: ProofLimits {
            max_depth: 4,
            max_steps: 3_000,
        },
        ..Settings::default()
    };

    // Release the generators' load-time over-allocation (arena, columns,
    // posting lists) before the KB is cloned per rank.
    kb.optimize();

    Dataset {
        name: "carcinogenesis",
        syms,
        engine: IlpEngine::new(kb, modes, settings),
        examples: Examples::new(pos, neg),
    }
}

trait Round2 {
    fn round_to(self, digits: u32) -> f64;
}
impl Round2 for f64 {
    fn round_to(self, digits: u32) -> f64 {
        let m = 10f64.powi(digits as i32);
        (self * m).round() / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_at_full_scale() {
        let d = carcinogenesis(1.0, 7);
        assert_eq!(d.characterization(), (162, 136));
    }

    #[test]
    fn scaled_counts() {
        let d = carcinogenesis(0.25, 7);
        assert_eq!(d.characterization(), (41, 34));
    }

    #[test]
    fn learnable_with_reasonable_quality() {
        let d = carcinogenesis(0.25, 7);
        let run = d.engine.run_sequential(&d.examples);
        assert!(!run.theory.is_empty(), "must learn something");
        // Training accuracy of the theory must beat the majority class:
        // count covered pos and neg over the full set.
        let mut cp = p2mdie_ilp::bitset::Bitset::new(d.examples.num_pos());
        let mut cn = p2mdie_ilp::bitset::Bitset::new(d.examples.num_neg());
        for r in &run.theory {
            let cov = d.engine.evaluate(&r.clause, &d.examples, None, None);
            cp.union_with(&cov.pos);
            cn.union_with(&cov.neg);
        }
        let correct = cp.count() + (d.examples.num_neg() - cn.count());
        let acc = correct as f64 / d.examples.len() as f64;
        assert!(acc > 0.6, "training accuracy too low: {acc}");
    }

    #[test]
    fn deterministic() {
        let a = carcinogenesis(0.2, 3);
        let b = carcinogenesis(0.2, 3);
        assert_eq!(a.examples, b.examples);
    }

    #[test]
    fn saturation_reaches_planted_literals() {
        let d = carcinogenesis(0.2, 3);
        // Some seed must have a bottom clause mentioning the charge
        // threshold predicate (the planted R1 shape).
        let gteq = d.syms.intern("gteq_chg");
        let found = d.examples.pos.iter().take(10).any(|e| {
            d.engine
                .saturate(e)
                .map(|b| b.lits.iter().any(|l| l.lit.pred == gteq))
                .unwrap_or(false)
        });
        assert!(found, "gteq_chg literals must appear in bottom clauses");
    }
}
