//! A pyrimidines-shaped dataset (King, Muggleton & Sternberg's QSAR task by
//! proxy): learn the activity *ordering* of drug pairs — `great(D1, D2)`
//! holds when drug D1 is more active than drug D2.
//!
//! Drugs carry substituents at three ring positions; substituents have
//! numeric chemical properties; the hidden activity is a weighted sum of
//! those properties. The background knowledge exposes *comparative* checks
//! (`polar3_gt(A,B)`: "A's position-3 substituent is more polar than B's")
//! as intensional rules, so coverage testing exercises real deduction.

use crate::common::{scaled, Dataset};
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::modes::ModeSet;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::parser::Parser;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

const PROPS: &[&str] = &["polar", "size", "flex", "h_don", "h_acc", "pi_don"];
const POSITIONS: &[&str] = &["pos3", "pos4", "pos5"];
const N_SUBSTS: usize = 12;
const LABEL_NOISE: f64 = 0.05;
/// Property weights of the hidden activity function, one per (prop, pos).
const WEIGHTS: [[f64; 3]; 6] = [
    [3.0, 1.0, 0.5], // polar
    [0.5, 2.5, 0.5], // size
    [1.0, 0.5, 2.0], // flex
    [0.8, 0.3, 0.2], // h_don
    [0.2, 0.8, 0.4], // h_acc
    [0.4, 0.2, 0.9], // pi_don
];

/// Generates the pyrimidines-shaped dataset. `scale` multiplies the
/// paper's example counts (1.0 reproduces Table 1's 848/764).
pub fn pyrimidines(scale: f64, seed: u64) -> Dataset {
    let pos_target = scaled(848, scale, 12);
    let neg_target = scaled(764, scale, 12);
    let n_drugs = ((55.0 * scale.sqrt()).round() as usize).max(12);

    let syms = SymbolTable::new();
    let mut kb = KnowledgeBase::new(syms.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let great = syms.intern("great");

    // Substituents with integer property values 0..=8.
    let mut prop_val = [[0u8; 6]; N_SUBSTS];
    for (s, vals) in prop_val.iter_mut().enumerate() {
        let subst = Term::Sym(syms.intern(&format!("sub{s}")));
        for (pi, prop) in PROPS.iter().enumerate() {
            let v = rng.random_range(0..=8u8);
            vals[pi] = v;
            kb.assert_fact(Literal::new(
                syms.intern(prop),
                vec![subst.clone(), Term::Int(v as i64)],
            ));
        }
    }

    // Drugs: one substituent per ring position; hidden activity.
    let mut activity = Vec::with_capacity(n_drugs);
    for d in 0..n_drugs {
        let drug = Term::Sym(syms.intern(&format!("d{d}")));
        let mut act = 0.0;
        for (posi, pos) in POSITIONS.iter().enumerate() {
            let s = rng.random_range(0..N_SUBSTS);
            kb.assert_fact(Literal::new(
                syms.intern(pos),
                vec![drug.clone(), Term::Sym(syms.intern(&format!("sub{s}")))],
            ));
            for (pi, w) in WEIGHTS.iter().enumerate() {
                act += w[posi] * prop_val[s][pi] as f64;
            }
        }
        act += rng.random::<f64>() * 2.0; // small unexplained variance
        activity.push((drug, act));
    }

    // Comparative checks as intensional BK: one rule per (prop, position).
    let mut rules = String::new();
    for prop in PROPS {
        for pos in POSITIONS {
            rules.push_str(&format!(
                "{prop}_{pos}_gt(A, B) :- {pos}(A, SA), {pos}(B, SB), {prop}(SA, VA), {prop}(SB, VB), VA > VB.\n"
            ));
        }
    }
    for c in Parser::new(&syms, &rules)
        .expect("lex")
        .parse_program()
        .expect("parse")
    {
        kb.assert(c);
    }

    // Example pairs: correctly-ordered pairs are positives, inverted pairs
    // are negatives; 5% label flips.
    let margin = 1.0;
    let mut pos_pool = Vec::new();
    let mut neg_pool = Vec::new();
    for i in 0..n_drugs {
        for j in 0..n_drugs {
            if i == j {
                continue;
            }
            let (da, aa) = &activity[i];
            let (db, ab) = &activity[j];
            if aa - ab > margin {
                let ex = Literal::new(great, vec![da.clone(), db.clone()]);
                if rng.random_bool(LABEL_NOISE) {
                    neg_pool.push(ex);
                } else {
                    pos_pool.push(ex);
                }
            } else if ab - aa > margin {
                let ex = Literal::new(great, vec![da.clone(), db.clone()]);
                if rng.random_bool(LABEL_NOISE) {
                    pos_pool.push(ex);
                } else {
                    neg_pool.push(ex);
                }
            }
        }
    }
    pos_pool.shuffle(&mut rng);
    neg_pool.shuffle(&mut rng);
    assert!(
        pos_pool.len() >= pos_target && neg_pool.len() >= neg_target,
        "drug count too small for the example quotas ({} pos, {} neg available)",
        pos_pool.len(),
        neg_pool.len()
    );
    pos_pool.truncate(pos_target);
    neg_pool.truncate(neg_target);

    // Modes: every comparative check on the head's drug pair, both ways.
    let mut body_modes: Vec<(u32, String)> = Vec::new();
    for prop in PROPS {
        for pos in POSITIONS {
            body_modes.push((1, format!("{prop}_{pos}_gt(+drug, +drug)")));
        }
    }
    let body_refs: Vec<(u32, &str)> = body_modes.iter().map(|(r, s)| (*r, s.as_str())).collect();
    let modes =
        ModeSet::parse(&syms, "great(+drug, +drug)", &body_refs).expect("static templates parse");

    let settings = Settings {
        noise: (neg_target as f64 * 0.04).round().max(2.0) as u32,
        min_pos: ((pos_target as f64) / 40.0).round().max(2.0) as u32,
        max_body: 3,
        max_nodes: 300,
        max_var_depth: 1,
        max_bottom_literals: 80,
        proof: ProofLimits {
            max_depth: 4,
            max_steps: 2_000,
        },
        ..Settings::default()
    };

    // Release the generators' load-time over-allocation (arena, columns,
    // posting lists) before the KB is cloned per rank.
    kb.optimize();

    Dataset {
        name: "pyrimidines",
        syms,
        engine: IlpEngine::new(kb, modes, settings),
        examples: Examples::new(pos_pool, neg_pool),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_at_full_scale() {
        let d = pyrimidines(1.0, 13);
        assert_eq!(d.characterization(), (848, 764));
    }

    #[test]
    fn comparative_checks_prove_correctly() {
        let d = pyrimidines(0.1, 13);
        // For the first positive pair great(A, B), at least one comparative
        // check must hold (A beats B somewhere — activity is a weighted sum).
        let e = &d.examples.pos[0];
        let bottom = d.engine.saturate(e).expect("saturates");
        assert!(
            !bottom.lits.is_empty(),
            "some comparative literal must hold"
        );
    }

    #[test]
    fn learnable_with_reasonable_quality() {
        let d = pyrimidines(0.08, 13);
        let run = d.engine.run_sequential(&d.examples);
        assert!(!run.theory.is_empty());
        let mut cp = p2mdie_ilp::bitset::Bitset::new(d.examples.num_pos());
        let mut cn = p2mdie_ilp::bitset::Bitset::new(d.examples.num_neg());
        for r in &run.theory {
            let cov = d.engine.evaluate(&r.clause, &d.examples, None, None);
            cp.union_with(&cov.pos);
            cn.union_with(&cov.neg);
        }
        let correct = cp.count() + (d.examples.num_neg() - cn.count());
        let acc = correct as f64 / d.examples.len() as f64;
        assert!(acc > 0.6, "training accuracy too low: {acc}");
    }

    #[test]
    fn deterministic() {
        let a = pyrimidines(0.05, 4);
        let b = pyrimidines(0.05, 4);
        assert_eq!(a.examples, b.examples);
    }
}
