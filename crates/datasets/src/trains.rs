//! A Michalski-trains-style dataset (the workload of Matsui et al.'s
//! comparison, §6): learn `eastbound/1` from car descriptions.
//!
//! Ground truth: a train is eastbound iff it has a short closed car.

use crate::common::Dataset;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::modes::ModeSet;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Literal;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates `n_trains` trains (half eastbound, half westbound).
pub fn trains(n_trains: usize, seed: u64) -> Dataset {
    let syms = SymbolTable::new();
    let mut kb = KnowledgeBase::new(syms.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    let has_car = syms.intern("has_car");
    let short = syms.intern("short");
    let long = syms.intern("long");
    let closed = syms.intern("closed");
    let open_car = syms.intern("open_car");
    let wheels = syms.intern("wheels");
    let load = syms.intern("load");
    let eastbound = syms.intern("eastbound");
    let shapes = ["rectangle", "ellipse", "hexagon", "u_shaped"];
    let loads = ["circle", "triangle", "square", "diamond"];

    let mut pos = Vec::new();
    let mut neg = Vec::new();
    let mut car_id = 0usize;

    for t in 0..n_trains {
        let east = t % 2 == 0;
        let train = Term::Sym(syms.intern(&format!("t{t}")));
        let n_cars = rng.random_range(2..=4);
        let mut has_short_closed = false;
        for c in 0..n_cars {
            let car = Term::Sym(syms.intern(&format!("c{car_id}")));
            car_id += 1;
            kb.assert_fact(Literal::new(has_car, vec![train.clone(), car.clone()]));
            // Force the ground truth: eastbound trains get a short closed
            // car (as their last car if chance didn't provide one);
            // westbound trains never do.
            let mut is_short = rng.random_bool(0.5);
            let mut is_closed = rng.random_bool(0.5);
            if east && c == n_cars - 1 && !has_short_closed {
                is_short = true;
                is_closed = true;
            }
            if !east && is_short && is_closed {
                is_closed = false;
            }
            has_short_closed |= is_short && is_closed;
            kb.assert_fact(Literal::new(
                if is_short { short } else { long },
                vec![car.clone()],
            ));
            kb.assert_fact(Literal::new(
                if is_closed { closed } else { open_car },
                vec![car.clone()],
            ));
            kb.assert_fact(Literal::new(
                wheels,
                vec![car.clone(), Term::Int(rng.random_range(2..=3))],
            ));
            let shape = shapes[rng.random_range(0..shapes.len())];
            let lshape = loads[rng.random_range(0..loads.len())];
            kb.assert_fact(Literal::new(
                syms.intern("shape"),
                vec![car.clone(), Term::Sym(syms.intern(shape))],
            ));
            kb.assert_fact(Literal::new(
                load,
                vec![
                    car.clone(),
                    Term::Sym(syms.intern(lshape)),
                    Term::Int(rng.random_range(1..=3)),
                ],
            ));
        }
        let ex = Literal::new(eastbound, vec![train]);
        if east {
            pos.push(ex);
        } else {
            neg.push(ex);
        }
    }

    let modes = ModeSet::parse(
        &syms,
        "eastbound(+train)",
        &[
            (4, "has_car(+train, -car)"),
            (1, "short(+car)"),
            (1, "long(+car)"),
            (1, "closed(+car)"),
            (1, "open_car(+car)"),
            (1, "shape(+car, #carshape)"),
            (1, "wheels(+car, #wheelcount)"),
            (2, "load(+car, #loadshape, #loadcount)"),
        ],
    )
    .expect("static templates parse");

    let settings = Settings {
        noise: 0,
        min_pos: 2,
        max_body: 3,
        max_nodes: 800,
        max_var_depth: 2,
        proof: ProofLimits {
            max_depth: 4,
            max_steps: 2_000,
        },
        ..Settings::default()
    };

    // Release the generators' load-time over-allocation (arena, columns,
    // posting lists) before the KB is cloned per rank.
    kb.optimize();

    Dataset {
        name: "trains",
        syms,
        engine: IlpEngine::new(kb, modes, settings),
        examples: Examples::new(pos, neg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_short_closed_car_rule() {
        let d = trains(10, 3);
        assert_eq!(d.examples.num_pos(), 5);
        assert_eq!(d.examples.num_neg(), 5);
        let run = d.engine.run_sequential(&d.examples);
        assert_eq!(run.set_aside, 0, "the concept is noise-free and learnable");
        assert!(!run.theory.is_empty());
        // Every positive must be covered, no negative.
        let mut covered = p2mdie_ilp::bitset::Bitset::new(d.examples.num_pos());
        for r in &run.theory {
            let cov = d.engine.evaluate(&r.clause, &d.examples, None, None);
            assert_eq!(cov.neg_count(), 0);
            covered.union_with(&cov.pos);
        }
        assert_eq!(covered.count(), d.examples.num_pos());
    }

    #[test]
    fn bigger_train_sets_scale() {
        let d = trains(40, 5);
        assert_eq!(d.examples.num_pos(), 20);
        assert_eq!(d.examples.num_neg(), 20);
    }
}
