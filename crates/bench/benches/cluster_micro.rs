//! Microbenchmarks of the cluster substrate: codec throughput and a full
//! master-worker round trip (including the virtual-time bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion};
use p2mdie_cluster::codec::{from_bytes, to_bytes};
use p2mdie_cluster::{run_cluster, CostModel};
use p2mdie_core::protocol::Msg;
use p2mdie_datasets::carcinogenesis;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    // A realistic MarkCovered message with a 3-literal clause.
    let d = carcinogenesis(0.1, 7);
    let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");
    let shape =
        p2mdie_ilp::refine::RuleShape::from_indices((0..bottom.body_len().min(3) as u32).collect());
    let msg = Msg::MarkCovered {
        rule: shape.to_clause(&bottom),
    };
    let encoded = to_bytes(&msg);
    c.bench_function("codec/encode_mark_covered", |bench| {
        bench.iter(|| black_box(to_bytes(black_box(&msg))))
    });
    c.bench_function("codec/decode_mark_covered", |bench| {
        bench.iter(|| black_box(from_bytes::<Msg>(black_box(encoded.clone())).unwrap()))
    });
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    g.bench_function("spawn_and_pingpong_4_workers", |bench| {
        bench.iter(|| {
            let out = run_cluster(
                4,
                CostModel::beowulf_2005(),
                |ep| {
                    ep.broadcast(&1u64);
                    (1..=4).map(|w| ep.recv_msg::<u64>(w).unwrap()).sum::<u64>()
                },
                |ep| {
                    let x: u64 = ep.recv_msg(0).unwrap();
                    ep.send(0, &(x + ep.rank() as u64));
                },
            )
            .unwrap();
            black_box(out.result)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_roundtrip);
criterion_main!(benches);
