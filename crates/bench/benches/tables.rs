//! Meso-benchmarks: one bench target per paper table, exercising the exact
//! code path that regenerates it (at a small scale so `cargo bench`
//! finishes in minutes; the `reproduce` binary runs the full versions).
//!
//! * Table 1 -> dataset generation cost
//! * Tables 2/3 -> one sequential + one parallel run (speedup/time path)
//! * Table 4 -> communication accounting of a nolimit run
//! * Table 5 -> epoch counting across p
//! * Table 6 -> fold scoring (accuracy path)

use criterion::{criterion_group, criterion_main, Criterion};
use p2mdie_cluster::CostModel;
use p2mdie_core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie_datasets::{carcinogenesis, mesh, pyrimidines};
use p2mdie_eval::{score_theory, stratified_folds};
use p2mdie_ilp::settings::Width;
use std::hint::black_box;

const SCALE: f64 = 0.08;
const SEED: u64 = 2005;

fn bench_table1_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_generation");
    g.sample_size(10);
    g.bench_function("carcinogenesis", |b| {
        b.iter(|| black_box(carcinogenesis(SCALE, SEED)))
    });
    g.bench_function("mesh", |b| b.iter(|| black_box(mesh(SCALE, SEED))));
    g.bench_function("pyrimidines", |b| {
        b.iter(|| black_box(pyrimidines(SCALE, SEED)))
    });
    g.finish();
}

fn bench_table23_speedup_path(c: &mut Criterion) {
    let d = carcinogenesis(SCALE, SEED);
    let model = CostModel::beowulf_2005();
    let mut g = c.benchmark_group("table2_3_runs");
    g.sample_size(10);
    g.bench_function("sequential_T1", |b| {
        b.iter(|| black_box(run_sequential_timed(&d.engine, &d.examples, &model)))
    });
    for p in [2, 4] {
        g.bench_function(format!("parallel_T{p}_width10"), |b| {
            b.iter(|| {
                let cfg = ParallelConfig::new(p, Width::Limit(10), SEED);
                black_box(run_parallel(&d.engine, &d.examples, &cfg).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_table4_communication_path(c: &mut Criterion) {
    let d = mesh(0.03, SEED);
    let mut g = c.benchmark_group("table4_comm");
    g.sample_size(10);
    g.bench_function("mesh_nolimit_p2", |b| {
        b.iter(|| {
            let cfg = ParallelConfig::new(2, Width::Unlimited, SEED);
            let rep = run_parallel(&d.engine, &d.examples, &cfg).unwrap();
            black_box(rep.megabytes())
        })
    });
    g.finish();
}

fn bench_table5_epoch_path(c: &mut Criterion) {
    let d = pyrimidines(SCALE, SEED);
    let mut g = c.benchmark_group("table5_epochs");
    g.sample_size(10);
    g.bench_function("pyrimidines_p4_width10", |b| {
        b.iter(|| {
            let cfg = ParallelConfig::new(4, Width::Limit(10), SEED);
            black_box(run_parallel(&d.engine, &d.examples, &cfg).unwrap().epochs)
        })
    });
    g.finish();
}

fn bench_table6_accuracy_path(c: &mut Criterion) {
    let d = carcinogenesis(SCALE, SEED);
    let folds = stratified_folds(&d.examples, 5, SEED);
    let run = d.engine.run_sequential(&folds[0].train);
    let theory: Vec<_> = run.theory.iter().map(|r| r.clause.clone()).collect();
    c.bench_function("table6_score_theory_on_test_fold", |b| {
        b.iter(|| black_box(score_theory(&d.engine, &theory, &folds[0].test)))
    });
}

criterion_group!(
    benches,
    bench_table1_generators,
    bench_table23_speedup_path,
    bench_table4_communication_path,
    bench_table5_epoch_path,
    bench_table6_accuracy_path
);
criterion_main!(benches);
