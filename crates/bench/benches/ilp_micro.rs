//! Microbenchmarks of the MDIE engine: saturation, coverage evaluation,
//! and a full rule search on the carcinogenesis-shaped dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use p2mdie_datasets::carcinogenesis;
use std::hint::black_box;

fn bench_ilp(c: &mut Criterion) {
    let d = carcinogenesis(0.15, 7);
    let seed = &d.examples.pos[0];
    c.bench_function("ilp/saturate_one_molecule", |bench| {
        bench.iter(|| black_box(d.engine.saturate(black_box(seed))))
    });

    let bottom = d.engine.saturate(seed).expect("saturates");
    let best_shape = p2mdie_ilp::refine::RuleShape::from_indices(vec![0]);
    let clause = best_shape.to_clause(&bottom);
    c.bench_function("ilp/coverage_one_rule", |bench| {
        bench.iter(|| {
            black_box(
                d.engine
                    .evaluate(black_box(&clause), &d.examples, None, None),
            )
        })
    });

    let mut g = c.benchmark_group("ilp_search");
    g.sample_size(10);
    g.bench_function("full_breadth_first_search", |bench| {
        bench.iter(|| black_box(d.engine.search(black_box(&bottom), &d.examples, None, &[])))
    });
    g.finish();
}

fn bench_bitset(c: &mut Criterion) {
    use p2mdie_ilp::bitset::Bitset;
    let a = Bitset::from_indices(4096, (0..4096).step_by(3));
    let b = Bitset::from_indices(4096, (0..4096).step_by(5));
    c.bench_function("bitset/intersection_count_4096", |bench| {
        bench.iter(|| black_box(a.intersection_count(black_box(&b))))
    });
}

criterion_group!(benches, bench_ilp, bench_bitset);
criterion_main!(benches);
