//! Microbenchmarks of the logic substrate: unification, proving,
//! θ-subsumption, parsing.

use criterion::{criterion_group, criterion_main, Criterion};
use p2mdie_logic::prover::{ProofLimits, Prover};
use p2mdie_logic::subst::Bindings;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use p2mdie_logic::{theta, Parser, Program};
use std::hint::black_box;

fn family_program() -> Program {
    let mut p = Program::new();
    let mut src = String::new();
    for i in 0..200 {
        src.push_str(&format!("parent(p{i}, p{}).\n", i + 1));
    }
    src.push_str("ancestor(X, Y) :- parent(X, Y).\n");
    src.push_str("ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n");
    p.consult(&src).expect("consult");
    p
}

fn bench_unify(c: &mut Criterion) {
    let t = SymbolTable::new();
    let f = t.intern("f");
    let deep = |v: u32| {
        let mut x = Term::Var(v);
        for _ in 0..20 {
            x = Term::app(f, vec![x, Term::Int(1)]);
        }
        x
    };
    let a = deep(0);
    let b = deep(1);
    c.bench_function("unify/deep_terms", |bench| {
        bench.iter(|| {
            let mut bd = Bindings::new();
            black_box(bd.unify(black_box(&a), black_box(&b), false))
        })
    });
}

fn bench_prove(c: &mut Criterion) {
    let p = family_program();
    let prover = Prover::new(
        p.kb(),
        ProofLimits {
            max_depth: 64,
            max_steps: 1_000_000,
        },
    );
    let goal = p.parse_query("ancestor(p0, p50)").unwrap();
    c.bench_function("prove/ancestor_50_hops", |bench| {
        bench.iter(|| black_box(prover.prove_ground(black_box(&goal))))
    });
    let fail = p.parse_query("ancestor(p50, p0)").unwrap();
    c.bench_function("prove/ancestor_failure", |bench| {
        bench.iter(|| black_box(prover.prove_ground(black_box(&fail))))
    });
}

fn bench_subsumption(c: &mut Criterion) {
    let t = SymbolTable::new();
    let clause = |src: &str| Parser::new(&t, src).unwrap().parse_clause().unwrap();
    let g = clause("p(X) :- q(X, Y), r(Y, Z), q(Z, W).");
    let s = clause("p(A) :- q(A, b1), r(b1, b2), q(b2, b3), r(b3, b4), q(b4, b5).");
    c.bench_function("theta/subsumes_chain", |bench| {
        bench.iter(|| black_box(theta::subsumes(black_box(&g), black_box(&s))))
    });
}

fn bench_parser(c: &mut Criterion) {
    let t = SymbolTable::new();
    let src = "active(M) :- atm(M, A, c, C), gteq(C, 0.25), bond(M, A, B, 7).";
    c.bench_function("parser/clause", |bench| {
        bench.iter(|| {
            let c = Parser::new(&t, black_box(src))
                .unwrap()
                .parse_clause()
                .unwrap();
            black_box(c)
        })
    });
}

criterion_group!(
    benches,
    bench_unify,
    bench_prove,
    bench_subsumption,
    bench_parser
);
criterion_main!(benches);
