//! Before/after microbenches for the PR-1 deduction hot path: the seed's
//! clone-per-expansion prover and unmasked coverage (via `p2mdie_bench::legacy`
//! and `prover::reference`) against the optimized goal-stack prover, monotone
//! coverage pruning, and per-side evaluation. `cargo bench -p p2mdie-bench
//! --bench prover`. The `bench_prover` binary runs the same comparison and
//! writes `BENCH_prover.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use p2mdie_bench::{legacy, workloads};
use p2mdie_datasets::carcinogenesis;
use p2mdie_ilp::coverage::{evaluate_rule_threads, Coverage};
use p2mdie_ilp::refine::RuleShape;
use p2mdie_ilp::search::search_rules;
use p2mdie_logic::prover::{reference, ProofLimits, Prover};
use p2mdie_logic::Program;
use std::hint::black_box;

fn chain_program() -> Program {
    let mut p = Program::new();
    let mut src = String::new();
    for i in 0..200 {
        src.push_str(&format!("parent(p{i}, p{}).\n", i + 1));
    }
    src.push_str("ancestor(X, Y) :- parent(X, Y).\n");
    src.push_str("ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n");
    p.consult(&src).expect("consult");
    p
}

fn bench_backtracking(c: &mut Criterion) {
    let p = chain_program();
    let limits = ProofLimits {
        max_depth: 256,
        max_steps: 10_000_000,
    };
    let hit = p.parse_query("ancestor(p0, p150)").unwrap();
    let miss = p.parse_query("ancestor(p150, p0)").unwrap();
    let mut g = c.benchmark_group("prover_backtracking");
    let old = reference::Prover::new(p.kb(), limits);
    g.bench_function("before", |b| {
        b.iter(|| {
            black_box(old.prove_ground(black_box(&hit)));
            black_box(old.prove_ground(black_box(&miss)))
        })
    });
    let new = Prover::new(p.kb(), limits);
    g.bench_function("after", |b| {
        b.iter(|| {
            black_box(new.prove_ground(black_box(&hit)));
            black_box(new.prove_ground(black_box(&miss)))
        })
    });
    g.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let d = carcinogenesis(0.5, 7);
    let proof = d.engine.settings.proof;
    let kb = &d.engine.kb;
    let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");

    // The frontier-walk workload of `learn_rule`: per level, the first few
    // successors of the current node, descending into the first.
    let max_body = d.engine.settings.max_body;
    let mut levels = vec![vec![RuleShape::empty()]];
    let mut shape = RuleShape::empty();
    for _ in 0..max_body {
        let succ: Vec<RuleShape> = shape
            .successors(&bottom, max_body)
            .into_iter()
            .take(3)
            .collect();
        if succ.is_empty() {
            break;
        }
        shape = succ[0].clone();
        levels.push(succ);
    }
    let level_clauses: Vec<Vec<_>> = levels
        .iter()
        .map(|l| l.iter().map(|s| s.to_clause(&bottom)).collect())
        .collect();

    let mut g = c.benchmark_group("coverage_carcinogenesis");
    g.sample_size(10);
    g.bench_function("before", |b| {
        b.iter(|| {
            for level in &level_clauses {
                for clause in level {
                    black_box(legacy::evaluate_rule(
                        kb,
                        proof,
                        clause,
                        &d.examples,
                        None,
                        None,
                    ));
                }
            }
        })
    });
    g.bench_function("after", |b| {
        b.iter(|| {
            let mut masks: Option<Coverage> = None;
            for level in &level_clauses {
                let mut first: Option<Coverage> = None;
                for clause in level {
                    let cov = evaluate_rule_threads(
                        kb,
                        proof,
                        clause,
                        &d.examples,
                        masks.as_ref().map(|m| &m.pos),
                        masks.as_ref().map(|m| &m.neg),
                        1,
                    );
                    if first.is_none() {
                        first = Some(black_box(cov));
                    }
                }
                masks = first;
            }
        })
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let d = carcinogenesis(0.5, 7);
    let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");
    let mut g = c.benchmark_group("learn_rule_search");
    g.sample_size(10);
    g.bench_function("before", |b| {
        b.iter(|| {
            black_box(legacy::search_rules(
                &d.engine.kb,
                &d.engine.settings,
                &bottom,
                &d.examples,
                None,
                &[],
            ))
        })
    });
    g.bench_function("after", |b| {
        b.iter(|| {
            black_box(search_rules(
                &d.engine.kb,
                &d.engine.settings,
                &bottom,
                &d.examples,
                None,
                &[],
            ))
        })
    });
    g.finish();
}

/// `bond/4` retrieval with the *second* argument bound and the molecule
/// unbound: the seed's first-argument index degenerates to a full scan per
/// query, the compiled KB's per-position posting lists touch ~1 fact.
fn bench_second_arg_bound(c: &mut Criterion) {
    let (_t, kb, queries) = workloads::bond_world();
    let mut g = c.benchmark_group("second_arg_bound");
    g.bench_function("before", |b| {
        b.iter(|| black_box(workloads::run_bond_reference(&kb, &queries)))
    });
    g.bench_function("after", |b| {
        b.iter(|| black_box(workloads::run_bond_compiled(&kb, &queries)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_backtracking,
    bench_coverage,
    bench_search,
    bench_second_arg_bound
);
criterion_main!(benches);
