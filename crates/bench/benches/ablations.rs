//! Ablation benches for the design choices DESIGN.md calls out:
//! pipelined data-parallelism (p²-mdie) vs data-parallel coverage testing
//! (§6 related work) vs per-epoch repartitioning (§4.1's rejected
//! alternative), all on the same virtual cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use p2mdie_cluster::CostModel;
use p2mdie_core::baselines::{run_coverage_parallel, EvalGranularity};
use p2mdie_core::driver::{run_parallel, ParallelConfig};
use p2mdie_datasets::carcinogenesis;
use p2mdie_ilp::settings::Width;
use std::hint::black_box;

const SCALE: f64 = 0.08;
const SEED: u64 = 2005;
const P: usize = 4;

fn bench_strategies(c: &mut Criterion) {
    let d = carcinogenesis(SCALE, SEED);
    let model = CostModel::beowulf_2005();
    let mut g = c.benchmark_group("strategy_ablation");
    g.sample_size(10);
    g.bench_function("p2mdie_width10", |b| {
        b.iter(|| {
            let cfg = ParallelConfig::new(P, Width::Limit(10), SEED);
            black_box(run_parallel(&d.engine, &d.examples, &cfg).unwrap())
        })
    });
    g.bench_function("p2mdie_repartition", |b| {
        b.iter(|| {
            let cfg = ParallelConfig::new(P, Width::Limit(10), SEED).with_repartition();
            black_box(run_parallel(&d.engine, &d.examples, &cfg).unwrap())
        })
    });
    g.bench_function("coverage_parallel_per_level", |b| {
        b.iter(|| {
            black_box(
                run_coverage_parallel(
                    &d.engine,
                    &d.examples,
                    P,
                    EvalGranularity::PerLevel,
                    model,
                    SEED,
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("coverage_parallel_per_clause", |b| {
        b.iter(|| {
            black_box(
                run_coverage_parallel(
                    &d.engine,
                    &d.examples,
                    P,
                    EvalGranularity::PerClause,
                    model,
                    SEED,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_width_sweep(c: &mut Criterion) {
    // The pipeline-width ablation behind Tables 2-4.
    let d = carcinogenesis(SCALE, SEED);
    let mut g = c.benchmark_group("width_ablation");
    g.sample_size(10);
    for width in [
        Width::Limit(1),
        Width::Limit(10),
        Width::Limit(100),
        Width::Unlimited,
    ] {
        g.bench_function(format!("width_{}", width.label()), |b| {
            b.iter(|| {
                let cfg = ParallelConfig::new(P, width, SEED);
                black_box(run_parallel(&d.engine, &d.examples, &cfg).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_width_sweep);
criterion_main!(benches);
