//! Benchmark harness crate: hosts the `reproduce` binary (regenerates every
//! table and figure of the paper) and the Criterion micro/meso benches
//! (`cargo bench -p p2mdie-bench`). See `src/bin/reproduce.rs`.
//!
//! This crate also hosts verbatim replicas of the *pre-refactor* deduction
//! hot path ([`legacy`]) so benches can pin the speedup of the PR-1 prover
//! and coverage rework against the true seed implementation rather than a
//! reconstruction. The replicas build on [`p2mdie_logic::prover::reference`]
//! (the seed's clone-per-expansion prover, kept in-tree for differential
//! testing).

pub mod legacy {
    //! The seed's coverage evaluation and breadth-first search, exactly as
    //! they stood before the zero-allocation prover, monotone coverage
    //! pruning, and parallel evaluation landed.

    use p2mdie_ilp::bitset::Bitset;
    use p2mdie_ilp::bottom::BottomClause;
    use p2mdie_ilp::coverage::Coverage;
    use p2mdie_ilp::examples::Examples;
    use p2mdie_ilp::refine::RuleShape;
    use p2mdie_ilp::search::{ScoredRule, SearchOutcome};
    use p2mdie_ilp::settings::Settings;
    use p2mdie_logic::clause::Clause;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::prover::{reference, ProofLimits};
    use p2mdie_logic::subst::Bindings;
    use std::collections::{HashSet, VecDeque};

    /// Seed `evaluate_rule`: reference prover, one fresh binding store per
    /// example, no masks, no fan-out.
    pub fn evaluate_rule(
        kb: &KnowledgeBase,
        proof: ProofLimits,
        rule: &Clause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        live_neg: Option<&Bitset>,
    ) -> Coverage {
        let prover = reference::Prover::new(kb, proof);
        let mut steps = 0u64;

        let mut eval_side = |lits: &[p2mdie_logic::clause::Literal], live: Option<&Bitset>| {
            let mut bits = Bitset::new(lits.len());
            for (i, ex) in lits.iter().enumerate() {
                if let Some(l) = live {
                    if !l.get(i) {
                        continue;
                    }
                }
                steps += 1; // head-match attempt
                let mut b = Bindings::with_capacity(rule.var_span() as usize);
                if !b.unify_literals(&rule.head, ex, false) {
                    continue;
                }
                let (ok, st) = prover.prove_with_bindings(&rule.body, b);
                steps += st.steps;
                if ok {
                    bits.set(i);
                }
            }
            bits
        };

        let pos = eval_side(&examples.pos, live_pos);
        let neg = eval_side(&examples.neg, live_neg);
        Coverage { pos, neg, steps }
    }

    /// Seed `search_rules`: every node evaluated on the full live set (no
    /// parent-coverage masks), through [`evaluate_rule`] above.
    pub fn search_rules(
        kb: &KnowledgeBase,
        settings: &Settings,
        bottom: &BottomClause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        seeds: &[RuleShape],
    ) -> SearchOutcome {
        let mut out = SearchOutcome::default();
        let mut queue: VecDeque<RuleShape> = VecDeque::new();
        let mut visited: HashSet<RuleShape> = HashSet::new();
        let mut seed_set: HashSet<&RuleShape> = HashSet::new();

        if seeds.is_empty() {
            queue.push_back(RuleShape::empty());
        } else {
            let mut queued: HashSet<&RuleShape> = HashSet::new();
            for s in seeds {
                seed_set.insert(s);
                if queued.insert(s) {
                    queue.push_back(s.clone());
                }
            }
        }

        while let Some(shape) = queue.pop_front() {
            if out.nodes >= settings.max_nodes {
                break;
            }
            if !visited.insert(shape.clone()) {
                continue;
            }
            let clause = shape.to_clause(bottom);
            let cov = evaluate_rule(kb, settings.proof, &clause, examples, live_pos, None);
            out.nodes += 1;
            out.steps += cov.steps;
            let (pos, neg) = (cov.pos_count(), cov.neg_count());

            if seed_set.contains(&shape) {
                out.seed_scored.push(ScoredRule {
                    shape: shape.clone(),
                    pos,
                    neg,
                    score: settings.score.score(pos, neg, shape.body_len()),
                });
            }

            if settings.is_good(pos, neg) {
                out.good.push(ScoredRule {
                    shape: shape.clone(),
                    pos,
                    neg,
                    score: settings.score.score(pos, neg, shape.body_len()),
                });
                if out.good.len() > settings.good_cap {
                    out.good.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
                    out.good.truncate(settings.good_cap);
                }
            }

            if pos < settings.min_pos {
                continue;
            }
            for succ in shape.successors(bottom, settings.max_body) {
                if !visited.contains(&succ) {
                    queue.push_back(succ);
                }
            }
        }

        out.good.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::legacy;
    use p2mdie_datasets::carcinogenesis;
    use p2mdie_ilp::coverage::evaluate_rule;
    use p2mdie_ilp::search::search_rules;

    /// The legacy replicas and the optimized implementations must agree on
    /// coverage bits and search outcomes — this is what makes the benched
    /// speedup a like-for-like comparison.
    #[test]
    fn legacy_and_optimized_agree_on_carcinogenesis() {
        let d = carcinogenesis(0.08, 7);
        let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");
        let shapes = [
            p2mdie_ilp::refine::RuleShape::empty(),
            p2mdie_ilp::refine::RuleShape::from_indices(vec![0]),
        ];
        for shape in &shapes {
            let clause = shape.to_clause(&bottom);
            let old = legacy::evaluate_rule(
                &d.engine.kb,
                d.engine.settings.proof,
                &clause,
                &d.examples,
                None,
                None,
            );
            let new = evaluate_rule(
                &d.engine.kb,
                d.engine.settings.proof,
                &clause,
                &d.examples,
                None,
                None,
            );
            assert_eq!(old.pos, new.pos);
            assert_eq!(old.neg, new.neg);
            assert_eq!(old.steps, new.steps);
        }

        let old = legacy::search_rules(
            &d.engine.kb,
            &d.engine.settings,
            &bottom,
            &d.examples,
            None,
            &[],
        );
        let new = search_rules(
            &d.engine.kb,
            &d.engine.settings,
            &bottom,
            &d.examples,
            None,
            &[],
        );
        assert_eq!(old.good, new.good, "search outcomes diverged");
        assert_eq!(old.nodes, new.nodes);
        // `steps` intentionally differs: monotone pruning is the point.
        assert!(
            new.steps <= old.steps,
            "pruned search must not spend more fuel"
        );
    }
}
