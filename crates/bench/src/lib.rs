//! Benchmark harness crate: hosts the `reproduce` binary (regenerates every
//! table and figure of the paper) and the Criterion micro/meso benches
//! (`cargo bench -p p2mdie-bench`). See `src/bin/reproduce.rs`.
//!
//! This crate also hosts verbatim replicas of the *pre-refactor* deduction
//! hot path ([`legacy`]) so benches can pin the speedup of the PR-1 prover
//! and coverage rework against the true seed implementation rather than a
//! reconstruction. The replicas build on [`p2mdie_logic::prover::reference`]
//! (the seed's clone-per-expansion prover, kept in-tree for differential
//! testing).

pub mod legacy {
    //! The seed's coverage evaluation and breadth-first search, exactly as
    //! they stood before the zero-allocation prover, monotone coverage
    //! pruning, and parallel evaluation landed.

    use p2mdie_ilp::bitset::Bitset;
    use p2mdie_ilp::bottom::BottomClause;
    use p2mdie_ilp::coverage::Coverage;
    use p2mdie_ilp::examples::Examples;
    use p2mdie_ilp::refine::RuleShape;
    use p2mdie_ilp::search::{ScoredRule, SearchOutcome};
    use p2mdie_ilp::settings::Settings;
    use p2mdie_logic::clause::Clause;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::prover::{reference, ProofLimits};
    use p2mdie_logic::subst::Bindings;
    use std::collections::{HashSet, VecDeque};

    /// Seed `evaluate_rule`: reference prover, one fresh binding store per
    /// example, no masks, no fan-out.
    pub fn evaluate_rule(
        kb: &KnowledgeBase,
        proof: ProofLimits,
        rule: &Clause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        live_neg: Option<&Bitset>,
    ) -> Coverage {
        let prover = reference::Prover::new(kb, proof);
        let mut steps = 0u64;

        let mut eval_side = |lits: &[p2mdie_logic::clause::Literal], live: Option<&Bitset>| {
            let mut bits = Bitset::new(lits.len());
            for (i, ex) in lits.iter().enumerate() {
                if let Some(l) = live {
                    if !l.get(i) {
                        continue;
                    }
                }
                steps += 1; // head-match attempt
                let mut b = Bindings::with_capacity(rule.var_span() as usize);
                if !b.unify_literals(&rule.head, ex, false) {
                    continue;
                }
                let (ok, st) = prover.prove_with_bindings(&rule.body, b);
                steps += st.steps;
                if ok {
                    bits.set(i);
                }
            }
            bits
        };

        let pos = eval_side(&examples.pos, live_pos);
        let neg = eval_side(&examples.neg, live_neg);
        Coverage { pos, neg, steps }
    }

    /// Seed `search_rules`: every node evaluated on the full live set (no
    /// parent-coverage masks), through [`evaluate_rule`] above.
    pub fn search_rules(
        kb: &KnowledgeBase,
        settings: &Settings,
        bottom: &BottomClause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        seeds: &[RuleShape],
    ) -> SearchOutcome {
        let mut out = SearchOutcome::default();
        let mut queue: VecDeque<RuleShape> = VecDeque::new();
        let mut visited: HashSet<RuleShape> = HashSet::new();
        let mut seed_set: HashSet<&RuleShape> = HashSet::new();

        if seeds.is_empty() {
            queue.push_back(RuleShape::empty());
        } else {
            let mut queued: HashSet<&RuleShape> = HashSet::new();
            for s in seeds {
                seed_set.insert(s);
                if queued.insert(s) {
                    queue.push_back(s.clone());
                }
            }
        }

        while let Some(shape) = queue.pop_front() {
            if out.nodes >= settings.max_nodes {
                break;
            }
            if !visited.insert(shape.clone()) {
                continue;
            }
            let clause = shape.to_clause(bottom);
            let cov = evaluate_rule(kb, settings.proof, &clause, examples, live_pos, None);
            out.nodes += 1;
            out.steps += cov.steps;
            let (pos, neg) = (cov.pos_count(), cov.neg_count());

            if seed_set.contains(&shape) {
                out.seed_scored.push(ScoredRule {
                    shape: shape.clone(),
                    pos,
                    neg,
                    score: settings.score.score(pos, neg, shape.body_len()),
                });
            }

            if settings.is_good(pos, neg) {
                out.good.push(ScoredRule {
                    shape: shape.clone(),
                    pos,
                    neg,
                    score: settings.score.score(pos, neg, shape.body_len()),
                });
                if out.good.len() > settings.good_cap {
                    out.good.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
                    out.good.truncate(settings.good_cap);
                }
            }

            if pos < settings.min_pos {
                continue;
            }
            for succ in shape.successors(bottom, settings.max_body) {
                if !visited.contains(&succ) {
                    queue.push_back(succ);
                }
            }
        }

        out.good.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
        out
    }
}

pub mod workloads {
    //! Shared benchmark worlds (used by the Criterion benches and the
    //! `bench_prover` gate binary).

    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::prover::{reference, ProofLimits, Prover};
    use p2mdie_logic::subst::Bindings;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// A `bond/4`-style world where the paper's datasets punish first-arg-only
    /// indexing: bond chains over globally-unique atom names, probed with the
    /// *second* argument bound and the molecule unbound ("which bonds leave
    /// this atom?"). The seed index has nothing to narrow on and scans every
    /// fact per query; the multi-argument join index touches ~1.
    pub fn bond_world() -> (SymbolTable, KnowledgeBase, Vec<Literal>) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let bond = t.intern("bond");
        for m in 0..200 {
            let mol = Term::Sym(t.intern(&format!("m{m}")));
            for k in 0..30 {
                let a = Term::Sym(t.intern(&format!("m{m}_a{k}")));
                let b = Term::Sym(t.intern(&format!("m{m}_a{}", k + 1)));
                kb.assert_fact(Literal::new(
                    bond,
                    vec![mol.clone(), a, b, Term::Int((k % 3) + 1)],
                ));
            }
        }
        kb.optimize();
        let queries = (0..100)
            .map(|i| {
                let m = (i * 37) % 200;
                let k = (i * 13) % 30;
                Literal::new(
                    bond,
                    vec![
                        Term::Var(0),
                        Term::Sym(t.intern(&format!("m{m}_a{k}"))),
                        Term::Var(1),
                        Term::Var(2),
                    ],
                )
            })
            .collect();
        (t, kb, queries)
    }

    /// Proof limits generous enough that every query enumerates to
    /// exhaustion (the retrieval cost, not the budget, dominates).
    pub fn bond_limits() -> ProofLimits {
        ProofLimits {
            max_depth: 4,
            max_steps: 10_000_000,
        }
    }

    /// Enumerates every solution of every query on the seed (first-arg-only)
    /// prover; returns the solution count as a checksum.
    pub fn run_bond_reference(kb: &KnowledgeBase, queries: &[Literal]) -> usize {
        let p = reference::Prover::new(kb, bond_limits());
        let mut n = 0usize;
        for q in queries {
            p.run(std::slice::from_ref(q), Bindings::new(), &mut |_| {
                n += 1;
                true
            });
        }
        n
    }

    /// The same enumeration on the compiled-KB prover (multi-arg indexes).
    pub fn run_bond_compiled(kb: &KnowledgeBase, queries: &[Literal]) -> usize {
        let p = Prover::new(kb, bond_limits());
        let mut scratch = Bindings::new();
        let mut n = 0usize;
        for q in queries {
            scratch.reset(0);
            p.run_reusing(std::slice::from_ref(q), &mut scratch, &mut |_| {
                n += 1;
                true
            });
        }
        n
    }

    /// The all-ground membership workload (the coverage inner loop: "is
    /// this ground fact derivable?"). Only the reference position-0 index
    /// is retained, so every probe walks its molecule's full posting run
    /// and the per-candidate test — the all-ground stripe-compare kernel
    /// vs per-row unification — is the entire retrieval cost. Roughly half
    /// the probes miss (wrong bond type), the kernel's fast path.
    pub fn all_ground_world() -> (SymbolTable, KnowledgeBase, Vec<Literal>) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let bond = t.intern("bond");
        let key = Literal::new(bond, vec![Term::Int(0); 4]).key();
        for m in 0..200 {
            let mol = Term::Sym(t.intern(&format!("m{m}")));
            for k in 0..400 {
                kb.assert_fact(Literal::new(
                    bond,
                    vec![
                        mol.clone(),
                        Term::Sym(t.intern(&format!("m{m}_a{k}"))),
                        Term::Sym(t.intern(&format!("m{m}_a{}", k + 1))),
                        Term::Int((k % 3) + 1),
                    ],
                ));
            }
        }
        kb.retain_indexes(key, &[]);
        kb.optimize();
        let queries = (0..2000)
            .map(|i| {
                let m = (i * 37) % 200;
                let k = (i * 13) % 400;
                // Even probes hit; odd probes carry the wrong bond type.
                let ty = (k % 3) + 1 + (i % 2) * 3;
                Literal::new(
                    bond,
                    vec![
                        Term::Sym(t.intern(&format!("m{m}"))),
                        Term::Sym(t.intern(&format!("m{m}_a{k}"))),
                        Term::Sym(t.intern(&format!("m{m}_a{}", k + 1))),
                        Term::Int(ty),
                    ],
                )
            })
            .collect();
        (t, kb, queries)
    }

    /// Proves every all-ground probe with the stripe-compare kernel on or
    /// off ([`Prover::set_all_ground_kernel`]); returns the hit count as a
    /// checksum. Results and step accounting are bit-identical either way
    /// (pinned by the kernel differential proptest) — only the wall time
    /// moves.
    pub fn run_all_ground(kb: &KnowledgeBase, queries: &[Literal], kernel: bool) -> usize {
        let mut p = Prover::new(kb, bond_limits());
        p.set_all_ground_kernel(kernel);
        let mut n = 0usize;
        for q in queries {
            if p.prove_ground(q).0 {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::legacy;
    use p2mdie_datasets::carcinogenesis;
    use p2mdie_ilp::coverage::evaluate_rule;
    use p2mdie_ilp::search::search_rules;

    /// The second-arg-bound workload must enumerate the same solutions on
    /// both provers — the benched ≥3x is pure retrieval, not semantics.
    #[test]
    fn bond_workload_counts_agree() {
        let (_t, kb, queries) = super::workloads::bond_world();
        let a = super::workloads::run_bond_reference(&kb, &queries);
        let b = super::workloads::run_bond_compiled(&kb, &queries);
        assert_eq!(a, b);
        assert!(a > 0, "queries must hit");
    }

    /// The all-ground workload must prove the same probes with the
    /// stripe-compare kernel on and off, and agree with the seed reference
    /// prover — the benched ≥2x is pure data movement, not semantics.
    #[test]
    fn all_ground_workload_counts_agree() {
        let (_t, kb, queries) = super::workloads::all_ground_world();
        let on = super::workloads::run_all_ground(&kb, &queries, true);
        let off = super::workloads::run_all_ground(&kb, &queries, false);
        assert_eq!(on, off, "kernel must not change results");
        assert_eq!(on, queries.len() / 2, "even probes hit, odd probes miss");
        let limits = super::workloads::bond_limits();
        let r = p2mdie_logic::prover::reference::Prover::new(&kb, limits);
        for q in queries.iter().take(40) {
            let (ok, _) = r.prove_ground(q);
            let p = p2mdie_logic::prover::Prover::new(&kb, limits);
            assert_eq!(
                p.prove_ground(q).0,
                ok,
                "kernel diverged from seed on {q:?}"
            );
        }
    }

    /// The legacy replicas and the optimized implementations must agree on
    /// coverage bits and search outcomes — this is what makes the benched
    /// speedup a like-for-like comparison.
    #[test]
    fn legacy_and_optimized_agree_on_carcinogenesis() {
        let d = carcinogenesis(0.08, 7);
        let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");
        let shapes = [
            p2mdie_ilp::refine::RuleShape::empty(),
            p2mdie_ilp::refine::RuleShape::from_indices(vec![0]),
        ];
        for shape in &shapes {
            let clause = shape.to_clause(&bottom);
            let old = legacy::evaluate_rule(
                &d.engine.kb,
                d.engine.settings.proof,
                &clause,
                &d.examples,
                None,
                None,
            );
            let new = evaluate_rule(
                &d.engine.kb,
                d.engine.settings.proof,
                &clause,
                &d.examples,
                None,
                None,
            );
            assert_eq!(old.pos, new.pos);
            assert_eq!(old.neg, new.neg);
            assert_eq!(old.steps, new.steps);
        }

        let old = legacy::search_rules(
            &d.engine.kb,
            &d.engine.settings,
            &bottom,
            &d.examples,
            None,
            &[],
        );
        let new = search_rules(
            &d.engine.kb,
            &d.engine.settings,
            &bottom,
            &d.examples,
            None,
            &[],
        );
        assert_eq!(old.good, new.good, "search outcomes diverged");
        assert_eq!(old.nodes, new.nodes);
        // `steps` intentionally differs: monotone pruning is the point.
        assert!(
            new.steps <= old.steps,
            "pruned search must not spend more fuel"
        );
    }
}
