//! Benchmark harness crate: hosts the `reproduce` binary (regenerates every
//! table and figure of the paper) and the Criterion micro/meso benches
//! (`cargo bench -p p2mdie-bench`). See `src/bin/reproduce.rs`.
