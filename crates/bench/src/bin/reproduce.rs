//! `reproduce` — regenerates every table and figure of Fonseca et al.,
//! "A pipelined data-parallel algorithm for ILP" (CLUSTER 2005).
//!
//! ```text
//! reproduce all                  # everything (Tables 1-7 + Figure 3/4)
//! reproduce table1 ... table7    # one table (table7 = cross-strategy)
//! reproduce figure3              # pipeline trace (Figures 3-4)
//! reproduce ablation             # strategy ablation (p2-mdie vs baselines)
//! Options:
//!   --scale X     example-count scale factor (default 0.25; 1.0 = paper)
//!   --seed N      master seed (default 2005)
//!   --folds K     cross-validation folds (default 5, as in the paper)
//!   --procs LIST  processor counts (default 2,4,8)
//!   --datasets L  comma list (default carcinogenesis,mesh,pyrimidines)
//!   --quiet       suppress per-run progress on stderr
//! ```
//!
//! Times are *virtual seconds* under the Beowulf-2005 cost model; speedup,
//! communication, epoch and accuracy columns are directly comparable to the
//! paper's (see DESIGN.md §3 and EXPERIMENTS.md).

use p2mdie_cluster::CostModel;
use p2mdie_core::baselines::{run_coverage_parallel, EvalGranularity};
use p2mdie_core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie_core::report::render_pipeline_trace;
use p2mdie_core::Strategy;
use p2mdie_eval::sweep::{run_sweep, SweepConfig};
use p2mdie_eval::tables;
use p2mdie_ilp::settings::Width;

struct Args {
    what: Vec<String>,
    scale: f64,
    seed: u64,
    folds: usize,
    procs: Vec<usize>,
    datasets: Vec<String>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        what: Vec::new(),
        scale: 0.25,
        seed: 2005,
        folds: 5,
        procs: vec![2, 4, 8],
        datasets: p2mdie_datasets::PAPER_DATASETS
            .iter()
            .map(|s| s.to_string())
            .collect(),
        verbose: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--scale" => args.scale = grab("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = grab("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--folds" => args.folds = grab("--folds")?.parse().map_err(|e| format!("{e}"))?,
            "--procs" => {
                args.procs = grab("--procs")?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--datasets" => {
                args.datasets = grab("--datasets")?
                    .split(',')
                    .map(|s| s.to_owned())
                    .collect();
            }
            "--quiet" => args.verbose = false,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => args.what.push(other.to_owned()),
        }
    }
    if args.what.is_empty() {
        args.what.push("all".to_owned());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: reproduce [all|table1..table7|figure3|ablation] [--scale X] [--seed N] [--folds K] [--procs 2,4,8] [--datasets a,b] [--quiet]");
            std::process::exit(2);
        }
    };

    let wants = |k: &str| args.what.iter().any(|w| w == k || w == "all");
    let needs_sweep = ["table2", "table3", "table4", "table5", "table6", "table7"]
        .iter()
        .any(|t| wants(t));

    // Table 1 always reports the paper-scale characterization; the sweep
    // scale only affects the measured tables.
    if wants("table1") {
        let mut out = String::from("Table 1. Datasets Characterization\n");
        out.push_str("+-----------------+------+------+\n");
        out.push_str("| Dataset         | |E+| | |E-| |\n");
        out.push_str("+-----------------+------+------+\n");
        for name in &args.datasets {
            let d = p2mdie_datasets::by_name(name, 1.0, args.seed)
                .unwrap_or_else(|| panic!("unknown dataset `{name}`"));
            let (p, n) = d.characterization();
            out.push_str(&format!("| {name:<15} | {p:>4} | {n:>4} |\n"));
        }
        out.push_str("+-----------------+------+------+\n");
        println!("{out}");
    }

    if needs_sweep {
        let cfg = SweepConfig {
            datasets: args.datasets.clone(),
            scale: args.scale,
            seed: args.seed,
            folds: args.folds,
            procs: args.procs.clone(),
            widths: vec![Width::Unlimited, Width::Limit(10)],
            model: CostModel::beowulf_2005(),
            strategies: if wants("table7") {
                Strategy::ALL.to_vec()
            } else {
                Vec::new()
            },
            verbose: args.verbose,
        };
        eprintln!(
            "running sweep: scale={} folds={} procs={:?} ({} full learning runs)",
            cfg.scale,
            cfg.folds,
            cfg.procs,
            cfg.datasets.len()
                * cfg.folds
                * (1 + cfg.procs.len() * cfg.widths.len() + cfg.strategies.len()),
        );
        let res = run_sweep(&cfg);
        println!(
            "(sweep at scale {}, {} folds, virtual Beowulf-2005 cost model)\n",
            cfg.scale, cfg.folds
        );
        if wants("table2") {
            println!("{}", tables::table2(&res));
        }
        if wants("table3") {
            println!("{}", tables::table3(&res));
        }
        if wants("table4") {
            println!("{}", tables::table4(&res));
        }
        if wants("table5") {
            println!("{}", tables::table5(&res));
        }
        if wants("table6") {
            println!("{}", tables::table6(&res));
        }
        if wants("table7") {
            println!("{}", tables::table7(&res));
        }
    }

    if wants("ablation") {
        // Strategy ablation (not a paper table; supports §4.1 and §6):
        // p²-mdie vs data-parallel coverage testing (Konstantopoulos
        // per-clause / Graham per-level) vs per-epoch repartitioning.
        let model = CostModel::beowulf_2005();
        let p = 4;
        println!(
            "Ablation. Parallelization strategies (scale {}, p = {p})\n",
            args.scale
        );
        println!(
            "{:<34} {:>10} {:>9} {:>10} {:>8}",
            "strategy", "T(p) [s]", "speedup", "MBytes", "msgs"
        );
        for name in &args.datasets {
            let ds = p2mdie_datasets::by_name(name, args.scale, args.seed)
                .unwrap_or_else(|| panic!("unknown dataset `{name}`"));
            let seq = run_sequential_timed(&ds.engine, &ds.examples, &model);
            println!("--- {name} (T(1) = {:.0} s) ---", seq.vtime);
            let p2 = run_parallel(
                &ds.engine,
                &ds.examples,
                &ParallelConfig::new(p, Width::Limit(10), args.seed),
            )
            .expect("p2mdie run");
            println!(
                "{:<34} {:>10.0} {:>9.2} {:>10.2} {:>8}",
                "p2-mdie (width 10)",
                p2.vtime,
                seq.vtime / p2.vtime,
                p2.megabytes(),
                p2.total_messages
            );
            let rp = run_parallel(
                &ds.engine,
                &ds.examples,
                &ParallelConfig::new(p, Width::Limit(10), args.seed).with_repartition(),
            )
            .expect("repartition run");
            println!(
                "{:<34} {:>10.0} {:>9.2} {:>10.2} {:>8}",
                "p2-mdie + epoch repartitioning",
                rp.vtime,
                seq.vtime / rp.vtime,
                rp.megabytes(),
                rp.total_messages
            );
            for (label, gran) in [
                ("coverage-parallel (per level)", EvalGranularity::PerLevel),
                ("coverage-parallel (per clause)", EvalGranularity::PerClause),
            ] {
                let cp = run_coverage_parallel(&ds.engine, &ds.examples, p, gran, model, args.seed)
                    .expect("baseline run");
                println!(
                    "{:<34} {:>10.0} {:>9.2} {:>10.2} {:>8}",
                    label,
                    cp.vtime,
                    seq.vtime / cp.vtime,
                    cp.megabytes(),
                    cp.total_messages
                );
            }
        }
        println!();
    }

    if wants("figure3") {
        // One small run with 3 workers; render the first two epochs'
        // pipeline activity, reproducing Figures 3-4 from a live run.
        let ds = p2mdie_datasets::carcinogenesis(0.15, args.seed);
        let cfg = ParallelConfig::new(3, Width::Limit(10), args.seed);
        let rep = run_parallel(&ds.engine, &ds.examples, &cfg).expect("figure3 run");
        println!("Figure 3/4. Pipelined rule search with 3 workers (live trace)\n");
        for trace in rep.traces.iter().take(2) {
            println!("{}", render_pipeline_trace(trace, &ds.syms));
        }
        println!(
            "run summary: {} epochs, {} rules, T({}) = {:.0} virtual s, {:.2} MB",
            rep.epochs,
            rep.theory.len(),
            cfg.workers,
            rep.vtime,
            rep.megabytes()
        );
    }
}
