//! Before/after benchmark for the PR-1 deduction-hot-path rework.
//!
//! Measures the pre-refactor implementation (the verbatim seed replicas in
//! `p2mdie_bench::legacy`, built on `prover::reference`) against the
//! optimized stack (goal-stack prover, monotone coverage pruning, optional
//! thread fan-out) on three workloads:
//!
//! 1. `prover_backtracking` — deep recursive `ancestor/2` proofs;
//! 2. `coverage_eval` — rule evaluation over a carcinogenesis-scale KB,
//!    both a single rule and the refinement-chain workload `learn_rule`
//!    actually issues (parent coverage masking the child);
//! 3. `learn_rule_search` — a full breadth-first search from one seed;
//! 4. `second_arg_bound` — `bond/4` retrieval with the molecule unbound,
//!    where only the compiled KB's multi-argument join indexes narrow;
//! 5. `worker_startup` — building the background KB fresh (consult the
//!    textual theory: parse, intern, index) vs adopting a serialized
//!    compiled-KB snapshot (decode bytes, validate, done — see
//!    `p2mdie_logic::snapshot`);
//! 6. `fact_memory` — resident fact-store bytes of the column-native
//!    layout vs the retired duplicate row+column layout, on the
//!    carcinogenesis and trains background KBs, with a trains coverage
//!    run asserted bit-identical to the seed replica alongside;
//! 7. `all_ground_scan` — ground membership probes (the coverage inner
//!    loop) with only the reference position-0 index retained, so each
//!    probe walks its full posting run: the all-ground stripe-compare
//!    kernel vs the per-row unification path it replaced;
//! 8. `posting_memory` — resident posting-index bytes of the CSR layout
//!    (sorted keys + run offsets + one contiguous index buffer) vs the
//!    retired per-key `FxHashMap<TermId, Vec<u32>>` layout, on the same
//!    background KBs. Exact byte accounting, so CI enforces it
//!    deterministically alongside `fact_memory`;
//! 9. `warm_job_submit` — one coverage job on a *resident* service mesh
//!    (submit, wait; the compiled KB already shipped and adopted) vs the
//!    one-shot shape that builds a fresh mesh, ships the KB, runs the
//!    same job, and tears the mesh down — the PR-8 ILP-as-a-service win.
//!
//! One caveat on the "before" timings: this binary builds without the
//! `row-oracle` feature, so the seed-replica provers iterate rows rebuilt
//! lazily from the columnar store — a small extra cost the true seed (with
//! rows resident) did not pay. The speedup bars are lower bounds either
//! way, and the differential *tests* run with rows resident.
//!
//! Writes the numbers to `BENCH_prover.json` (repo root) and exits non-zero
//! when the coverage-evaluation speedup falls below 2x, the
//! second-arg-bound speedup falls below 3x, the worker-startup speedup
//! falls below 5x, the all-ground-scan speedup falls below 2x, the
//! warm-job-submit speedup falls below 5x, the fact-memory reduction falls
//! below 1.8x, or the posting-memory reduction falls below 1.5x, so CI can
//! gate on the acceptance criteria.

use p2mdie_bench::{legacy, workloads};
use p2mdie_cluster::codec::{from_bytes, to_bytes};
use p2mdie_datasets::carcinogenesis;
use p2mdie_ilp::coverage::{evaluate_rule_threads, Coverage};
use p2mdie_ilp::refine::RuleShape;
use p2mdie_ilp::search::search_rules;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::{reference, ProofLimits, Prover};
use p2mdie_logic::snapshot::KbSnapshot;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::Program;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-N wall time for a routine, in nanoseconds per run.
fn best_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

struct Entry {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

/// Workload 6 (`fact_memory`): exact byte accounting of the column-native
/// fact store vs the retired row+column layout, plus a trains coverage run
/// asserted bit-identical to the seed replica. Deterministic (no timing),
/// so CI enforces this gate unconditionally via `--fact-memory-only`.
fn fact_memory_entries(kb: &KnowledgeBase) -> Vec<(&'static str, usize, usize)> {
    let tr = p2mdie_datasets::trains(20, 7);
    assert_eq!(
        kb.resident_rows(),
        0,
        "release builds must not carry the row-oracle store"
    );
    assert_eq!(tr.engine.kb.resident_rows(), 0);

    // Identity on trains: legacy (seed replica) vs column-native coverage
    // of the seed's bottom clause, full example set.
    let bottom_tr = tr.engine.saturate(&tr.examples.pos[0]).expect("saturates");
    let rule_tr = bottom_tr.to_clause();
    let legacy_cov = legacy::evaluate_rule(
        &tr.engine.kb,
        tr.engine.settings.proof,
        &rule_tr,
        &tr.examples,
        None,
        None,
    );
    let new_cov = evaluate_rule_threads(
        &tr.engine.kb,
        tr.engine.settings.proof,
        &rule_tr,
        &tr.examples,
        None,
        None,
        1,
    );
    assert_eq!(
        legacy_cov, new_cov,
        "trains coverage must stay bit-identical to the seed replica"
    );

    vec![
        (
            "carcinogenesis",
            kb.row_baseline_bytes(),
            kb.fact_store_bytes(),
        ),
        (
            "trains",
            tr.engine.kb.row_baseline_bytes(),
            tr.engine.kb.fact_store_bytes(),
        ),
    ]
}

/// Workload 8 (`posting_memory`): exact byte accounting of the CSR posting
/// store vs the retired per-key hashmap layout it replaced. Deterministic
/// (no timing), enforced by CI alongside `fact_memory`.
fn posting_memory_entries(kb: &KnowledgeBase) -> Vec<(&'static str, usize, usize)> {
    let tr = p2mdie_datasets::trains(20, 7);
    vec![
        (
            "carcinogenesis",
            kb.posting_hashmap_baseline_bytes(),
            kb.posting_store_bytes(),
        ),
        (
            "trains",
            tr.engine.kb.posting_hashmap_baseline_bytes(),
            tr.engine.kb.posting_store_bytes(),
        ),
    ]
}

/// Prints the fact-memory rows and returns whether any misses the 1.8x bar.
fn report_fact_memory(fact_memory: &[(&str, usize, usize)]) -> bool {
    let mut failed = false;
    for (name, baseline, store) in fact_memory {
        let reduction = *baseline as f64 / *store as f64;
        println!(
            "fact_memory/{name:<12} rows+cols {baseline:>10} B   columns {store:>10} B   reduction {reduction:>5.2}x"
        );
        if reduction < 1.8 {
            eprintln!(
                "FAIL: fact_memory/{name} reduction {reduction:.2}x is below the 1.8x acceptance bar"
            );
            failed = true;
        }
    }
    failed
}

/// Prints the posting-memory rows and returns whether any misses the 1.5x
/// bar.
fn report_posting_memory(posting_memory: &[(&str, usize, usize)]) -> bool {
    let mut failed = false;
    for (name, baseline, store) in posting_memory {
        let reduction = *baseline as f64 / *store as f64;
        println!(
            "posting_memory/{name:<9} hashmap   {baseline:>10} B   CSR     {store:>10} B   reduction {reduction:>5.2}x"
        );
        if reduction < 1.5 {
            eprintln!(
                "FAIL: posting_memory/{name} reduction {reduction:.2}x is below the 1.5x acceptance bar"
            );
            failed = true;
        }
    }
    failed
}

fn main() {
    if std::env::args().any(|a| a == "--fact-memory-only") {
        let d = carcinogenesis(0.5, 7);
        let fact_failed = report_fact_memory(&fact_memory_entries(&d.engine.kb));
        let posting_failed = report_posting_memory(&posting_memory_entries(&d.engine.kb));
        if fact_failed || posting_failed {
            std::process::exit(1);
        }
        return;
    }
    let mut entries: Vec<Entry> = Vec::new();
    let samples = 7;

    // ---- 1. Prover backtracking: deep recursion over a 200-link chain.
    {
        let mut prog = Program::new();
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("parent(p{i}, p{}).\n", i + 1));
        }
        src.push_str("ancestor(X, Y) :- parent(X, Y).\n");
        src.push_str("ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n");
        prog.consult(&src).expect("consult");
        let limits = ProofLimits {
            max_depth: 256,
            max_steps: 10_000_000,
        };
        let hit = prog.parse_query("ancestor(p0, p150)").unwrap();
        let miss = prog.parse_query("ancestor(p150, p0)").unwrap();

        let old = reference::Prover::new(prog.kb(), limits);
        let before = best_ns(samples, || {
            black_box(old.prove_ground(black_box(&hit)));
            black_box(old.prove_ground(black_box(&miss)));
        });
        let new = Prover::new(prog.kb(), limits);
        let after = best_ns(samples, || {
            black_box(new.prove_ground(black_box(&hit)));
            black_box(new.prove_ground(black_box(&miss)));
        });
        entries.push(Entry {
            name: "prover_backtracking",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 2 + 3. Carcinogenesis-scale KB.
    let d = carcinogenesis(0.5, 7);
    let proof = d.engine.settings.proof;
    let kb = &d.engine.kb;
    let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");

    // The refinement workload `learn_rule` issues: walk down the lattice
    // one level at a time; at each level evaluate the first few successors
    // of the current node (the breadth-first frontier slice), then descend
    // into the first of them. Levels: 0 (root) .. max_body.
    let max_body = d.engine.settings.max_body;
    let mut levels: Vec<Vec<RuleShape>> = vec![vec![RuleShape::empty()]];
    let mut shape = RuleShape::empty();
    for _ in 0..max_body {
        let succ: Vec<RuleShape> = shape
            .successors(&bottom, max_body)
            .into_iter()
            .take(3)
            .collect();
        if succ.is_empty() {
            break;
        }
        shape = succ[0].clone();
        levels.push(succ);
    }
    let level_clauses: Vec<Vec<_>> = levels
        .iter()
        .map(|l| l.iter().map(|s| s.to_clause(&bottom)).collect())
        .collect();

    // Single-rule coverage (no masks apply: like-for-like raw eval).
    {
        let clause = &level_clauses[1][0];
        let before = best_ns(samples, || {
            black_box(legacy::evaluate_rule(
                kb,
                proof,
                clause,
                &d.examples,
                None,
                None,
            ));
        });
        let after = best_ns(samples, || {
            black_box(evaluate_rule_threads(
                kb,
                proof,
                clause,
                &d.examples,
                None,
                None,
                1,
            ));
        });
        entries.push(Entry {
            name: "coverage_single_rule",
            before_ns: before,
            after_ns: after,
        });
    }

    // Refinement coverage: the workload the search actually issues. Legacy
    // evaluates every frontier node on the full example set; the optimized
    // path masks each level's nodes with their shared parent's coverage
    // (bit-identical results, O(|parent coverage|) work per node).
    {
        let before = best_ns(samples, || {
            for level in &level_clauses {
                for clause in level {
                    black_box(legacy::evaluate_rule(
                        kb,
                        proof,
                        clause,
                        &d.examples,
                        None,
                        None,
                    ));
                }
            }
        });
        let after = best_ns(samples, || {
            let mut masks: Option<Coverage> = None;
            for level in &level_clauses {
                let mut first_cov: Option<Coverage> = None;
                for clause in level {
                    let cov = evaluate_rule_threads(
                        kb,
                        proof,
                        clause,
                        &d.examples,
                        masks.as_ref().map(|m| &m.pos),
                        masks.as_ref().map(|m| &m.neg),
                        1,
                    );
                    if first_cov.is_none() {
                        first_cov = Some(black_box(cov));
                    }
                }
                // Descend into the level's first node, as the walk above did.
                masks = first_cov;
            }
        });
        entries.push(Entry {
            name: "coverage_eval",
            before_ns: before,
            after_ns: after,
        });
    }

    // Full learn_rule search from one seed.
    {
        let settings = &d.engine.settings;
        let before = best_ns(3, || {
            black_box(legacy::search_rules(
                kb,
                settings,
                &bottom,
                &d.examples,
                None,
                &[],
            ));
        });
        let after = best_ns(3, || {
            black_box(search_rules(kb, settings, &bottom, &d.examples, None, &[]));
        });
        entries.push(Entry {
            name: "learn_rule_search",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 4. Second-arg-bound retrieval: bond/4 with the molecule unbound.
    // The seed's first-argument index has nothing to narrow on (full scan
    // per query); the compiled KB's multi-argument join index probes the
    // bound second argument. Acceptance bar: >= 3x.
    {
        let (_t, kb, queries) = workloads::bond_world();
        let expect = workloads::run_bond_reference(&kb, &queries);
        assert_eq!(
            workloads::run_bond_compiled(&kb, &queries),
            expect,
            "provers must enumerate identical solutions"
        );
        let before = best_ns(samples, || {
            black_box(workloads::run_bond_reference(&kb, &queries));
        });
        let after = best_ns(samples, || {
            black_box(workloads::run_bond_compiled(&kb, &queries));
        });
        entries.push(Entry {
            name: "second_arg_bound",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 5. Worker startup: fresh build vs snapshot load.
    // "Fresh" is what every rank of a real deployment does today: read the
    // background theory in its textual (Prolog) form and rebuild symbols,
    // arena, columns, posting lists, and compiled rules from scratch.
    // "Snapshot" is the PR-3 path: decode the wire bytes of the master's
    // compiled KB and adopt it after structural validation. Bar: >= 5x.
    {
        let syms = &d.syms;
        // Literal renderer that re-parses: comparison/arith builtins print
        // infix (the clause pretty-printer emits them prefix, which the
        // parser rejects at term position).
        let infix = ["=", "\\=", "<", "=<", ">", ">=", "=:=", "=\\=", "is"];
        let render_lit = |l: &p2mdie_logic::clause::Literal| -> String {
            let name = syms.name(l.pred);
            if l.args.len() == 2 && infix.contains(&&*name) {
                format!(
                    "{} {} {}",
                    l.args[0].display(syms),
                    name,
                    l.args[1].display(syms)
                )
            } else {
                format!("{}", l.display(syms))
            }
        };
        let mut src = String::new();
        for key in kb.predicates() {
            for f in kb.facts_for(key) {
                src.push_str(&format!("{}.\n", f.display(syms)));
            }
            for r in kb.rules_for(key) {
                let body: Vec<String> = r.body.iter().map(&render_lit).collect();
                src.push_str(&format!(
                    "{} :- {}.\n",
                    r.head.display(syms),
                    body.join(", ")
                ));
            }
        }
        let snap_bytes = to_bytes(&kb.to_snapshot());

        // Both paths must produce the same store before we time anything.
        let mut prog = Program::new();
        prog.consult(&src).expect("background theory re-parses");
        prog.kb_mut().optimize();
        assert_eq!(prog.kb().num_facts(), kb.num_facts(), "parse lost facts");
        let loaded = KnowledgeBase::from_snapshot(
            from_bytes::<KbSnapshot>(snap_bytes.clone()).expect("snapshot decodes"),
            SymbolTable::new(),
        )
        .expect("snapshot validates");
        assert_eq!(loaded.num_facts(), kb.num_facts(), "snapshot lost facts");
        assert_eq!(loaded.num_rules(), kb.num_rules(), "snapshot lost rules");

        // Time construction only — the clock stops before the store is
        // dropped (teardown is not startup, and both sides tear down the
        // same store).
        let mut before = f64::INFINITY;
        for _ in 0..samples {
            let start = Instant::now();
            let mut prog = Program::new();
            prog.consult(black_box(&src)).expect("consult");
            // Every dataset loader ends its bulk load this way.
            prog.kb_mut().optimize();
            black_box(prog.kb().num_facts());
            before = before.min(start.elapsed().as_nanos() as f64);
            drop(prog);
        }
        let mut after = f64::INFINITY;
        for _ in 0..samples {
            let start = Instant::now();
            let snap: KbSnapshot =
                from_bytes(black_box(snap_bytes.clone())).expect("snapshot decodes");
            let loaded = KnowledgeBase::from_snapshot(snap, SymbolTable::new()).expect("validates");
            black_box(loaded.num_facts());
            after = after.min(start.elapsed().as_nanos() as f64);
            drop(loaded);
        }
        entries.push(Entry {
            name: "worker_startup",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 6. Fact-store memory: the column-native store vs the retired
    // row+column layout (every fact kept a second time as a row `Literal`
    // next to its indexable-prefix columns). Bytes are computed from the
    // same KB by the store's own accounting (`fact_store_bytes` /
    // `row_baseline_bytes`), so the comparison is exact, not sampled; the
    // shared arena and posting lists are excluded, while arena terms that
    // exist only for past-prefix columns are charged to the new layout.
    // Alongside the bytes, bit-identity is re-asserted on the trains
    // workload. Acceptance bar: >= 1.8x smaller.
    let fact_memory = fact_memory_entries(kb);

    // ---- 7. All-ground scan: ground membership probes with only the
    // reference position-0 index retained, so every probe walks its
    // molecule's full posting run and the per-candidate test is the whole
    // retrieval cost. Before: the per-row unification path (kernel off).
    // After: the all-ground stripe-compare kernel. Same prover, same
    // plans, same steps — only the data movement differs. Bar: >= 2x.
    {
        let (_t, akb, queries) = workloads::all_ground_world();
        let expect = workloads::run_all_ground(&akb, &queries, false);
        assert_eq!(
            workloads::run_all_ground(&akb, &queries, true),
            expect,
            "kernel must prove identical probes"
        );
        let before = best_ns(samples, || {
            black_box(workloads::run_all_ground(&akb, &queries, false));
        });
        let after = best_ns(samples, || {
            black_box(workloads::run_all_ground(&akb, &queries, true));
        });
        entries.push(Entry {
            name: "all_ground_scan",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 8. Posting-index memory: CSR (sorted keys + run offsets + one
    // contiguous index buffer) vs the retired per-key hashmap. Exact byte
    // accounting from the store itself. Acceptance bar: >= 1.5x smaller.
    let posting_memory = posting_memory_entries(kb);

    // ---- 9. Warm job submission: the same coverage job (one head-only
    // clause, always-true body, so the measured cost is the job machinery,
    // not deduction) submitted to a *standing* resident mesh vs run in the
    // one-shot shape — build a fresh service, ship the compiled KB, run
    // the job, tear the mesh down — that every pre-PR-8 entry point paid
    // per call. Bar: >= 5x.
    {
        use p2mdie_core::job::{JobSpec, JobState};
        use p2mdie_core::scheduler::{Service, ServiceConfig};

        let head_only = vec![level_clauses[0][0].clone()];
        let submit_once = |service: &Service| {
            let outcome = service
                .submit(JobSpec::coverage(d.examples.clone(), head_only.clone()))
                .expect("queue has room for one job")
                .wait();
            assert_eq!(outcome.state, JobState::Done, "{:?}", outcome.error);
            black_box(outcome.coverage().len());
        };

        let before = best_ns(samples, || {
            let service = Service::new(&d.engine, ServiceConfig::new(2));
            submit_once(&service);
            service.shutdown().expect("clean teardown");
        });
        let warm = Service::new(&d.engine, ServiceConfig::new(2));
        submit_once(&warm); // adopt the KB before the clock starts
        let after = best_ns(samples, || submit_once(&warm));
        warm.shutdown().expect("clean teardown");
        entries.push(Entry {
            name: "warm_job_submit",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- Flight-recorder sample: one instrumented refinement-coverage
    // pass with the prover hot counters on, snapshotted into the report's
    // machine-readable `metrics` block. Sampling is re-disabled before any
    // timing could be affected (all timed loops above ran with it off, so
    // the gated speedups measure the zero-overhead path).
    let metrics_snapshot = {
        use p2mdie_obs::metrics::hot;
        hot::reset();
        hot::enable();
        let mut masks: Option<Coverage> = None;
        for level in &level_clauses {
            let mut first_cov: Option<Coverage> = None;
            for clause in level {
                let cov = evaluate_rule_threads(
                    kb,
                    proof,
                    clause,
                    &d.examples,
                    masks.as_ref().map(|m| &m.pos),
                    masks.as_ref().map(|m| &m.neg),
                    1,
                );
                if first_cov.is_none() {
                    first_cov = Some(cov);
                }
            }
            masks = first_cov;
        }
        hot::disable();
        p2mdie_obs::MetricsSnapshot::from_entries(hot::entries())
    };

    // ---- Report.
    let mut json = String::from("{\n  \"description\": \"Deduction hot path: pre-refactor (seed replica) vs compiled KB (goal-stack prover, monotone coverage pruning, multi-arg join indexes); worker_startup: fresh textual consult vs compiled-KB snapshot load; all_ground_scan: all-ground stripe-compare kernel vs per-row unification on position-0-only retrieval; fact_memory: column-native fact store vs the retired row+column layout (exact byte accounting; shared arena/postings excluded, column-only arena growth past the indexable prefix charged to the new layout); posting_memory: CSR posting store vs the retired per-key hashmap layout (exact byte accounting); warm_job_submit: one coverage job on a standing resident service mesh vs the one-shot build-ship-run-teardown shape. Best-of-N wall times\",\n  \"benches\": {\n");
    for e in entries.iter() {
        println!(
            "{:<24} before {:>12.0} ns   after {:>12.0} ns   speedup {:>5.2}x",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup()
        );
        json.push_str(&format!(
            "    \"{}\": {{ \"before_ns\": {:.0}, \"after_ns\": {:.0}, \"speedup\": {:.3} }},\n",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup(),
        ));
    }
    json.push_str("    \"fact_memory\": {\n");
    for (i, (name, baseline, store)) in fact_memory.iter().enumerate() {
        let reduction = *baseline as f64 / *store as f64;
        json.push_str(&format!(
            "      \"{}\": {{ \"row_baseline_bytes\": {}, \"column_store_bytes\": {}, \"reduction\": {:.3} }}{}\n",
            name,
            baseline,
            store,
            reduction,
            if i + 1 < fact_memory.len() { "," } else { "" }
        ));
    }
    json.push_str("    },\n    \"posting_memory\": {\n");
    for (i, (name, baseline, store)) in posting_memory.iter().enumerate() {
        let reduction = *baseline as f64 / *store as f64;
        json.push_str(&format!(
            "      \"{}\": {{ \"hashmap_baseline_bytes\": {}, \"csr_store_bytes\": {}, \"reduction\": {:.3} }}{}\n",
            name,
            baseline,
            store,
            reduction,
            if i + 1 < posting_memory.len() { "," } else { "" }
        ));
    }
    json.push_str("    }\n  },\n  \"metrics\": ");
    json.push_str(&metrics_snapshot.to_json(2));
    json.push_str("\n}\n");
    let memory_failed = report_fact_memory(&fact_memory) | report_posting_memory(&posting_memory);
    std::fs::write("BENCH_prover.json", &json).expect("write BENCH_prover.json");
    println!("\nwrote BENCH_prover.json");

    let mut failed = memory_failed;
    for (name, bar) in [
        ("coverage_eval", 2.0),
        ("second_arg_bound", 3.0),
        ("worker_startup", 5.0),
        ("all_ground_scan", 2.0),
        ("warm_job_submit", 5.0),
    ] {
        let e = entries
            .iter()
            .find(|e| e.name == name)
            .expect("gated entry present");
        if e.speedup() < bar {
            eprintln!(
                "FAIL: {name} speedup {:.2}x is below the {bar}x acceptance bar",
                e.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
