//! Before/after benchmark for the PR-1 deduction-hot-path rework.
//!
//! Measures the pre-refactor implementation (the verbatim seed replicas in
//! `p2mdie_bench::legacy`, built on `prover::reference`) against the
//! optimized stack (goal-stack prover, monotone coverage pruning, optional
//! thread fan-out) on three workloads:
//!
//! 1. `prover_backtracking` — deep recursive `ancestor/2` proofs;
//! 2. `coverage_eval` — rule evaluation over a carcinogenesis-scale KB,
//!    both a single rule and the refinement-chain workload `learn_rule`
//!    actually issues (parent coverage masking the child);
//! 3. `learn_rule_search` — a full breadth-first search from one seed;
//! 4. `second_arg_bound` — `bond/4` retrieval with the molecule unbound,
//!    where only the compiled KB's multi-argument join indexes narrow.
//!
//! Writes the numbers to `BENCH_prover.json` (repo root) and exits non-zero
//! when the coverage-evaluation speedup falls below 2x or the
//! second-arg-bound speedup falls below 3x, so CI can gate on the
//! acceptance criteria.

use p2mdie_bench::{legacy, workloads};
use p2mdie_datasets::carcinogenesis;
use p2mdie_ilp::coverage::{evaluate_rule_threads, Coverage};
use p2mdie_ilp::refine::RuleShape;
use p2mdie_ilp::search::search_rules;
use p2mdie_logic::prover::{reference, ProofLimits, Prover};
use p2mdie_logic::Program;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-N wall time for a routine, in nanoseconds per run.
fn best_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

struct Entry {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();
    let samples = 7;

    // ---- 1. Prover backtracking: deep recursion over a 200-link chain.
    {
        let mut prog = Program::new();
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("parent(p{i}, p{}).\n", i + 1));
        }
        src.push_str("ancestor(X, Y) :- parent(X, Y).\n");
        src.push_str("ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n");
        prog.consult(&src).expect("consult");
        let limits = ProofLimits {
            max_depth: 256,
            max_steps: 10_000_000,
        };
        let hit = prog.parse_query("ancestor(p0, p150)").unwrap();
        let miss = prog.parse_query("ancestor(p150, p0)").unwrap();

        let old = reference::Prover::new(prog.kb(), limits);
        let before = best_ns(samples, || {
            black_box(old.prove_ground(black_box(&hit)));
            black_box(old.prove_ground(black_box(&miss)));
        });
        let new = Prover::new(prog.kb(), limits);
        let after = best_ns(samples, || {
            black_box(new.prove_ground(black_box(&hit)));
            black_box(new.prove_ground(black_box(&miss)));
        });
        entries.push(Entry {
            name: "prover_backtracking",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 2 + 3. Carcinogenesis-scale KB.
    let d = carcinogenesis(0.5, 7);
    let proof = d.engine.settings.proof;
    let kb = &d.engine.kb;
    let bottom = d.engine.saturate(&d.examples.pos[0]).expect("saturates");

    // The refinement workload `learn_rule` issues: walk down the lattice
    // one level at a time; at each level evaluate the first few successors
    // of the current node (the breadth-first frontier slice), then descend
    // into the first of them. Levels: 0 (root) .. max_body.
    let max_body = d.engine.settings.max_body;
    let mut levels: Vec<Vec<RuleShape>> = vec![vec![RuleShape::empty()]];
    let mut shape = RuleShape::empty();
    for _ in 0..max_body {
        let succ: Vec<RuleShape> = shape
            .successors(&bottom, max_body)
            .into_iter()
            .take(3)
            .collect();
        if succ.is_empty() {
            break;
        }
        shape = succ[0].clone();
        levels.push(succ);
    }
    let level_clauses: Vec<Vec<_>> = levels
        .iter()
        .map(|l| l.iter().map(|s| s.to_clause(&bottom)).collect())
        .collect();

    // Single-rule coverage (no masks apply: like-for-like raw eval).
    {
        let clause = &level_clauses[1][0];
        let before = best_ns(samples, || {
            black_box(legacy::evaluate_rule(
                kb,
                proof,
                clause,
                &d.examples,
                None,
                None,
            ));
        });
        let after = best_ns(samples, || {
            black_box(evaluate_rule_threads(
                kb,
                proof,
                clause,
                &d.examples,
                None,
                None,
                1,
            ));
        });
        entries.push(Entry {
            name: "coverage_single_rule",
            before_ns: before,
            after_ns: after,
        });
    }

    // Refinement coverage: the workload the search actually issues. Legacy
    // evaluates every frontier node on the full example set; the optimized
    // path masks each level's nodes with their shared parent's coverage
    // (bit-identical results, O(|parent coverage|) work per node).
    {
        let before = best_ns(samples, || {
            for level in &level_clauses {
                for clause in level {
                    black_box(legacy::evaluate_rule(
                        kb,
                        proof,
                        clause,
                        &d.examples,
                        None,
                        None,
                    ));
                }
            }
        });
        let after = best_ns(samples, || {
            let mut masks: Option<Coverage> = None;
            for level in &level_clauses {
                let mut first_cov: Option<Coverage> = None;
                for clause in level {
                    let cov = evaluate_rule_threads(
                        kb,
                        proof,
                        clause,
                        &d.examples,
                        masks.as_ref().map(|m| &m.pos),
                        masks.as_ref().map(|m| &m.neg),
                        1,
                    );
                    if first_cov.is_none() {
                        first_cov = Some(black_box(cov));
                    }
                }
                // Descend into the level's first node, as the walk above did.
                masks = first_cov;
            }
        });
        entries.push(Entry {
            name: "coverage_eval",
            before_ns: before,
            after_ns: after,
        });
    }

    // Full learn_rule search from one seed.
    {
        let settings = &d.engine.settings;
        let before = best_ns(3, || {
            black_box(legacy::search_rules(
                kb,
                settings,
                &bottom,
                &d.examples,
                None,
                &[],
            ));
        });
        let after = best_ns(3, || {
            black_box(search_rules(kb, settings, &bottom, &d.examples, None, &[]));
        });
        entries.push(Entry {
            name: "learn_rule_search",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- 4. Second-arg-bound retrieval: bond/4 with the molecule unbound.
    // The seed's first-argument index has nothing to narrow on (full scan
    // per query); the compiled KB's multi-argument join index probes the
    // bound second argument. Acceptance bar: >= 3x.
    {
        let (_t, kb, queries) = workloads::bond_world();
        let expect = workloads::run_bond_reference(&kb, &queries);
        assert_eq!(
            workloads::run_bond_compiled(&kb, &queries),
            expect,
            "provers must enumerate identical solutions"
        );
        let before = best_ns(samples, || {
            black_box(workloads::run_bond_reference(&kb, &queries));
        });
        let after = best_ns(samples, || {
            black_box(workloads::run_bond_compiled(&kb, &queries));
        });
        entries.push(Entry {
            name: "second_arg_bound",
            before_ns: before,
            after_ns: after,
        });
    }

    // ---- Report.
    let mut json = String::from("{\n  \"description\": \"Deduction hot path: pre-refactor (seed replica) vs compiled KB (goal-stack prover, monotone coverage pruning, multi-arg join indexes), best-of-N wall times\",\n  \"benches\": {\n");
    for (i, e) in entries.iter().enumerate() {
        println!(
            "{:<24} before {:>12.0} ns   after {:>12.0} ns   speedup {:>5.2}x",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup()
        );
        json.push_str(&format!(
            "    \"{}\": {{ \"before_ns\": {:.0}, \"after_ns\": {:.0}, \"speedup\": {:.3} }}{}\n",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_prover.json", &json).expect("write BENCH_prover.json");
    println!("\nwrote BENCH_prover.json");

    let mut failed = false;
    for (name, bar) in [("coverage_eval", 2.0), ("second_arg_bound", 3.0)] {
        let e = entries
            .iter()
            .find(|e| e.name == name)
            .expect("gated entry present");
        if e.speedup() < bar {
            eprintln!(
                "FAIL: {name} speedup {:.2}x is below the {bar}x acceptance bar",
                e.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
