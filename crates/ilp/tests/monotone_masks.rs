//! Property: evaluating a refinement under its parent's coverage masks is
//! bit-identical to evaluating it unmasked — for random refinement chains,
//! random example labellings, and tight proof bounds. This is the invariant
//! the search's monotone coverage pruning rests on.

use p2mdie_ilp::coverage::{evaluate_rule, evaluate_rule_threads};
use p2mdie_ilp::examples::Examples;
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use proptest::prelude::*;

/// Numbers 1..=n with divisibility and parity facts, plus a recursive
/// `reach/2` relation so proofs actually expand rules under the bounds.
fn world(n: i64) -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    for i in 1..=n {
        for (d, p) in [(2, "d2"), (3, "d3"), (5, "d5"), (7, "d7")] {
            if i % d == 0 {
                kb.assert_fact(Literal::new(t.intern(p), vec![Term::Int(i)]));
            }
        }
        kb.assert_fact(Literal::new(
            t.intern("succ"),
            vec![Term::Int(i), Term::Int(i + 1)],
        ));
    }
    // near(X,Y) :- succ(X,Y).    near(X,Z) :- succ(X,Y), near(Y,Z).
    kb.assert_rule(Clause::new(
        Literal::new(t.intern("near"), vec![Term::Var(0), Term::Var(1)]),
        vec![Literal::new(
            t.intern("succ"),
            vec![Term::Var(0), Term::Var(1)],
        )],
    ));
    kb.assert_rule(Clause::new(
        Literal::new(t.intern("near"), vec![Term::Var(0), Term::Var(2)]),
        vec![
            Literal::new(t.intern("succ"), vec![Term::Var(0), Term::Var(1)]),
            Literal::new(t.intern("near"), vec![Term::Var(1), Term::Var(2)]),
        ],
    ));
    (t, kb)
}

/// Body literal pool a refinement chain draws from, all over head var 0.
fn body_pool(t: &SymbolTable) -> Vec<Literal> {
    let mut pool: Vec<Literal> = ["d2", "d3", "d5", "d7"]
        .iter()
        .map(|p| Literal::new(t.intern(p), vec![Term::Var(0)]))
        .collect();
    // A rule-backed literal with a fresh output variable.
    pool.push(Literal::new(
        t.intern("near"),
        vec![Term::Var(0), Term::Var(1)],
    ));
    pool.push(Literal::new(t.intern("d2"), vec![Term::Var(1)]));
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Masked child evaluation == unmasked child evaluation, along a whole
    /// random refinement chain, with masks chained exactly as the search
    /// chains them (each child's masked coverage masks its own children).
    #[test]
    fn masked_chain_is_bit_identical(
        n in 20i64..90,
        picks in proptest::collection::vec(0usize..6, 1..5),
        labels in proptest::collection::vec(any::<bool>(), 90),
        max_steps in 20u64..2000,
        threads in 1usize..4,
    ) {
        let (t, kb) = world(n);
        let pool = body_pool(&t);
        let tgt = t.intern("tgt");
        let pos: Vec<Literal> = (1..=n)
            .filter(|i| labels[(*i as usize - 1) % labels.len()])
            .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let neg: Vec<Literal> = (1..=n)
            .filter(|i| !labels[(*i as usize - 1) % labels.len()])
            .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let ex = Examples::new(pos, neg);
        let limits = ProofLimits { max_depth: 4, max_steps };
        let head = Literal::new(tgt, vec![Term::Var(0)]);

        // Build the chain: body grows by one pool literal per step.
        let mut body: Vec<Literal> = Vec::new();
        let mut parent_masks: Option<(p2mdie_ilp::bitset::Bitset, p2mdie_ilp::bitset::Bitset)> = None;
        for &pick in &picks {
            body.push(pool[pick % pool.len()].clone());
            let rule = Clause::new(head.clone(), body.clone());

            let full = evaluate_rule(&kb, limits, &rule, &ex, None, None);
            let masked = evaluate_rule_threads(
                &kb,
                limits,
                &rule,
                &ex,
                parent_masks.as_ref().map(|m| &m.0),
                parent_masks.as_ref().map(|m| &m.1),
                threads,
            );
            prop_assert_eq!(&masked.pos, &full.pos, "pos bits diverged at body {:?}", body.len());
            prop_assert_eq!(&masked.neg, &full.neg, "neg bits diverged at body {:?}", body.len());
            // Chain the *masked* coverage down, as the search does.
            parent_masks = Some((masked.pos, masked.neg));
        }
    }

    /// The subset property itself: a child's coverage never exceeds its
    /// parent's, even under tight step budgets.
    #[test]
    fn refinement_coverage_is_monotone(
        n in 20i64..90,
        picks in proptest::collection::vec(0usize..6, 2..5),
        max_steps in 20u64..2000,
    ) {
        let (t, kb) = world(n);
        let pool = body_pool(&t);
        let tgt = t.intern("tgt");
        let ex = Examples::new(
            (1..=n).map(|i| Literal::new(tgt, vec![Term::Int(i)])).collect(),
            (1..=n).map(|i| Literal::new(tgt, vec![Term::Int(-i)])).collect(),
        );
        let limits = ProofLimits { max_depth: 4, max_steps };
        let head = Literal::new(tgt, vec![Term::Var(0)]);

        let mut body: Vec<Literal> = Vec::new();
        let mut prev: Option<p2mdie_ilp::coverage::Coverage> = None;
        for &pick in &picks {
            body.push(pool[pick % pool.len()].clone());
            let cov = evaluate_rule(&kb, limits, &Clause::new(head.clone(), body.clone()), &ex, None, None);
            if let Some(p) = &prev {
                prop_assert!(cov.pos.is_subset(&p.pos), "positive coverage grew under refinement");
                prop_assert!(cov.neg.is_subset(&p.neg), "negative coverage grew under refinement");
            }
            prev = Some(cov);
        }
    }
}
