//! The invariant all of p²-mdie's global evaluation rests on: coverage
//! counts over a partition of the examples sum to the counts over the
//! whole set — for any rule, any partition.

use p2mdie_ilp::coverage::evaluate_rule;
use p2mdie_ilp::examples::Examples;
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::symbol::SymbolTable;
use p2mdie_logic::term::Term;
use proptest::prelude::*;

/// A small random world: numbers 1..=n with divisibility facts, a random
/// conjunction rule, and a random pos/neg labelling of examples.
fn world(n: i64) -> (SymbolTable, KnowledgeBase) {
    let t = SymbolTable::new();
    let mut kb = KnowledgeBase::new(t.clone());
    for i in 1..=n {
        for (d, p) in [(2, "d2"), (3, "d3"), (5, "d5")] {
            if i % d == 0 {
                kb.assert_fact(Literal::new(t.intern(p), vec![Term::Int(i)]));
            }
        }
    }
    (t, kb)
}

proptest! {
    #[test]
    fn partitioned_coverage_sums_to_global(
        n in 10i64..80,
        body in proptest::collection::vec(0usize..3, 0..3),
        labels in proptest::collection::vec(any::<bool>(), 80),
        cuts in proptest::collection::vec(0usize..4, 80),
    ) {
        let (t, kb) = world(n);
        let preds = ["d2", "d3", "d5"];
        let tgt = t.intern("tgt");
        let rule = Clause::new(
            Literal::new(tgt, vec![Term::Var(0)]),
            body.iter().map(|&i| Literal::new(t.intern(preds[i]), vec![Term::Var(0)])).collect(),
        );
        let pos: Vec<Literal> = (1..=n)
            .filter(|i| labels[(*i as usize - 1) % labels.len()])
            .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let neg: Vec<Literal> = (1..=n)
            .filter(|i| !labels[(*i as usize - 1) % labels.len()])
            .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let all = Examples::new(pos.clone(), neg.clone());
        let limits = ProofLimits::default();

        let full = evaluate_rule(&kb, limits, &rule, &all, None, None);

        // Split into 4 parts by the random cut assignment.
        let mut sum_pos = 0u32;
        let mut sum_neg = 0u32;
        for part in 0..4usize {
            let sub = Examples::new(
                pos.iter().enumerate().filter(|(i, _)| cuts[i % cuts.len()] == part).map(|(_, l)| l.clone()).collect(),
                neg.iter().enumerate().filter(|(i, _)| cuts[i % cuts.len()] == part).map(|(_, l)| l.clone()).collect(),
            );
            let cov = evaluate_rule(&kb, limits, &rule, &sub, None, None);
            sum_pos += cov.pos_count();
            sum_neg += cov.neg_count();
        }
        prop_assert_eq!(sum_pos, full.pos_count());
        prop_assert_eq!(sum_neg, full.neg_count());
    }
}
