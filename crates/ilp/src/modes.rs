//! Mode declarations (`modeh`/`modeb`), the language bias of MDIE.
//!
//! A mode template like `bond(+mol, +atom, -atom, #bondtype)` declares, per
//! argument: `+type` — input, must be bound to an already-known term of that
//! type; `-type` — output, introduces new terms; `#type` — a ground constant
//! kept literally in learned rules. `recall` bounds how many solutions of
//! the predicate saturation may use per input instantiation (paper §3.1,
//! following Muggleton's Progol).

use p2mdie_logic::symbol::{SymbolId, SymbolTable};

/// One argument slot of a mode template.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ModeArg {
    /// `+type`: input variable of the given type.
    Input(SymbolId),
    /// `-type`: output variable of the given type.
    Output(SymbolId),
    /// `#type`: ground constant of the given type.
    Const(SymbolId),
}

impl ModeArg {
    /// The type symbol of this slot.
    pub fn type_sym(self) -> SymbolId {
        match self {
            ModeArg::Input(t) | ModeArg::Output(t) | ModeArg::Const(t) => t,
        }
    }
}

/// A mode declaration: recall bound plus predicate template.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModeDecl {
    /// Maximum solutions used per input instantiation during saturation.
    pub recall: u32,
    /// Predicate symbol.
    pub pred: SymbolId,
    /// Argument slots.
    pub args: Vec<ModeArg>,
}

impl ModeDecl {
    /// Parses a template like `"bond(+mol, +atom, -atom, #bondtype)"`.
    ///
    /// Arity-0 predicates are written without parentheses.
    pub fn parse(syms: &SymbolTable, recall: u32, template: &str) -> Result<ModeDecl, String> {
        let template = template.trim();
        let (name, rest) = match template.find('(') {
            None => {
                if template.is_empty() {
                    return Err("empty mode template".to_owned());
                }
                return Ok(ModeDecl {
                    recall,
                    pred: syms.intern(template),
                    args: vec![],
                });
            }
            Some(i) => (&template[..i], &template[i + 1..]),
        };
        let Some(inner) = rest.strip_suffix(')') else {
            return Err(format!("mode template `{template}` missing ')'"));
        };
        let mut args = Vec::new();
        for raw in inner.split(',') {
            let raw = raw.trim();
            let (marker, ty) = raw.split_at(1);
            let ty = ty.trim();
            if ty.is_empty() {
                return Err(format!("mode arg `{raw}` missing type name"));
            }
            let t = syms.intern(ty);
            args.push(match marker {
                "+" => ModeArg::Input(t),
                "-" => ModeArg::Output(t),
                "#" => ModeArg::Const(t),
                other => {
                    return Err(format!(
                        "mode arg `{raw}` must start with +, - or #, got `{other}`"
                    ))
                }
            });
        }
        if name.is_empty() {
            return Err(format!("mode template `{template}` missing predicate name"));
        }
        Ok(ModeDecl {
            recall,
            pred: syms.intern(name),
            args,
        })
    }

    /// Arity of the declared predicate.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Indices of `+` slots.
    pub fn input_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, ModeArg::Input(_)))
            .map(|(i, _)| i)
    }
}

/// The complete language bias: one head mode plus body modes.
///
/// Determinations are implicit — every body mode may appear in a rule for
/// the head predicate (April behaves the same when every `modeb` predicate
/// is determined for the target).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModeSet {
    /// The head (`modeh`) declaration.
    pub head: ModeDecl,
    /// The body (`modeb`) declarations, in declaration order.
    pub body: Vec<ModeDecl>,
}

impl ModeSet {
    /// Creates a mode set with the given head declaration.
    pub fn new(head: ModeDecl) -> Self {
        ModeSet {
            head,
            body: Vec::new(),
        }
    }

    /// Parses and appends a body mode, builder-style.
    pub fn with_body(mut self, syms: &SymbolTable, recall: u32, template: &str) -> Self {
        let decl = ModeDecl::parse(syms, recall, template)
            .unwrap_or_else(|e| panic!("invalid body mode `{template}`: {e}"));
        self.body.push(decl);
        self
    }

    /// Parses a full mode set from a head template and body templates.
    pub fn parse(
        syms: &SymbolTable,
        head_template: &str,
        body_templates: &[(u32, &str)],
    ) -> Result<ModeSet, String> {
        let head = ModeDecl::parse(syms, 1, head_template)?;
        let mut body = Vec::with_capacity(body_templates.len());
        for (recall, t) in body_templates {
            body.push(ModeDecl::parse(syms, *recall, t)?);
        }
        Ok(ModeSet { head, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_template() {
        let t = SymbolTable::new();
        let m = ModeDecl::parse(&t, 5, "bond(+mol, +atom, -atom, #bondtype)").unwrap();
        assert_eq!(m.recall, 5);
        assert_eq!(&*t.name(m.pred), "bond");
        assert_eq!(m.arity(), 4);
        assert_eq!(m.args[0], ModeArg::Input(t.intern("mol")));
        assert_eq!(m.args[2], ModeArg::Output(t.intern("atom")));
        assert_eq!(m.args[3], ModeArg::Const(t.intern("bondtype")));
        assert_eq!(m.input_slots().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn parse_arity_zero() {
        let t = SymbolTable::new();
        let m = ModeDecl::parse(&t, 1, "anything").unwrap();
        assert_eq!(m.arity(), 0);
    }

    #[test]
    fn parse_rejects_bad_markers() {
        let t = SymbolTable::new();
        assert!(ModeDecl::parse(&t, 1, "p(?x)").is_err());
        assert!(ModeDecl::parse(&t, 1, "p(+x").is_err());
        assert!(ModeDecl::parse(&t, 1, "(+x)").is_err());
        assert!(ModeDecl::parse(&t, 1, "p(+)").is_err());
    }

    #[test]
    fn mode_set_builder() {
        let t = SymbolTable::new();
        let ms = ModeSet::new(ModeDecl::parse(&t, 1, "active(+mol)").unwrap())
            .with_body(&t, 8, "atm(+mol, -atom, #elem, -charge)")
            .with_body(&t, 4, "bond(+mol, +atom, -atom, #bondtype)");
        assert_eq!(ms.body.len(), 2);
        assert_eq!(ms.head.args.len(), 1);
    }

    #[test]
    fn parse_whole_set() {
        let t = SymbolTable::new();
        let ms = ModeSet::parse(
            &t,
            "active(+mol)",
            &[
                (8, "atm(+mol, -atom, #elem, -charge)"),
                (4, "gteq(+charge, #charge)"),
            ],
        )
        .unwrap();
        assert_eq!(ms.body.len(), 2);
        assert_eq!(ms.head.recall, 1);
    }
}
