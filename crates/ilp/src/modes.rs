//! Mode declarations (`modeh`/`modeb`), the language bias of MDIE.
//!
//! A mode template like `bond(+mol, +atom, -atom, #bondtype)` declares, per
//! argument: `+type` — input, must be bound to an already-known term of that
//! type; `-type` — output, introduces new terms; `#type` — a ground constant
//! kept literally in learned rules. `recall` bounds how many solutions of
//! the predicate saturation may use per input instantiation (paper §3.1,
//! following Muggleton's Progol).

use p2mdie_logic::clause::PredKey;
use p2mdie_logic::symbol::{SymbolId, SymbolTable};

/// One argument slot of a mode template.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ModeArg {
    /// `+type`: input variable of the given type.
    Input(SymbolId),
    /// `-type`: output variable of the given type.
    Output(SymbolId),
    /// `#type`: ground constant of the given type.
    Const(SymbolId),
}

impl ModeArg {
    /// The type symbol of this slot.
    pub fn type_sym(self) -> SymbolId {
        match self {
            ModeArg::Input(t) | ModeArg::Output(t) | ModeArg::Const(t) => t,
        }
    }
}

/// A mode declaration: recall bound plus predicate template.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModeDecl {
    /// Maximum solutions used per input instantiation during saturation.
    pub recall: u32,
    /// Predicate symbol.
    pub pred: SymbolId,
    /// Argument slots.
    pub args: Vec<ModeArg>,
}

impl ModeDecl {
    /// Parses a template like `"bond(+mol, +atom, -atom, #bondtype)"`.
    ///
    /// Arity-0 predicates are written without parentheses.
    pub fn parse(syms: &SymbolTable, recall: u32, template: &str) -> Result<ModeDecl, String> {
        let template = template.trim();
        let (name, rest) = match template.find('(') {
            None => {
                if template.is_empty() {
                    return Err("empty mode template".to_owned());
                }
                return Ok(ModeDecl {
                    recall,
                    pred: syms.intern(template),
                    args: vec![],
                });
            }
            Some(i) => (&template[..i], &template[i + 1..]),
        };
        let Some(inner) = rest.strip_suffix(')') else {
            return Err(format!("mode template `{template}` missing ')'"));
        };
        let mut args = Vec::new();
        for raw in inner.split(',') {
            let raw = raw.trim();
            let (marker, ty) = raw.split_at(1);
            let ty = ty.trim();
            if ty.is_empty() {
                return Err(format!("mode arg `{raw}` missing type name"));
            }
            let t = syms.intern(ty);
            args.push(match marker {
                "+" => ModeArg::Input(t),
                "-" => ModeArg::Output(t),
                "#" => ModeArg::Const(t),
                other => {
                    return Err(format!(
                        "mode arg `{raw}` must start with +, - or #, got `{other}`"
                    ))
                }
            });
        }
        if name.is_empty() {
            return Err(format!("mode template `{template}` missing predicate name"));
        }
        Ok(ModeDecl {
            recall,
            pred: syms.intern(name),
            args,
        })
    }

    /// Arity of the declared predicate.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Indices of `+` slots.
    pub fn input_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, ModeArg::Input(_)))
            .map(|(i, _)| i)
    }
}

/// The complete language bias: one head mode plus body modes.
///
/// Determinations are implicit — every body mode may appear in a rule for
/// the head predicate (April behaves the same when every `modeb` predicate
/// is determined for the target).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModeSet {
    /// The head (`modeh`) declaration.
    pub head: ModeDecl,
    /// The body (`modeb`) declarations, in declaration order.
    pub body: Vec<ModeDecl>,
}

impl ModeSet {
    /// Creates a mode set with the given head declaration.
    pub fn new(head: ModeDecl) -> Self {
        ModeSet {
            head,
            body: Vec::new(),
        }
    }

    /// Parses and appends a body mode, builder-style.
    pub fn with_body(mut self, syms: &SymbolTable, recall: u32, template: &str) -> Self {
        let decl = ModeDecl::parse(syms, recall, template)
            .unwrap_or_else(|e| panic!("invalid body mode `{template}`: {e}"));
        self.body.push(decl);
        self
    }

    /// Parses a full mode set from a head template and body templates.
    pub fn parse(
        syms: &SymbolTable,
        head_template: &str,
        body_templates: &[(u32, &str)],
    ) -> Result<ModeSet, String> {
        let head = ModeDecl::parse(syms, 1, head_template)?;
        let mut body = Vec::with_capacity(body_templates.len());
        for (recall, t) in body_templates {
            body.push(ModeDecl::parse(syms, *recall, t)?);
        }
        Ok(ModeSet { head, body })
    }

    /// Argument positions that can arrive *bound* in proof goals, per body
    /// predicate (merged across declarations of the same relation). `+`
    /// inputs are bound by dataflow and `#` constants stay ground in
    /// learned rules; a `-` output slot can *also* arrive bound, but only
    /// through a shared variable — saturation shares variables by
    /// `(term, type)` identity, so that requires its type to occur in at
    /// least one other slot of the language bias (e.g. the second `-atom`
    /// of `bond(+mol, -atom, -atom, #ty)` rejoins atoms produced earlier).
    /// Output slots of a type that occurs nowhere else can never be probed;
    /// this is the signal the KB uses to prune their posting-list indexes
    /// (see [`p2mdie_logic::kb::KnowledgeBase::retain_indexes`]).
    pub fn bound_positions(&self) -> Vec<(PredKey, Vec<usize>)> {
        // Type-occurrence census over every slot (head included): an output
        // type seen exactly once can never be shared with another literal.
        let mut type_count: p2mdie_logic::fxhash::FxHashMap<SymbolId, usize> =
            p2mdie_logic::fxhash::FxHashMap::default();
        for a in self
            .head
            .args
            .iter()
            .chain(self.body.iter().flat_map(|m| m.args.iter()))
        {
            *type_count.entry(a.type_sym()).or_insert(0) += 1;
        }
        let mut out: Vec<(PredKey, Vec<usize>)> = Vec::new();
        for m in &self.body {
            let key = PredKey {
                pred: m.pred,
                arity: m.args.len() as u32,
            };
            let positions = m.args.iter().enumerate().filter_map(|(i, a)| match a {
                ModeArg::Input(_) | ModeArg::Const(_) => Some(i),
                ModeArg::Output(t) => (type_count[t] >= 2).then_some(i),
            });
            match out.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ps)) => {
                    for p in positions {
                        if !ps.contains(&p) {
                            ps.push(p);
                        }
                    }
                }
                None => out.push((key, positions.collect())),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_positions_keep_shareable_output_slots() {
        let t = SymbolTable::new();
        let m = ModeSet::parse(
            &t,
            "tgt(+mol)",
            &[
                (1, "bond(+mol, -atom, -atom, #ty)"),
                (1, "lonely(+mol, -unique)"),
            ],
        )
        .unwrap();
        let bp = m.bound_positions();
        let get = |name: &str| {
            bp.iter()
                .find(|(k, _)| k.pred == t.intern(name))
                .map(|(_, ps)| ps.clone())
                .unwrap()
        };
        // `atom` occurs twice, so a bond goal's `-atom` slots can arrive
        // bound through sharing: every position stays indexable.
        assert_eq!(get("bond"), vec![0, 1, 2, 3]);
        // `unique` occurs only in its own slot — no shared variable can
        // ever bind it, so the position is safely prunable.
        assert_eq!(get("lonely"), vec![0]);
    }

    #[test]
    fn parse_full_template() {
        let t = SymbolTable::new();
        let m = ModeDecl::parse(&t, 5, "bond(+mol, +atom, -atom, #bondtype)").unwrap();
        assert_eq!(m.recall, 5);
        assert_eq!(&*t.name(m.pred), "bond");
        assert_eq!(m.arity(), 4);
        assert_eq!(m.args[0], ModeArg::Input(t.intern("mol")));
        assert_eq!(m.args[2], ModeArg::Output(t.intern("atom")));
        assert_eq!(m.args[3], ModeArg::Const(t.intern("bondtype")));
        assert_eq!(m.input_slots().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn parse_arity_zero() {
        let t = SymbolTable::new();
        let m = ModeDecl::parse(&t, 1, "anything").unwrap();
        assert_eq!(m.arity(), 0);
    }

    #[test]
    fn parse_rejects_bad_markers() {
        let t = SymbolTable::new();
        assert!(ModeDecl::parse(&t, 1, "p(?x)").is_err());
        assert!(ModeDecl::parse(&t, 1, "p(+x").is_err());
        assert!(ModeDecl::parse(&t, 1, "(+x)").is_err());
        assert!(ModeDecl::parse(&t, 1, "p(+)").is_err());
    }

    #[test]
    fn mode_set_builder() {
        let t = SymbolTable::new();
        let ms = ModeSet::new(ModeDecl::parse(&t, 1, "active(+mol)").unwrap())
            .with_body(&t, 8, "atm(+mol, -atom, #elem, -charge)")
            .with_body(&t, 4, "bond(+mol, +atom, -atom, #bondtype)");
        assert_eq!(ms.body.len(), 2);
        assert_eq!(ms.head.args.len(), 1);
    }

    #[test]
    fn parse_whole_set() {
        let t = SymbolTable::new();
        let ms = ModeSet::parse(
            &t,
            "active(+mol)",
            &[
                (8, "atm(+mol, -atom, #elem, -charge)"),
                (4, "gteq(+charge, #charge)"),
            ],
        )
        .unwrap();
        assert_eq!(ms.body.len(), 2);
        assert_eq!(ms.head.recall, 1);
    }
}
