//! Downward refinement over the bottom clause.
//!
//! Following Progol/April, the search space for one seed example is the set
//! of clauses whose body is a subset of ⊥e's body (ordered by index). A
//! [`RuleShape`] is such a subset; refinement appends a bottom literal with
//! a *strictly larger index* whose input variables are all bound by the head
//! or by already-selected literals. Because saturation emits producers
//! before consumers (see `bottom.rs`), increasing-index enumeration reaches
//! every dataflow-closed subset exactly once — the lattice is explored
//! without duplicates.

use crate::bottom::BottomClause;
use p2mdie_logic::clause::Clause;
use p2mdie_logic::term::VarId;

/// A candidate rule: indices (ascending) into the bottom clause's body.
#[derive(
    Clone,
    Debug,
    Default,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct RuleShape {
    /// Selected bottom-literal indices, strictly ascending.
    pub lits: Vec<u32>,
}

impl RuleShape {
    /// The most general rule: head with an empty body.
    pub fn empty() -> Self {
        RuleShape::default()
    }

    /// Builds a shape from indices (must be strictly ascending).
    pub fn from_indices(lits: Vec<u32>) -> Self {
        debug_assert!(lits.windows(2).all(|w| w[0] < w[1]), "indices must ascend");
        RuleShape { lits }
    }

    /// Number of body literals.
    pub fn body_len(&self) -> usize {
        self.lits.len()
    }

    /// Materializes the shape against its bottom clause.
    pub fn to_clause(&self, bottom: &BottomClause) -> Clause {
        Clause::new(
            bottom.head.clone(),
            self.lits
                .iter()
                .map(|&i| bottom.lits[i as usize].lit.clone())
                .collect(),
        )
    }

    /// The variables bound once this shape's literals are in the clause:
    /// head variables plus every variable of every selected literal.
    pub fn bound_vars(&self, bottom: &BottomClause) -> Vec<VarId> {
        let mut bound = bottom.head_vars.clone();
        for &i in &self.lits {
            let bl = &bottom.lits[i as usize];
            for &v in bl.inputs.iter().chain(bl.outputs.iter()) {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
        }
        bound
    }

    /// One-step specializations: append an addable literal with index
    /// greater than the current maximum. Returns shapes in index order
    /// (deterministic).
    pub fn successors(&self, bottom: &BottomClause, max_body: usize) -> Vec<RuleShape> {
        if self.lits.len() >= max_body {
            return Vec::new();
        }
        let bound = self.bound_vars(bottom);
        let start = self.lits.last().map_or(0, |&i| i as usize + 1);
        let mut out = Vec::new();
        for j in start..bottom.lits.len() {
            let bl = &bottom.lits[j];
            if bl.inputs.iter().all(|v| bound.contains(v)) {
                let mut lits = Vec::with_capacity(self.lits.len() + 1);
                lits.extend_from_slice(&self.lits);
                lits.push(j as u32);
                out.push(RuleShape { lits });
            }
        }
        out
    }

    /// True when `self`'s literal set is a subset of `other`'s (θ-subsumption
    /// restricted to the shared bottom-clause lattice: fewer literals of the
    /// same ⊥ means more general).
    pub fn generalizes(&self, other: &RuleShape) -> bool {
        let mut it = other.lits.iter();
        self.lits.iter().all(|a| it.any(|b| b == a))
    }
}

/// SplitMix64 — the small deterministic mixer used for lattice partitioning
/// and seeded exploration orders (no external RNG dependency). Public so
/// the strategy layer can derive per-(epoch, rank, round) exploration
/// seeds from the same chain.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A disjoint slice of the refinement lattice for hypothesis-parallel
/// search (the "data-parallel Aleph" strategy: same examples everywhere,
/// different parts of the search space per rank).
///
/// Because [`RuleShape::successors`] only ever appends a strictly larger
/// index, every non-empty shape keeps the first literal it was born with —
/// the lattice is a forest of complete subtrees rooted at the one-literal
/// shapes. Partitioning by a salted hash of that *first* literal therefore
/// yields disjoint, collectively exhaustive subtrees: no shape is reachable
/// from two slices, and every shape is reachable from exactly one. The
/// empty shape (the shared root) is admitted by every slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatticeSlice {
    /// This slice's index in `0..of`.
    pub rank: u64,
    /// Total number of slices.
    pub of: u64,
    /// Shared salt (derived from the job seed) so reruns and resubmissions
    /// repartition identically.
    pub salt: u64,
}

impl LatticeSlice {
    /// True when `shape` belongs to this slice of the lattice.
    pub fn admits(&self, shape: &RuleShape) -> bool {
        if self.of <= 1 {
            return true;
        }
        match shape.lits.first() {
            // The shared root: every slice starts its search there.
            None => true,
            Some(&first) => splitmix64(u64::from(first) ^ self.salt) % self.of == self.rank,
        }
    }
}

/// A set of *dead* shapes: shapes proven unable to reach `min_pos` positive
/// cover, which — coverage being anti-monotone under specialization — kills
/// their entire specialization subtree too.
///
/// This is the pruning knowledge the constraint-driven strategy gossips
/// between ranks. Shapes index into one specific bottom clause, so a store
/// is only meaningful between searches that share the same saturated seed
/// example; callers must clear it when the seed changes.
///
/// The store keeps a generalization antichain: inserting a shape drops any
/// stored shape it generalizes, and is itself dropped when a stored shape
/// already generalizes it.
#[derive(Clone, Debug, Default)]
pub struct ConstraintStore {
    shapes: Vec<RuleShape>,
}

impl ConstraintStore {
    /// Maximum shapes retained; beyond this, inserts are dropped (pruning
    /// is an optimization — forgetting a constraint is always sound).
    pub const CAP: usize = 512;

    /// An empty store.
    pub fn new() -> Self {
        ConstraintStore::default()
    }

    /// Number of stored (minimal) dead shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True when no constraints are held.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The stored antichain, for broadcasting to peers.
    pub fn shapes(&self) -> &[RuleShape] {
        &self.shapes
    }

    /// Records a dead shape. Returns true when the store changed.
    pub fn insert(&mut self, shape: RuleShape) -> bool {
        if self.shapes.iter().any(|s| s.generalizes(&shape)) {
            return false;
        }
        self.shapes.retain(|s| !shape.generalizes(s));
        if self.shapes.len() >= Self::CAP {
            return false;
        }
        self.shapes.push(shape);
        true
    }

    /// Merges a batch of shapes received from a peer.
    pub fn merge(&mut self, shapes: &[RuleShape]) {
        for s in shapes {
            self.insert(s.clone());
        }
    }

    /// True when `shape` is within some stored dead shape's subtree (a
    /// stored generalization of `shape` exists) — the search may skip it
    /// without evaluating.
    pub fn prunes(&self, shape: &RuleShape) -> bool {
        self.shapes.iter().any(|s| s.generalizes(shape))
    }

    /// Drops every constraint (the seed example changed, so stored shapes
    /// no longer index into the current bottom clause).
    pub fn clear(&mut self) {
        self.shapes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom::BottomLiteral;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Hand-built bottom clause:
    ///   head  p(V0)
    ///   0: q(V0, V1)   inputs [0], outputs [1]
    ///   1: r(V1)       inputs [1], outputs []
    ///   2: s(V0)       inputs [0], outputs []
    fn bottom() -> (SymbolTable, BottomClause) {
        let t = SymbolTable::new();
        let lit = |n: &str, args: Vec<Term>| Literal::new(t.intern(n), args);
        let b = BottomClause {
            head: lit("p", vec![Term::Var(0)]),
            head_vars: vec![0],
            lits: vec![
                BottomLiteral {
                    lit: lit("q", vec![Term::Var(0), Term::Var(1)]),
                    inputs: vec![0],
                    outputs: vec![1],
                    depth: 1,
                },
                BottomLiteral {
                    lit: lit("r", vec![Term::Var(1)]),
                    inputs: vec![1],
                    outputs: vec![],
                    depth: 2,
                },
                BottomLiteral {
                    lit: lit("s", vec![Term::Var(0)]),
                    inputs: vec![0],
                    outputs: vec![],
                    depth: 1,
                },
            ],
            num_vars: 2,
            example: lit("p", vec![Term::Sym(t.intern("a"))]),
            steps: 0,
        };
        (t, b)
    }

    #[test]
    fn empty_successors_respect_dataflow() {
        let (_, b) = bottom();
        let succ = RuleShape::empty().successors(&b, 4);
        // r needs V1 which is not yet bound; q and s are addable.
        let idx: Vec<Vec<u32>> = succ.into_iter().map(|s| s.lits).collect();
        assert_eq!(idx, vec![vec![0], vec![2]]);
    }

    #[test]
    fn outputs_unlock_consumers() {
        let (_, b) = bottom();
        let succ = RuleShape::from_indices(vec![0]).successors(&b, 4);
        let idx: Vec<Vec<u32>> = succ.into_iter().map(|s| s.lits).collect();
        assert_eq!(idx, vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn max_body_stops_expansion() {
        let (_, b) = bottom();
        assert!(RuleShape::from_indices(vec![0])
            .successors(&b, 1)
            .is_empty());
    }

    #[test]
    fn to_clause_materializes_selected_literals() {
        let (t, b) = bottom();
        let c = RuleShape::from_indices(vec![0, 1]).to_clause(&b);
        assert_eq!(format!("{}", c.display(&t)), "p(A) :- q(A,B), r(B).");
    }

    #[test]
    fn generalizes_is_subset_order() {
        let a = RuleShape::from_indices(vec![0]);
        let ab = RuleShape::from_indices(vec![0, 2]);
        assert!(a.generalizes(&ab));
        assert!(!ab.generalizes(&a));
        assert!(RuleShape::empty().generalizes(&a));
        assert!(a.generalizes(&a));
    }

    /// All dataflow-closed shapes of the hand-built bottom clause.
    fn all_shapes() -> Vec<RuleShape> {
        let (_, b) = bottom();
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![RuleShape::empty()];
        while let Some(s) = queue.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            queue.extend(s.successors(&b, 4));
        }
        seen.into_iter().collect()
    }

    #[test]
    fn lattice_slices_partition_every_nonempty_shape() {
        let shapes = all_shapes();
        for of in 1..=4u64 {
            for shape in &shapes {
                let admitting = (0..of)
                    .filter(|&rank| LatticeSlice { rank, of, salt: 42 }.admits(shape))
                    .count() as u64;
                if shape.lits.is_empty() {
                    assert_eq!(admitting, of, "shared root belongs to every slice");
                } else {
                    assert_eq!(admitting, 1, "{shape:?} must land on exactly one slice");
                }
            }
        }
    }

    #[test]
    fn lattice_slices_are_subtree_closed() {
        // Whatever slice admits a shape also admits all its successors —
        // the partition never cuts a subtree in half.
        let (_, b) = bottom();
        let slice = LatticeSlice {
            rank: 1,
            of: 3,
            salt: 7,
        };
        for shape in all_shapes() {
            if !shape.lits.is_empty() && slice.admits(&shape) {
                for succ in shape.successors(&b, 4) {
                    assert!(slice.admits(&succ));
                }
            }
        }
    }

    #[test]
    fn constraint_store_keeps_a_minimal_antichain() {
        let mut store = ConstraintStore::new();
        assert!(store.insert(RuleShape::from_indices(vec![0, 1])));
        // A specialization of a stored dead shape adds nothing.
        assert!(!store.insert(RuleShape::from_indices(vec![0, 1, 2])));
        assert_eq!(store.len(), 1);
        // A generalization replaces the more specific entry.
        assert!(store.insert(RuleShape::from_indices(vec![0])));
        assert_eq!(store.len(), 1);
        assert!(store.prunes(&RuleShape::from_indices(vec![0, 2])));
        assert!(!store.prunes(&RuleShape::from_indices(vec![2])));
        store.merge(&[
            RuleShape::from_indices(vec![2]),
            RuleShape::from_indices(vec![0, 2]),
        ]);
        assert_eq!(store.len(), 2);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn lattice_enumeration_reaches_all_closed_subsets() {
        let (_, b) = bottom();
        // BFS from empty must reach exactly the dataflow-closed subsets:
        // {}, {0}, {2}, {0,1}, {0,2}, {0,1,2}.
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![RuleShape::empty()];
        while let Some(s) = queue.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            queue.extend(s.successors(&b, 4));
        }
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&RuleShape::from_indices(vec![0, 1, 2])));
        assert!(!seen.contains(&RuleShape::from_indices(vec![1])));
    }
}
