//! Downward refinement over the bottom clause.
//!
//! Following Progol/April, the search space for one seed example is the set
//! of clauses whose body is a subset of ⊥e's body (ordered by index). A
//! [`RuleShape`] is such a subset; refinement appends a bottom literal with
//! a *strictly larger index* whose input variables are all bound by the head
//! or by already-selected literals. Because saturation emits producers
//! before consumers (see `bottom.rs`), increasing-index enumeration reaches
//! every dataflow-closed subset exactly once — the lattice is explored
//! without duplicates.

use crate::bottom::BottomClause;
use p2mdie_logic::clause::Clause;
use p2mdie_logic::term::VarId;

/// A candidate rule: indices (ascending) into the bottom clause's body.
#[derive(
    Clone,
    Debug,
    Default,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct RuleShape {
    /// Selected bottom-literal indices, strictly ascending.
    pub lits: Vec<u32>,
}

impl RuleShape {
    /// The most general rule: head with an empty body.
    pub fn empty() -> Self {
        RuleShape::default()
    }

    /// Builds a shape from indices (must be strictly ascending).
    pub fn from_indices(lits: Vec<u32>) -> Self {
        debug_assert!(lits.windows(2).all(|w| w[0] < w[1]), "indices must ascend");
        RuleShape { lits }
    }

    /// Number of body literals.
    pub fn body_len(&self) -> usize {
        self.lits.len()
    }

    /// Materializes the shape against its bottom clause.
    pub fn to_clause(&self, bottom: &BottomClause) -> Clause {
        Clause::new(
            bottom.head.clone(),
            self.lits
                .iter()
                .map(|&i| bottom.lits[i as usize].lit.clone())
                .collect(),
        )
    }

    /// The variables bound once this shape's literals are in the clause:
    /// head variables plus every variable of every selected literal.
    pub fn bound_vars(&self, bottom: &BottomClause) -> Vec<VarId> {
        let mut bound = bottom.head_vars.clone();
        for &i in &self.lits {
            let bl = &bottom.lits[i as usize];
            for &v in bl.inputs.iter().chain(bl.outputs.iter()) {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
        }
        bound
    }

    /// One-step specializations: append an addable literal with index
    /// greater than the current maximum. Returns shapes in index order
    /// (deterministic).
    pub fn successors(&self, bottom: &BottomClause, max_body: usize) -> Vec<RuleShape> {
        if self.lits.len() >= max_body {
            return Vec::new();
        }
        let bound = self.bound_vars(bottom);
        let start = self.lits.last().map_or(0, |&i| i as usize + 1);
        let mut out = Vec::new();
        for j in start..bottom.lits.len() {
            let bl = &bottom.lits[j];
            if bl.inputs.iter().all(|v| bound.contains(v)) {
                let mut lits = Vec::with_capacity(self.lits.len() + 1);
                lits.extend_from_slice(&self.lits);
                lits.push(j as u32);
                out.push(RuleShape { lits });
            }
        }
        out
    }

    /// True when `self`'s literal set is a subset of `other`'s (θ-subsumption
    /// restricted to the shared bottom-clause lattice: fewer literals of the
    /// same ⊥ means more general).
    pub fn generalizes(&self, other: &RuleShape) -> bool {
        let mut it = other.lits.iter();
        self.lits.iter().all(|a| it.any(|b| b == a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom::BottomLiteral;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Hand-built bottom clause:
    ///   head  p(V0)
    ///   0: q(V0, V1)   inputs [0], outputs [1]
    ///   1: r(V1)       inputs [1], outputs []
    ///   2: s(V0)       inputs [0], outputs []
    fn bottom() -> (SymbolTable, BottomClause) {
        let t = SymbolTable::new();
        let lit = |n: &str, args: Vec<Term>| Literal::new(t.intern(n), args);
        let b = BottomClause {
            head: lit("p", vec![Term::Var(0)]),
            head_vars: vec![0],
            lits: vec![
                BottomLiteral {
                    lit: lit("q", vec![Term::Var(0), Term::Var(1)]),
                    inputs: vec![0],
                    outputs: vec![1],
                    depth: 1,
                },
                BottomLiteral {
                    lit: lit("r", vec![Term::Var(1)]),
                    inputs: vec![1],
                    outputs: vec![],
                    depth: 2,
                },
                BottomLiteral {
                    lit: lit("s", vec![Term::Var(0)]),
                    inputs: vec![0],
                    outputs: vec![],
                    depth: 1,
                },
            ],
            num_vars: 2,
            example: lit("p", vec![Term::Sym(t.intern("a"))]),
            steps: 0,
        };
        (t, b)
    }

    #[test]
    fn empty_successors_respect_dataflow() {
        let (_, b) = bottom();
        let succ = RuleShape::empty().successors(&b, 4);
        // r needs V1 which is not yet bound; q and s are addable.
        let idx: Vec<Vec<u32>> = succ.into_iter().map(|s| s.lits).collect();
        assert_eq!(idx, vec![vec![0], vec![2]]);
    }

    #[test]
    fn outputs_unlock_consumers() {
        let (_, b) = bottom();
        let succ = RuleShape::from_indices(vec![0]).successors(&b, 4);
        let idx: Vec<Vec<u32>> = succ.into_iter().map(|s| s.lits).collect();
        assert_eq!(idx, vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn max_body_stops_expansion() {
        let (_, b) = bottom();
        assert!(RuleShape::from_indices(vec![0])
            .successors(&b, 1)
            .is_empty());
    }

    #[test]
    fn to_clause_materializes_selected_literals() {
        let (t, b) = bottom();
        let c = RuleShape::from_indices(vec![0, 1]).to_clause(&b);
        assert_eq!(format!("{}", c.display(&t)), "p(A) :- q(A,B), r(B).");
    }

    #[test]
    fn generalizes_is_subset_order() {
        let a = RuleShape::from_indices(vec![0]);
        let ab = RuleShape::from_indices(vec![0, 2]);
        assert!(a.generalizes(&ab));
        assert!(!ab.generalizes(&a));
        assert!(RuleShape::empty().generalizes(&a));
        assert!(a.generalizes(&a));
    }

    #[test]
    fn lattice_enumeration_reaches_all_closed_subsets() {
        let (_, b) = bottom();
        // BFS from empty must reach exactly the dataflow-closed subsets:
        // {}, {0}, {2}, {0,1}, {0,2}, {0,1,2}.
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![RuleShape::empty()];
        while let Some(s) = queue.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            queue.extend(s.successors(&b, 4));
        }
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&RuleShape::from_indices(vec![0, 1, 2])));
        assert!(!seen.contains(&RuleShape::from_indices(vec![1])));
    }
}
