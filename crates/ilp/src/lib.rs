//! Sequential MDIE ILP engine — the April analogue of the `p2mdie`
//! workspace (Fonseca et al., CLUSTER 2005).
//!
//! The crate implements the full Mode-Directed Inverse Entailment pipeline
//! the paper's sequential baseline (Figures 1–2) consists of:
//!
//! * [`modes`] — `modeh`/`modeb` language bias;
//! * [`bottom`] — bottom-clause saturation (`build_msh`);
//! * [`refine`] — Progol-style refinement over ⊥e's literal lattice;
//! * [`coverage`] — rule evaluation with inference-step metering;
//! * [`search`] — top-down breadth-first search with a node budget;
//! * [`mdie`] — the covering loop (one rule per epoch);
//! * [`engine`] — the [`IlpEngine`] facade used by the parallel algorithm.
//!
//! Every expensive operation reports the inference steps it consumed; the
//! cluster substrate turns those into virtual seconds (see DESIGN.md §3).
//!
//! ```
//! use p2mdie_ilp::{Examples, IlpEngine, ModeSet, Settings};
//! use p2mdie_logic::{KnowledgeBase, SymbolTable};
//! use p2mdie_logic::clause::Literal;
//! use p2mdie_logic::term::Term;
//!
//! let syms = SymbolTable::new();
//! let mut kb = KnowledgeBase::new(syms.clone());
//! for i in 1..=10i64 {
//!     if i % 2 == 0 {
//!         kb.assert_fact(Literal::new(syms.intern("even"), vec![Term::Int(i)]));
//!     }
//! }
//! let modes = ModeSet::parse(&syms, "tgt(+num)", &[(1, "even(+num)")]).unwrap();
//! let engine = IlpEngine::new(kb, modes, Settings { min_pos: 1, ..Settings::default() });
//! let tgt = syms.intern("tgt");
//! let examples = Examples::new(
//!     vec![Literal::new(tgt, vec![Term::Int(2)])],
//!     vec![Literal::new(tgt, vec![Term::Int(3)])],
//! );
//! let run = engine.run_sequential(&examples);
//! assert_eq!(run.theory.len(), 1);
//! ```

pub mod bitset;
pub mod bottom;
pub mod coverage;
pub mod engine;
pub mod examples;
pub mod mdie;
pub mod modes;
pub mod refine;
pub mod search;
pub mod settings;

pub use bitset::Bitset;
pub use bottom::{saturate, BottomClause, BottomLiteral};
pub use coverage::{evaluate_rule, Coverage};
pub use engine::IlpEngine;
pub use examples::Examples;
pub use mdie::{run_sequential, LearnedRule, SequentialOutcome};
pub use modes::{ModeArg, ModeDecl, ModeSet};
pub use refine::{ConstraintStore, LatticeSlice, RuleShape};
pub use search::{
    search_rules, search_rules_guided, take_top, ScoredRule, SearchGuide, SearchOutcome,
};
pub use settings::{ScoreFn, Settings, Width};
