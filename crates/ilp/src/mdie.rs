//! The sequential MDIE covering loop (paper Figure 1) — the `p = 1`
//! baseline every speedup in Tables 2–3 is measured against.

use crate::bottom::saturate;
use crate::coverage::evaluate_rule;
use crate::examples::Examples;
use crate::modes::ModeSet;
use crate::search::search_rules;
use crate::settings::Settings;
use p2mdie_logic::clause::Clause;
use p2mdie_logic::kb::KnowledgeBase;

/// A rule accepted into the theory, with its coverage at acceptance time.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LearnedRule {
    /// The accepted clause.
    pub clause: Clause,
    /// Positive examples it covered among those still live.
    pub pos: u32,
    /// Negative examples it covered.
    pub neg: u32,
}

/// The outcome of a sequential covering run.
#[derive(Clone, Debug, Default)]
pub struct SequentialOutcome {
    /// The induced theory, in acceptance order.
    pub theory: Vec<LearnedRule>,
    /// Number of epochs (= rules attempted; one rule learned per epoch).
    pub epochs: usize,
    /// Total inference steps (saturation + search + re-evaluation): the
    /// sequential virtual time is `steps × t_step`.
    pub steps: u64,
    /// Positive examples set aside because no good rule was found for them.
    pub set_aside: usize,
}

/// Runs the MDIE covering loop of Figure 1: pick an uncovered positive
/// example, saturate, search for the best good rule, accept it, remove the
/// covered positives, repeat until everything is covered or set aside.
pub fn run_sequential(
    kb: &KnowledgeBase,
    modes: &ModeSet,
    settings: &Settings,
    examples: &Examples,
) -> SequentialOutcome {
    let mut out = SequentialOutcome::default();
    let mut live = examples.full_pos_live();

    while let Some(seed_idx) = live.first() {
        out.epochs += 1;
        let seed = &examples.pos[seed_idx];

        let Some(bottom) = saturate(kb, modes, settings, seed) else {
            // Example incompatible with the head mode: set it aside.
            live.clear(seed_idx);
            out.set_aside += 1;
            continue;
        };
        out.steps += bottom.steps;

        let found = search_rules(kb, settings, &bottom, examples, Some(&live), &[]);
        out.steps += found.steps;

        match found.best() {
            None => {
                live.clear(seed_idx);
                out.set_aside += 1;
            }
            Some(best) => {
                let clause = best.shape.to_clause(&bottom);
                let cov = evaluate_rule(kb, settings.proof, &clause, examples, Some(&live), None);
                out.steps += cov.steps;
                live.difference_with(&cov.pos);
                // Guarantee progress even if proof bounds made the accepted
                // rule miss its own seed on re-evaluation.
                if live.get(seed_idx) {
                    live.clear(seed_idx);
                    out.set_aside += 1;
                }
                out.theory.push(LearnedRule {
                    clause,
                    pos: best.pos,
                    neg: best.neg,
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Two disjoint concepts: div6 = even∧div3; div10 would need even∧div5.
    /// Target `special(X)` true for multiples of 6 and of 10.
    fn world() -> (SymbolTable, KnowledgeBase, ModeSet, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=40i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
            if i % 5 == 0 {
                kb.assert_fact(Literal::new(t.intern("div5"), vec![Term::Int(i)]));
            }
        }
        let tgt = t.intern("special");
        let pos: Vec<Literal> = (1..=40i64)
            .filter(|i| i % 6 == 0 || i % 10 == 0)
            .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let neg: Vec<Literal> = (1..=40i64)
            .filter(|i| i % 6 != 0 && i % 10 != 0)
            .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let modes = ModeSet::parse(
            &t,
            "special(+num)",
            &[(1, "even(+num)"), (1, "div3(+num)"), (1, "div5(+num)")],
        )
        .unwrap();
        (t, kb, modes, Examples::new(pos, neg))
    }

    #[test]
    fn learns_a_complete_consistent_theory() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            max_body: 3,
            ..Settings::default()
        };
        let out = run_sequential(&kb, &modes, &settings, &ex);
        assert!(out.theory.len() >= 2, "needs one rule per disjunct");
        assert_eq!(out.set_aside, 0);
        assert!(out.epochs >= out.theory.len());
        assert!(out.steps > 0);
        // The theory must cover every positive and no negative.
        let mut covered = crate::bitset::Bitset::new(ex.num_pos());
        for r in &out.theory {
            let cov = evaluate_rule(&kb, settings.proof, &r.clause, &ex, None, None);
            covered.union_with(&cov.pos);
            assert_eq!(cov.neg_count(), 0);
        }
        assert_eq!(covered.count(), ex.num_pos());
    }

    #[test]
    fn one_rule_per_epoch() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            max_body: 3,
            ..Settings::default()
        };
        let out = run_sequential(&kb, &modes, &settings, &ex);
        assert_eq!(out.epochs, out.theory.len() + out.set_aside);
    }

    #[test]
    fn impossible_settings_set_everything_aside() {
        let (_, kb, modes, ex) = world();
        // min_pos larger than |E+| makes every rule bad.
        let settings = Settings {
            min_pos: ex.num_pos() as u32 + 1,
            noise: 0,
            ..Settings::default()
        };
        let out = run_sequential(&kb, &modes, &settings, &ex);
        assert!(out.theory.is_empty());
        assert_eq!(out.set_aside, ex.num_pos());
    }

    #[test]
    fn deterministic_runs() {
        let (_, kb, modes, ex) = world();
        let settings = Settings::default();
        let a = run_sequential(&kb, &modes, &settings, &ex);
        let b = run_sequential(&kb, &modes, &settings, &ex);
        assert_eq!(a.theory, b.theory);
        assert_eq!(a.steps, b.steps);
    }
}
