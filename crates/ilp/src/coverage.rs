//! Coverage evaluation (`evalOnExamples` in the paper's Figure 2).
//!
//! A rule covers an example when the example unifies with the rule's head
//! and the body is provable from the background knowledge under the proof
//! bounds. The cost — inference steps, summed over examples — is the main
//! component of the virtual-time model: evaluating a rule on a subset of
//! `|E|/p` examples costs roughly `1/p` of evaluating it on all of `E`,
//! which is exactly the data-parallel effect the paper exploits.
//!
//! # Parallel evaluation
//!
//! Each example's covered-bit and step count depend only on that example,
//! so the example axis parallelizes embarrassingly: [`evaluate_rule_threads`]
//! splits the example range into contiguous chunks, proves each chunk on its
//! own OS thread, and merges chunk results in chunk order. Bits land at
//! fixed positions and the step sum is order-invariant, so the outcome is
//! bit-identical for every thread count — determinism (and the virtual-time
//! fuel accounting) is preserved exactly.

use crate::bitset::Bitset;
use crate::examples::Examples;
use p2mdie_logic::clause::{Clause, CompiledGoals, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::{ProofLimits, Prover};
use p2mdie_logic::subst::Bindings;

/// Below this many live examples on a side, thread spawn overhead outweighs
/// the win and evaluation stays on the calling thread.
const PARALLEL_MIN_EXAMPLES: usize = 128;

/// The result of evaluating one rule on an example set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// Bit `i` set iff positive example `i` is covered (only live examples
    /// are ever evaluated; dead ones stay 0).
    pub pos: Bitset,
    /// Bit `i` set iff negative example `i` is covered.
    pub neg: Bitset,
    /// Total inference steps spent (virtual-time fuel).
    pub steps: u64,
}

impl Coverage {
    /// Number of covered positive examples.
    pub fn pos_count(&self) -> u32 {
        self.pos.count() as u32
    }

    /// Number of covered negative examples.
    pub fn neg_count(&self) -> u32 {
        self.neg.count() as u32
    }
}

/// Resolves a thread-count knob: `0` means "one thread per available core".
fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A rule compiled for repeated evaluation: body dispatch resolved once
/// (see [`p2mdie_logic::clause::CompiledGoals`]), rename-apart span
/// precomputed. Prepare once per candidate rule; prove per example. Each
/// proof runs column-native end to end: body goals retrieve `(PredId,
/// row-index)` candidates and unify against the KB's arena-id tuples, so
/// coverage testing touches no row literals (the examples themselves are
/// the only literals in play).
#[derive(Clone, Debug)]
pub struct PreparedRule {
    /// The rule head (examples unify against it).
    pub head: Literal,
    /// Compiled body conjunction.
    pub body: CompiledGoals,
    /// Variable span of the whole clause (head + body).
    pub span: usize,
}

/// Compiles `rule` against `kb` for evaluation via
/// [`evaluate_side_prepared`].
pub fn prepare_rule(kb: &KnowledgeBase, rule: &Clause) -> PreparedRule {
    PreparedRule {
        head: rule.head.clone(),
        body: kb.compile_goals(&rule.body),
        span: rule.var_span() as usize,
    }
}

/// Examples per batched-planning block in [`eval_range`]: one
/// [`Prover::prove_compiled_batch`] call plans fact retrieval for up to
/// this many head-matched examples in a single posting-run pass.
const COVERAGE_BATCH: usize = 64;

/// Evaluates one side (positive or negative examples) over `[lo, hi)`,
/// reusing one binding store across the whole range.
fn eval_range(
    prover: &Prover<'_>,
    rule: &PreparedRule,
    lits: &[Literal],
    live: Option<&Bitset>,
    lo: usize,
    hi: usize,
) -> (Bitset, u64) {
    match live {
        None => eval_indices(prover, rule, lits, lo..hi),
        // Walk set bits directly: a sparse mask (deep refinements cover
        // little) costs O(|coverage|), not O(|E|).
        Some(l) => eval_indices(
            prover,
            rule,
            lits,
            l.iter_ones()
                .skip_while(|&i| i < lo)
                .take_while(|&i| i < hi),
        ),
    }
}

/// Proves `rule` against each indexed example, handing the prover blocks
/// of [`COVERAGE_BATCH`] examples so single-literal bodies get their fact
/// retrieval planned in one batched posting pass. Plan construction is
/// never step-charged, so the step totals are bit-identical to proving
/// one example at a time.
fn eval_indices(
    prover: &Prover<'_>,
    rule: &PreparedRule,
    lits: &[Literal],
    indices: impl Iterator<Item = usize>,
) -> (Bitset, u64) {
    let mut bits = Bitset::new(lits.len());
    let mut steps = 0u64;
    let span = rule.span;
    let mut scratch = Bindings::with_capacity(span);
    let mut indices = indices.fuse();
    let mut block: Vec<usize> = Vec::with_capacity(COVERAGE_BATCH);
    loop {
        block.clear();
        block.extend(indices.by_ref().take(COVERAGE_BATCH));
        if block.is_empty() {
            break;
        }
        let results = prover.prove_compiled_batch(
            &rule.body,
            block.len(),
            &mut |k: usize, b: &mut Bindings| {
                b.reset(span);
                b.unify_literals(&rule.head, &lits[block[k]], false)
            },
            &mut scratch,
        );
        for (k, r) in results.into_iter().enumerate() {
            steps += 1; // head-match attempt
            if let Some((ok, st)) = r {
                steps += st.steps;
                if ok {
                    bits.set(block[k]);
                }
            }
        }
    }
    (bits, steps)
}

/// Evaluates `rule` on one side (a positive or negative example list),
/// fanned out over `threads` contiguous chunks; `0` means one thread per
/// available core. Returns the covered bitset and the inference steps
/// spent. Bit-identical for every thread count.
pub fn evaluate_side_threads(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &Clause,
    lits: &[Literal],
    live: Option<&Bitset>,
    threads: usize,
) -> (Bitset, u64) {
    let prepared = prepare_rule(kb, rule);
    evaluate_side_prepared(kb, proof, &prepared, lits, live, threads)
}

/// [`evaluate_side_threads`] over an already-compiled rule: the per-rule
/// compile (dispatch resolution, span scan) is hoisted out of the search's
/// two-sides-per-node pattern.
pub fn evaluate_side_prepared(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &PreparedRule,
    lits: &[Literal],
    live: Option<&Bitset>,
    threads: usize,
) -> (Bitset, u64) {
    let threads = resolve_threads(threads);
    let n = lits.len();
    // Threshold on *live* examples: under monotone pruning a deep
    // refinement may be live on a handful of a thousand examples, and
    // spawning threads for mostly-dead ranges costs more than it saves.
    let workload = live.map_or(n, Bitset::count);
    let threads = threads.min(workload.div_ceil(PARALLEL_MIN_EXAMPLES).max(1));
    if threads <= 1 {
        let prover = Prover::new(kb, proof);
        return eval_range(&prover, rule, lits, live, 0, n);
    }
    let chunk = n.div_ceil(threads);
    let parts: Vec<(Bitset, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                let lo = k * chunk;
                let hi = (lo + chunk).min(n);
                scope.spawn(move || {
                    let prover = Prover::new(kb, proof);
                    eval_range(&prover, rule, lits, live, lo, hi)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("coverage worker panicked"))
            .collect()
    });
    // Merge in chunk order: bits are disjoint, the step sum is
    // order-invariant — bit-identical to the sequential pass.
    let mut bits = Bitset::new(n);
    let mut steps = 0u64;
    for (b, s) in parts {
        bits.union_with(&b);
        steps += s;
    }
    (bits, steps)
}

/// Evaluates `rule` on `examples`, optionally restricted to live subsets.
///
/// `live_pos` / `live_neg` — when given — skip evaluation of retired
/// examples entirely (their bits are left unset), mirroring the paper's
/// removal of covered examples from the training set.
///
/// Runs on the calling thread; use [`evaluate_rule_threads`] to fan out.
pub fn evaluate_rule(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &Clause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
    live_neg: Option<&Bitset>,
) -> Coverage {
    evaluate_rule_threads(kb, proof, rule, examples, live_pos, live_neg, 1)
}

/// [`evaluate_rule`] with an explicit thread count: `1` stays on the calling
/// thread, `0` uses one thread per available core, `n` uses `n` threads.
/// The result is bit-identical for every thread count.
pub fn evaluate_rule_threads(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &Clause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
    live_neg: Option<&Bitset>,
    threads: usize,
) -> Coverage {
    let (pos, pos_steps) = evaluate_side_threads(kb, proof, rule, &examples.pos, live_pos, threads);
    let (neg, neg_steps) = evaluate_side_threads(kb, proof, rule, &examples.neg, live_neg, threads);
    Coverage {
        pos,
        neg,
        steps: pos_steps + neg_steps,
    }
}

/// Evaluates only the positive side (used by `mark_covered`).
pub fn covered_positives(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &Clause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
) -> (Bitset, u64) {
    evaluate_side_threads(kb, proof, rule, &examples.pos, live_pos, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// World: numbers 1..6 with even/3-divisibility facts; target div6(X).
    fn world() -> (SymbolTable, KnowledgeBase, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let even = t.intern("even");
        let div3 = t.intern("div3");
        for i in 1..=12i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(even, vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(div3, vec![Term::Int(i)]));
            }
        }
        let tgt = t.intern("div6");
        let ex = Examples::new(
            vec![6, 12]
                .into_iter()
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            vec![2, 3, 4, 9]
                .into_iter()
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        (t, kb, ex)
    }

    #[test]
    fn correct_rule_covers_pos_only() {
        let (t, kb, ex) = world();
        // div6(X) :- even(X), div3(X).
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![
                Literal::new(t.intern("even"), vec![Term::Var(0)]),
                Literal::new(t.intern("div3"), vec![Term::Var(0)]),
            ],
        );
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        assert_eq!(cov.neg_count(), 0);
        assert!(cov.steps > 0);
    }

    #[test]
    fn overgeneral_rule_covers_negatives() {
        let (t, kb, ex) = world();
        // div6(X) :- even(X). covers neg 2 and 4.
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![Literal::new(t.intern("even"), vec![Term::Var(0)])],
        );
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        assert_eq!(cov.neg_count(), 2);
    }

    #[test]
    fn live_mask_skips_examples() {
        let (t, kb, ex) = world();
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![Literal::new(t.intern("even"), vec![Term::Var(0)])],
        );
        let mut live = Bitset::new(ex.num_pos());
        live.set(1); // only example 12 is live
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, Some(&live), None);
        assert_eq!(cov.pos.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn head_constant_filters_cheaply() {
        let (t, kb, _) = world();
        // Rule head div6(6) only matches the literal example div6(6).
        let rule = Clause::fact(Literal::new(t.intern("div6"), vec![Term::Int(6)]));
        let tgt = t.intern("div6");
        let ex = Examples::new(
            vec![
                Literal::new(tgt, vec![Term::Int(6)]),
                Literal::new(tgt, vec![Term::Int(12)]),
            ],
            vec![],
        );
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn empty_body_rule_covers_all_matching() {
        let (t, kb, ex) = world();
        let rule = Clause::fact(Literal::new(t.intern("div6"), vec![Term::Var(0)]));
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        assert_eq!(cov.neg_count(), 4);
    }

    /// A large world exercising the actual fan-out path (above the
    /// [`PARALLEL_MIN_EXAMPLES`] threshold).
    fn big_world() -> (SymbolTable, KnowledgeBase, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let even = t.intern("even");
        let div3 = t.intern("div3");
        for i in 1..=2000i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(even, vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(div3, vec![Term::Int(i)]));
            }
        }
        let tgt = t.intern("div6");
        let ex = Examples::new(
            (1..=2000i64)
                .filter(|i| i % 6 == 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            (1..=2000i64)
                .filter(|i| i % 6 != 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        (t, kb, ex)
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let (t, kb, ex) = big_world();
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![
                Literal::new(t.intern("even"), vec![Term::Var(0)]),
                Literal::new(t.intern("div3"), vec![Term::Var(0)]),
            ],
        );
        let mut live = ex.full_pos_live();
        live.clear(3);
        live.clear(117);
        let baseline = evaluate_rule_threads(
            &kb,
            ProofLimits::default(),
            &rule,
            &ex,
            Some(&live),
            None,
            1,
        );
        assert!(baseline.pos_count() > 0);
        for threads in [0, 2, 3, 7, 16] {
            let cov = evaluate_rule_threads(
                &kb,
                ProofLimits::default(),
                &rule,
                &ex,
                Some(&live),
                None,
                threads,
            );
            assert_eq!(cov, baseline, "threads={threads} diverged");
        }
    }

    #[test]
    fn small_sides_stay_sequential_but_agree() {
        let (t, kb, ex) = world();
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![Literal::new(t.intern("even"), vec![Term::Var(0)])],
        );
        let a = evaluate_rule_threads(&kb, ProofLimits::default(), &rule, &ex, None, None, 1);
        let b = evaluate_rule_threads(&kb, ProofLimits::default(), &rule, &ex, None, None, 8);
        assert_eq!(a, b);
    }
}
