//! Coverage evaluation (`evalOnExamples` in the paper's Figure 2).
//!
//! A rule covers an example when the example unifies with the rule's head
//! and the body is provable from the background knowledge under the proof
//! bounds. The cost — inference steps, summed over examples — is the main
//! component of the virtual-time model: evaluating a rule on a subset of
//! `|E|/p` examples costs roughly `1/p` of evaluating it on all of `E`,
//! which is exactly the data-parallel effect the paper exploits.

use crate::bitset::Bitset;
use crate::examples::Examples;
use p2mdie_logic::clause::Clause;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::{ProofLimits, Prover};
use p2mdie_logic::subst::Bindings;

/// The result of evaluating one rule on an example set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// Bit `i` set iff positive example `i` is covered (only live examples
    /// are ever evaluated; dead ones stay 0).
    pub pos: Bitset,
    /// Bit `i` set iff negative example `i` is covered.
    pub neg: Bitset,
    /// Total inference steps spent (virtual-time fuel).
    pub steps: u64,
}

impl Coverage {
    /// Number of covered positive examples.
    pub fn pos_count(&self) -> u32 {
        self.pos.count() as u32
    }

    /// Number of covered negative examples.
    pub fn neg_count(&self) -> u32 {
        self.neg.count() as u32
    }
}

/// Evaluates `rule` on `examples`, optionally restricted to live subsets.
///
/// `live_pos` / `live_neg` — when given — skip evaluation of retired
/// examples entirely (their bits are left unset), mirroring the paper's
/// removal of covered examples from the training set.
pub fn evaluate_rule(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &Clause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
    live_neg: Option<&Bitset>,
) -> Coverage {
    let prover = Prover::new(kb, proof);
    let mut steps = 0u64;

    let mut eval_side = |lits: &[p2mdie_logic::clause::Literal], live: Option<&Bitset>| {
        let mut bits = Bitset::new(lits.len());
        for (i, ex) in lits.iter().enumerate() {
            if let Some(l) = live {
                if !l.get(i) {
                    continue;
                }
            }
            steps += 1; // head-match attempt
            let mut b = Bindings::with_capacity(rule.var_span() as usize);
            if !b.unify_literals(&rule.head, ex, false) {
                continue;
            }
            let (ok, st) = prover.prove_with_bindings(&rule.body, b);
            steps += st.steps;
            if ok {
                bits.set(i);
            }
        }
        bits
    };

    let pos = eval_side(&examples.pos, live_pos);
    let neg = eval_side(&examples.neg, live_neg);
    Coverage { pos, neg, steps }
}

/// Evaluates only the positive side (used by `mark_covered`).
pub fn covered_positives(
    kb: &KnowledgeBase,
    proof: ProofLimits,
    rule: &Clause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
) -> (Bitset, u64) {
    let cov = evaluate_rule(
        kb,
        proof,
        rule,
        &Examples { pos: examples.pos.clone(), neg: Vec::new() },
        live_pos,
        None,
    );
    (cov.pos, cov.steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// World: numbers 1..6 with even/3-divisibility facts; target div6(X).
    fn world() -> (SymbolTable, KnowledgeBase, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let even = t.intern("even");
        let div3 = t.intern("div3");
        for i in 1..=12i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(even, vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(div3, vec![Term::Int(i)]));
            }
        }
        let tgt = t.intern("div6");
        let ex = Examples::new(
            vec![6, 12].into_iter().map(|i| Literal::new(tgt, vec![Term::Int(i)])).collect(),
            vec![2, 3, 4, 9].into_iter().map(|i| Literal::new(tgt, vec![Term::Int(i)])).collect(),
        );
        (t, kb, ex)
    }

    #[test]
    fn correct_rule_covers_pos_only() {
        let (t, kb, ex) = world();
        // div6(X) :- even(X), div3(X).
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![
                Literal::new(t.intern("even"), vec![Term::Var(0)]),
                Literal::new(t.intern("div3"), vec![Term::Var(0)]),
            ],
        );
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        assert_eq!(cov.neg_count(), 0);
        assert!(cov.steps > 0);
    }

    #[test]
    fn overgeneral_rule_covers_negatives() {
        let (t, kb, ex) = world();
        // div6(X) :- even(X). covers neg 2 and 4.
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![Literal::new(t.intern("even"), vec![Term::Var(0)])],
        );
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        assert_eq!(cov.neg_count(), 2);
    }

    #[test]
    fn live_mask_skips_examples() {
        let (t, kb, ex) = world();
        let rule = Clause::new(
            Literal::new(t.intern("div6"), vec![Term::Var(0)]),
            vec![Literal::new(t.intern("even"), vec![Term::Var(0)])],
        );
        let mut live = Bitset::new(ex.num_pos());
        live.set(1); // only example 12 is live
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, Some(&live), None);
        assert_eq!(cov.pos.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn head_constant_filters_cheaply() {
        let (t, kb, _) = world();
        // Rule head div6(6) only matches the literal example div6(6).
        let rule = Clause::fact(Literal::new(t.intern("div6"), vec![Term::Int(6)]));
        let tgt = t.intern("div6");
        let ex = Examples::new(
            vec![Literal::new(tgt, vec![Term::Int(6)]), Literal::new(tgt, vec![Term::Int(12)])],
            vec![],
        );
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn empty_body_rule_covers_all_matching() {
        let (t, kb, ex) = world();
        let rule = Clause::fact(Literal::new(t.intern("div6"), vec![Term::Var(0)]));
        let cov = evaluate_rule(&kb, ProofLimits::default(), &rule, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        assert_eq!(cov.neg_count(), 4);
    }
}
