//! Top-down breadth-first rule search (the paper's `learn_rule`, Figure 2).
//!
//! Starting from seed shapes (the most-general rule by default, or the rules
//! received from the previous pipeline stage in `learn_rule'`, Figure 7),
//! the search expands the refinement lattice breadth-first, evaluates every
//! candidate on the (local) examples, collects the "good" rules, and stops
//! on the node budget — April's "threshold on the number of rules that can
//! be generated on each search" (§5.2).
//!
//! # Monotone coverage pruning
//!
//! Refinement only ever appends body literals, and an SLD proof of the
//! extended body passes through a proof of the prefix within the same step
//! and depth budget — so a child rule can only cover a *subset* of its
//! parent's coverage, even under bounded proofs. The search exploits this:
//! each evaluated node's covered-positive/covered-negative bitsets are
//! threaded down (shared via `Rc` among its successors) as the live masks
//! for child evaluation. A child is then evaluated on O(|parent coverage|)
//! examples instead of O(|E|), with bit-identical results; examples the
//! parent already failed to cover are never touched again anywhere in that
//! subtree.

use crate::bitset::Bitset;
use crate::bottom::BottomClause;
use crate::coverage::{evaluate_side_prepared, prepare_rule};
use crate::examples::Examples;
use crate::refine::{splitmix64, ConstraintStore, LatticeSlice, RuleShape};
use crate::settings::Settings;
use p2mdie_logic::fxhash::FxHashSet;
use p2mdie_logic::kb::KnowledgeBase;
use std::collections::{HashSet, VecDeque};
use std::rc::Rc;

/// A rule with its (local) coverage and score.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScoredRule {
    /// The rule as bottom-clause indices (wire-friendly).
    pub shape: RuleShape,
    /// Covered positive examples (on the evaluating subset).
    pub pos: u32,
    /// Covered negative examples (on the evaluating subset).
    pub neg: u32,
    /// Score under the configured [`crate::settings::ScoreFn`].
    pub score: i64,
}

impl ScoredRule {
    /// Deterministic ordering: higher score first, then shorter body, then
    /// lexicographically smaller shape.
    pub fn rank_key(&self) -> (i64, i64, &[u32]) {
        (-self.score, self.shape.body_len() as i64, &self.shape.lits)
    }
}

/// The outcome of one search.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Good rules found, best first (deterministic order).
    pub good: Vec<ScoredRule>,
    /// Every seed rule with its local score, good or not. The pipelined
    /// `learn_rule'` (paper Fig. 7) initializes `Good = S`: rules received
    /// from the previous stage stay in the stream even when the local
    /// subset dislikes them — the master's *global* evaluation decides.
    pub seed_scored: Vec<ScoredRule>,
    /// Nodes (candidate rules) evaluated.
    pub nodes: usize,
    /// Inference steps spent evaluating candidates (virtual-time fuel).
    pub steps: u64,
    /// Dead-shape cut frontier discovered this search (shapes whose whole
    /// specialization subtree was abandoned for lack of positive cover).
    /// Only collected when [`SearchGuide::collect_dead`] is set.
    pub dead: Vec<RuleShape>,
    /// Nodes skipped *without evaluation* because a constraint-store entry
    /// already proved their subtree dead.
    pub cut: usize,
}

impl SearchOutcome {
    /// The best good rule, if any.
    pub fn best(&self) -> Option<&ScoredRule> {
        self.good.first()
    }
}

/// Strategy hooks threaded through [`search_rules_guided`]. The default
/// guide is a strict no-op: `search_rules` through a default guide is
/// bit-identical to the unguided search (pinned by test).
#[derive(Clone, Debug, Default)]
pub struct SearchGuide {
    /// Restrict expansion to one slice of the refinement lattice
    /// (hypothesis-parallel search). Successors outside the slice are never
    /// enqueued; since slices are subtree-closed this loses nothing the
    /// slice owns.
    pub slice: Option<LatticeSlice>,
    /// Deterministically shuffle each node's successor order with this
    /// seed. Under an exhausted node budget different seeds explore
    /// different lattice regions — the constraint-driven strategy's source
    /// of inter-rank diversity. `None` keeps index order.
    pub explore_seed: Option<u64>,
    /// Collect the dead-shape cut frontier into [`SearchOutcome::dead`].
    pub collect_dead: bool,
    /// Cap on collected dead shapes (broadcast payload bound).
    pub dead_cap: usize,
}

/// Runs one breadth-first search over `bottom`'s refinement lattice.
///
/// * `live_pos` — positive examples still uncovered (dead ones are skipped).
/// * `seeds` — starting shapes; when empty, starts from the most-general
///   rule. Seeds are also evaluated (they may already be good here even if
///   they were found on another worker's subset).
pub fn search_rules(
    kb: &KnowledgeBase,
    settings: &Settings,
    bottom: &BottomClause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
    seeds: &[RuleShape],
) -> SearchOutcome {
    search_rules_guided(
        kb,
        settings,
        bottom,
        examples,
        live_pos,
        seeds,
        &SearchGuide::default(),
        None,
    )
}

/// [`search_rules`] with strategy hooks: an optional lattice slice, an
/// optional exploration seed, dead-shape collection, and a constraint store
/// of known-dead shapes to cut before evaluation. With the default guide
/// and no store this is exactly the plain search.
#[allow(clippy::too_many_arguments)]
pub fn search_rules_guided(
    kb: &KnowledgeBase,
    settings: &Settings,
    bottom: &BottomClause,
    examples: &Examples,
    live_pos: Option<&Bitset>,
    seeds: &[RuleShape],
    guide: &SearchGuide,
    constraints: Option<&ConstraintStore>,
) -> SearchOutcome {
    let mut out = SearchOutcome::default();
    // Running RNG state for the successor shuffle; advanced only when an
    // exploration seed is set, so the default path touches nothing.
    let mut rng = guide.explore_seed.map(splitmix64);
    // Each queued node carries its parent's coverage masks (shared among
    // siblings); roots and seeds evaluate under the caller's live mask.
    type Masks = Rc<(Bitset, Bitset)>;
    let mut queue: VecDeque<(RuleShape, Option<Masks>)> = VecDeque::new();
    let mut visited: FxHashSet<RuleShape> = FxHashSet::default();
    let mut seed_set: HashSet<&RuleShape> = HashSet::new();

    if seeds.is_empty() {
        queue.push_back((RuleShape::empty(), None));
    } else {
        let mut queued: HashSet<&RuleShape> = HashSet::new();
        for s in seeds {
            seed_set.insert(s);
            if queued.insert(s) {
                queue.push_back((s.clone(), None));
            }
        }
    }

    while let Some((shape, parent_cov)) = queue.pop_front() {
        if out.nodes >= settings.max_nodes {
            break;
        }
        if !visited.insert(shape.clone()) {
            continue;
        }
        // A gossiped constraint proving this subtree dead saves the whole
        // evaluation (seeds are always evaluated — Fig. 7's Good = S
        // contract holds regardless of strategy).
        if !seed_set.contains(&shape) && constraints.is_some_and(|c| c.prunes(&shape)) {
            out.cut += 1;
            continue;
        }
        // Compile the candidate once; both sides (and every example) reuse
        // the resolved dispatch.
        let clause = prepare_rule(kb, &shape.to_clause(bottom));
        // Monotonicity: the child's coverage is a subset of the parent's, so
        // the parent's covered sets are exact live masks for the child.
        let (live_p, live_n) = match &parent_cov {
            Some(m) => (Some(&m.0), Some(&m.1)),
            None => (live_pos, None),
        };
        out.nodes += 1;
        let (pos_bits, pos_steps) = evaluate_side_prepared(
            kb,
            settings.proof,
            &clause,
            &examples.pos,
            live_p,
            settings.eval_threads,
        );
        out.steps += pos_steps;
        let pos = pos_bits.count() as u32;
        let is_seed = seed_set.contains(&shape);

        // Lazy negative side: a non-seed node below `min_pos` can never be
        // good, reports nothing, and is not expanded — its negative
        // coverage is unobservable, so don't pay for it.
        if pos < settings.min_pos && !is_seed {
            // This is the cut frontier: the shape and every specialization
            // are dead here and (coverage only shrinks as the live set
            // shrinks) stay dead for the rest of this bottom clause's life.
            if guide.collect_dead && out.dead.len() < guide.dead_cap {
                out.dead.push(shape);
            }
            continue;
        }
        let (neg_bits, neg_steps) = evaluate_side_prepared(
            kb,
            settings.proof,
            &clause,
            &examples.neg,
            live_n,
            settings.eval_threads,
        );
        out.steps += neg_steps;
        let neg = neg_bits.count() as u32;

        if is_seed {
            out.seed_scored.push(ScoredRule {
                shape: shape.clone(),
                pos,
                neg,
                score: settings.score.score(pos, neg, shape.body_len()),
            });
        }

        if settings.is_good(pos, neg) {
            out.good.push(ScoredRule {
                shape: shape.clone(),
                pos,
                neg,
                score: settings.score.score(pos, neg, shape.body_len()),
            });
            if out.good.len() > settings.good_cap {
                // Keep the cap loose: sort and truncate only when exceeded.
                out.good.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
                out.good.truncate(settings.good_cap);
            }
        }

        // Specializing cannot regain positive cover: prune hopeless subtrees.
        if pos < settings.min_pos {
            continue;
        }
        let masks: Masks = Rc::new((pos_bits, neg_bits));
        let mut succs = shape.successors(bottom, settings.max_body);
        if let Some(slice) = &guide.slice {
            succs.retain(|s| slice.admits(s));
        }
        if let Some(state) = rng.as_mut() {
            // Fisher–Yates with the running SplitMix64 stream: deterministic
            // for a given seed, different orders for different seeds.
            for i in (1..succs.len()).rev() {
                *state = splitmix64(*state);
                succs.swap(i, (*state % (i as u64 + 1)) as usize);
            }
        }
        for succ in succs {
            if !visited.contains(&succ) {
                queue.push_back((succ, Some(Rc::clone(&masks))));
            }
        }
    }

    out.good.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
    out
}

/// Selects the top `cap` rules of an already-ranked good list (the pipeline
/// width `W` applied when forwarding; paper §4.1).
pub fn take_top(mut good: Vec<ScoredRule>, cap: usize) -> Vec<ScoredRule> {
    good.truncate(cap);
    good
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom::saturate;
    use crate::modes::ModeSet;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Numbers 1..20; target div6; BK: even/1, div3/1.
    fn world() -> (SymbolTable, KnowledgeBase, ModeSet, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=20i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
        }
        let tgt = t.intern("div6");
        let pos: Vec<Literal> = [6i64, 12, 18]
            .iter()
            .map(|&i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let neg: Vec<Literal> = [2i64, 3, 4, 9, 10, 15]
            .iter()
            .map(|&i| Literal::new(tgt, vec![Term::Int(i)]))
            .collect();
        let modes =
            ModeSet::parse(&t, "div6(+num)", &[(1, "even(+num)"), (1, "div3(+num)")]).unwrap();
        (t, kb, modes, Examples::new(pos, neg))
    }

    use p2mdie_logic::kb::KnowledgeBase;

    #[test]
    fn finds_the_conjunction_rule() {
        let (t, kb, modes, ex) = world();
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let out = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        let best = out.best().expect("must find a rule");
        assert_eq!(best.pos, 3);
        assert_eq!(best.neg, 0);
        let c = best.shape.to_clause(&bottom);
        assert_eq!(
            c.body.len(),
            2,
            "needs both even and div3: {:?}",
            c.display(&t).to_string()
        );
        assert!(out.nodes >= 3);
    }

    #[test]
    fn node_budget_caps_search() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            max_nodes: 1,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let out = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        assert_eq!(out.nodes, 1);
        assert!(out.good.is_empty(), "root rule covers all negatives");
    }

    #[test]
    fn noise_admits_impure_rules() {
        let (_, kb, modes, ex) = world();
        // With noise 3, "div6(X) :- even(X)" (3 pos, 3 neg: 2/4/10) becomes
        // good, as does "div6(X) :- div3(X)" (3 neg: 3/9/15).
        let settings = Settings {
            noise: 3,
            min_pos: 2,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let out = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        assert!(out.good.len() >= 2);
    }

    #[test]
    fn seeded_search_extends_seed_rules() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        // Seed with {even} only; search must refine it to {even, div3}.
        let seed = RuleShape::from_indices(vec![0]);
        let out = search_rules(&kb, &settings, &bottom, &ex, None, &[seed]);
        let best = out.best().expect("refined rule");
        assert_eq!(best.neg, 0);
    }

    #[test]
    fn live_mask_changes_counts() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            min_pos: 1,
            noise: 0,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let mut live = Bitset::new(ex.num_pos());
        live.set(0);
        let out = search_rules(&kb, &settings, &bottom, &ex, Some(&live), &[]);
        let best = out.best().unwrap();
        assert_eq!(best.pos, 1);
    }

    #[test]
    fn deterministic_ordering() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            noise: 3,
            min_pos: 1,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let a = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        let b = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        assert_eq!(a.good, b.good);
    }

    #[test]
    fn seeds_are_scored_even_when_locally_bad() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        // The empty shape covers every negative: never "good", but as a
        // seed it must still come back scored (Fig. 7's Good = S).
        let out = search_rules(&kb, &settings, &bottom, &ex, None, &[RuleShape::empty()]);
        assert_eq!(out.seed_scored.len(), 1);
        assert_eq!(out.seed_scored[0].pos, 3);
        assert_eq!(out.seed_scored[0].neg, 6);
    }

    #[test]
    fn default_guide_is_a_strict_no_op() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            noise: 3,
            min_pos: 1,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let plain = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        let guided = search_rules_guided(
            &kb,
            &settings,
            &bottom,
            &ex,
            None,
            &[],
            &SearchGuide::default(),
            Some(&ConstraintStore::new()),
        );
        assert_eq!(plain.good, guided.good);
        assert_eq!(plain.seed_scored, guided.seed_scored);
        assert_eq!(plain.nodes, guided.nodes);
        assert_eq!(plain.steps, guided.steps);
        assert_eq!(guided.cut, 0);
        assert!(guided.dead.is_empty());
    }

    #[test]
    fn sliced_searches_union_to_the_full_search() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            noise: 3,
            min_pos: 1,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let plain = search_rules(&kb, &settings, &bottom, &ex, None, &[]);
        let full: std::collections::HashSet<RuleShape> =
            plain.good.iter().map(|r| r.shape.clone()).collect();
        for of in [2u64, 3] {
            let mut union = std::collections::HashSet::new();
            for rank in 0..of {
                let guide = SearchGuide {
                    slice: Some(LatticeSlice { rank, of, salt: 11 }),
                    ..SearchGuide::default()
                };
                let out =
                    search_rules_guided(&kb, &settings, &bottom, &ex, None, &[], &guide, None);
                for r in &out.good {
                    assert!(
                        union.insert(r.shape.clone()),
                        "slices must be disjoint: {:?} found twice",
                        r.shape
                    );
                }
            }
            assert_eq!(union, full, "slices must be collectively exhaustive");
        }
    }

    #[test]
    fn constraints_cut_nodes_without_changing_good_rules() {
        // The div6 world plus a `small` predicate (≤ 9): true of the seed
        // (6) so it reaches the bottom clause, but covering only one
        // positive — the {small} subtree is dead under min_pos = 2.
        let (t, mut kb, _, ex) = world();
        for i in 1..=9i64 {
            kb.assert_fact(Literal::new(t.intern("small"), vec![Term::Int(i)]));
        }
        let modes = ModeSet::parse(
            &t,
            "div6(+num)",
            &[(1, "even(+num)"), (1, "div3(+num)"), (1, "small(+num)")],
        )
        .unwrap();
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let collect = SearchGuide {
            collect_dead: true,
            dead_cap: 64,
            ..SearchGuide::default()
        };
        let first = search_rules_guided(&kb, &settings, &bottom, &ex, None, &[], &collect, None);
        assert!(!first.dead.is_empty(), "this world has dead subtrees");
        let mut store = ConstraintStore::new();
        store.merge(&first.dead);
        let second = search_rules_guided(
            &kb,
            &settings,
            &bottom,
            &ex,
            None,
            &[],
            &SearchGuide::default(),
            Some(&store),
        );
        assert!(second.cut > 0, "gossiped constraints must cut work");
        assert!(second.nodes < first.nodes);
        assert_eq!(first.good, second.good, "pruning is sound");
    }

    #[test]
    fn explore_seed_is_deterministic_and_diverse() {
        let (_, kb, modes, ex) = world();
        let settings = Settings {
            noise: 3,
            min_pos: 1,
            ..Settings::default()
        };
        let bottom = saturate(&kb, &modes, &settings, &ex.pos[0]).unwrap();
        let guide = |seed| SearchGuide {
            explore_seed: Some(seed),
            ..SearchGuide::default()
        };
        let a = search_rules_guided(&kb, &settings, &bottom, &ex, None, &[], &guide(5), None);
        let b = search_rules_guided(&kb, &settings, &bottom, &ex, None, &[], &guide(5), None);
        assert_eq!(a.good, b.good);
        assert_eq!(a.nodes, b.nodes);
        // With an unconstrained budget the shuffle only reorders the
        // traversal: the good set (sorted) is seed-independent.
        let c = search_rules_guided(&kb, &settings, &bottom, &ex, None, &[], &guide(6), None);
        assert_eq!(a.good, c.good);
    }

    #[test]
    fn take_top_truncates() {
        let rules: Vec<ScoredRule> = (0..5)
            .map(|i| ScoredRule {
                shape: RuleShape::from_indices(vec![i]),
                pos: 1,
                neg: 0,
                score: 1,
            })
            .collect();
        assert_eq!(take_top(rules.clone(), 2).len(), 2);
        assert_eq!(take_top(rules, 100).len(), 5);
    }
}
