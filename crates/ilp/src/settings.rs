//! The constraint set `C` of the paper: everything that bounds the search.
//!
//! April was "configured to perform a top-down breadth-first search" with "a
//! threshold on the number of rules that can be generated on each search"
//! (paper §5.2). [`Settings`] carries that configuration surface.

use p2mdie_logic::prover::ProofLimits;

/// How candidate rules are scored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScoreFn {
    /// `pos_cover - neg_cover` — the paper's "heuristic that relies on the
    /// number of positive and negative examples".
    Coverage,
    /// `pos_cover - neg_cover - body_length` (Progol-style compression).
    Compression,
}

impl ScoreFn {
    /// Computes the score of a rule.
    #[inline]
    pub fn score(self, pos: u32, neg: u32, body_len: usize) -> i64 {
        match self {
            ScoreFn::Coverage => pos as i64 - neg as i64,
            ScoreFn::Compression => pos as i64 - neg as i64 - body_len as i64,
        }
    }
}

/// The constraints `C` given to both the sequential and parallel algorithms.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Settings {
    /// Maximum negative examples a "good" (consistent) rule may cover.
    pub noise: u32,
    /// Minimum positive examples a "good" rule must cover.
    pub min_pos: u32,
    /// Maximum number of body literals.
    pub max_body: usize,
    /// Node budget per search ("threshold on the number of rules generated
    /// on each search", §5.2).
    pub max_nodes: usize,
    /// Default recall bound for mode declarations using `*`.
    pub default_recall: u32,
    /// Variable depth `i` for bottom-clause saturation.
    pub max_var_depth: u32,
    /// Cap on bottom-clause body size (keeps saturation bounded).
    pub max_bottom_literals: usize,
    /// Per-example proof resource limits.
    pub proof: ProofLimits,
    /// Scoring function for the search.
    pub score: ScoreFn,
    /// Cap on how many good rules one search retains (memory guard; the
    /// pipeline width `W` is applied separately when rules are *sent*).
    pub good_cap: usize,
    /// Thread count for coverage evaluation: `1` = on the calling thread,
    /// `0` = one thread per available core, `n` = exactly `n` threads. The
    /// result is bit-identical for every setting; only wall-clock changes.
    pub eval_threads: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            noise: 0,
            min_pos: 2,
            max_body: 4,
            max_nodes: 2_000,
            default_recall: 8,
            max_var_depth: 2,
            max_bottom_literals: 200,
            proof: ProofLimits {
                max_depth: 6,
                max_steps: 4_000,
            },
            score: ScoreFn::Coverage,
            good_cap: 20_000,
            eval_threads: 0,
        }
    }
}

impl Settings {
    /// True when a rule with this coverage satisfies the "good" criteria
    /// (consistency under noise + minimum positive cover).
    #[inline]
    pub fn is_good(&self, pos: u32, neg: u32) -> bool {
        pos >= self.min_pos && neg <= self.noise
    }
}

/// The pipeline width `W`: how many good rules each stage forwards.
/// `Unlimited` is the paper's "nolimit" configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Width {
    /// Forward every good rule.
    Unlimited,
    /// Forward at most this many rules per stage.
    Limit(u32),
}

impl Width {
    /// The limit as a usize cap (`usize::MAX` when unlimited).
    #[inline]
    pub fn cap(self) -> usize {
        match self {
            Width::Unlimited => usize::MAX,
            Width::Limit(w) => w as usize,
        }
    }

    /// Label used in tables ("nolimit" / "10"), matching the paper.
    pub fn label(self) -> String {
        match self {
            Width::Unlimited => "nolimit".to_owned(),
            Width::Limit(w) => w.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_functions() {
        assert_eq!(ScoreFn::Coverage.score(10, 3, 2), 7);
        assert_eq!(ScoreFn::Compression.score(10, 3, 2), 5);
    }

    #[test]
    fn goodness_criteria() {
        let s = Settings {
            noise: 1,
            min_pos: 2,
            ..Settings::default()
        };
        assert!(s.is_good(2, 0));
        assert!(s.is_good(5, 1));
        assert!(!s.is_good(1, 0)); // too few positives
        assert!(!s.is_good(5, 2)); // too noisy
    }

    #[test]
    fn width_caps() {
        assert_eq!(Width::Unlimited.cap(), usize::MAX);
        assert_eq!(Width::Limit(10).cap(), 10);
        assert_eq!(Width::Unlimited.label(), "nolimit");
        assert_eq!(Width::Limit(10).label(), "10");
    }
}
