//! Example stores: the `E+` / `E-` of the paper.

use crate::bitset::Bitset;
use p2mdie_logic::clause::Literal;

/// A set of ground positive and negative examples of the target predicate.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Examples {
    /// Positive examples (`E+`).
    pub pos: Vec<Literal>,
    /// Negative examples (`E-`).
    pub neg: Vec<Literal>,
}

impl Examples {
    /// Creates an example set.
    pub fn new(pos: Vec<Literal>, neg: Vec<Literal>) -> Self {
        Examples { pos, neg }
    }

    /// `|E+|`.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// `|E-|`.
    pub fn num_neg(&self) -> usize {
        self.neg.len()
    }

    /// Total example count.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// True when there are no examples at all.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// An all-live bitset over the positive examples.
    pub fn full_pos_live(&self) -> Bitset {
        Bitset::full(self.pos.len())
    }

    /// Builds the subset selected by index lists (used for partitioning and
    /// cross-validation folds). Indices must be in range.
    pub fn subset(&self, pos_idx: &[usize], neg_idx: &[usize]) -> Examples {
        Examples {
            pos: pos_idx.iter().map(|&i| self.pos[i].clone()).collect(),
            neg: neg_idx.iter().map(|&i| self.neg[i].clone()).collect(),
        }
    }

    /// Concatenates several example sets (fold assembly).
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Examples>) -> Examples {
        let mut out = Examples::default();
        for p in parts {
            out.pos.extend(p.pos.iter().cloned());
            out.neg.extend(p.neg.iter().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn ex(n: usize, m: usize) -> Examples {
        let t = SymbolTable::new();
        let p = t.intern("p");
        Examples::new(
            (0..n)
                .map(|i| Literal::new(p, vec![Term::Int(i as i64)]))
                .collect(),
            (0..m)
                .map(|i| Literal::new(p, vec![Term::Int(-(i as i64) - 1)]))
                .collect(),
        )
    }

    #[test]
    fn counts() {
        let e = ex(3, 2);
        assert_eq!(e.num_pos(), 3);
        assert_eq!(e.num_neg(), 2);
        assert_eq!(e.len(), 5);
        assert!(!e.is_empty());
        assert_eq!(e.full_pos_live().count(), 3);
    }

    #[test]
    fn subset_selects_by_index() {
        let e = ex(4, 4);
        let s = e.subset(&[0, 2], &[3]);
        assert_eq!(s.num_pos(), 2);
        assert_eq!(s.num_neg(), 1);
        assert_eq!(s.pos[1], e.pos[2]);
    }

    #[test]
    fn concat_joins() {
        let a = ex(2, 1);
        let b = ex(3, 2);
        let c = Examples::concat([&a, &b]);
        assert_eq!(c.num_pos(), 5);
        assert_eq!(c.num_neg(), 3);
    }
}
