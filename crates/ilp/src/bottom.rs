//! Bottom-clause construction (`build_msh` in the paper's Figure 1).
//!
//! Given a seed example `e`, the most-specific clause ⊥e is built by
//! *saturation*: starting from the head's input terms, repeatedly query each
//! body-mode predicate against the background knowledge (up to `recall`
//! solutions per input instantiation), variablizing shared ground terms by
//! `(term, type)` identity. Literals discovered at variable depth `d` may
//! only consume terms produced at depths `< d`, which gives ⊥e's body a
//! producer-before-consumer order — the property the refinement operator
//! relies on (see `refine.rs`).

use crate::modes::{ModeArg, ModeSet};
use crate::settings::Settings;
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::prover::Prover;
use p2mdie_logic::symbol::SymbolId;
use p2mdie_logic::term::{Term, VarId};
use std::collections::HashMap;
use std::collections::HashSet;

/// Hard cap on input-instantiation combinations tried per mode per depth;
/// protects saturation from cartesian blow-ups on very wide types.
const MAX_COMBOS_PER_MODE: usize = 1024;

/// Saturation queries planned per [`Prover::solutions_compiled_batch`]
/// call. Every combination of one mode targets the same predicate, so a
/// chunk of the combo loop is a natural batch: goals probing the same
/// first-argument key (the shared seed molecule, typically) share one
/// posting fetch and one stripe-compare pass. Results are consumed in
/// combo order with per-query steps, so saturation stays bit-identical to
/// the one-query-at-a-time loop.
const QUERY_BATCH: usize = 32;

/// One body literal of a bottom clause, with its dataflow role.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BottomLiteral {
    /// The (variablized) literal.
    pub lit: Literal,
    /// Variables appearing at `+` slots — must be bound before this literal
    /// can join a rule.
    pub inputs: Vec<VarId>,
    /// Variables appearing at `-` slots — become available once it joins.
    pub outputs: Vec<VarId>,
    /// The saturation depth at which the literal was generated.
    pub depth: u32,
}

/// The most-specific clause ⊥e for a seed example.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BottomClause {
    /// Variablized head (e.g. `active(A)` for seed `active(m7)`).
    pub head: Literal,
    /// Variables of the head (available to body literals from the start).
    pub head_vars: Vec<VarId>,
    /// Body literals in generation (producer-before-consumer) order.
    pub lits: Vec<BottomLiteral>,
    /// Number of distinct variables in the clause.
    pub num_vars: u32,
    /// The ground seed example the clause was saturated from.
    pub example: Literal,
    /// Inference steps spent on saturation queries (virtual-time fuel).
    pub steps: u64,
}

impl BottomClause {
    /// The full most-specific clause as a [`Clause`].
    pub fn to_clause(&self) -> Clause {
        Clause::new(
            self.head.clone(),
            self.lits.iter().map(|b| b.lit.clone()).collect(),
        )
    }

    /// Body size of ⊥e.
    pub fn body_len(&self) -> usize {
        self.lits.len()
    }
}

/// Saturation state: maps ground `(term, type)` pairs to variables and
/// tracks which terms of each type are available as inputs.
struct Saturator<'a> {
    settings: &'a Settings,
    var_map: HashMap<(Term, SymbolId), VarId>,
    next_var: VarId,
    /// Terms available as inputs, per type, in discovery order.
    in_terms: HashMap<SymbolId, Vec<Term>>,
    in_terms_seen: HashSet<(Term, SymbolId)>,
    steps: u64,
}

impl Saturator<'_> {
    fn var_for(&mut self, term: &Term, ty: SymbolId) -> VarId {
        if let Some(&v) = self.var_map.get(&(term.clone(), ty)) {
            return v;
        }
        let v = self.next_var;
        self.next_var += 1;
        self.var_map.insert((term.clone(), ty), v);
        v
    }

    fn add_in_term(&mut self, term: &Term, ty: SymbolId, fresh: &mut Vec<(Term, SymbolId)>) {
        if self.in_terms_seen.insert((term.clone(), ty)) {
            fresh.push((term.clone(), ty));
        }
    }

    fn commit_fresh(&mut self, fresh: Vec<(Term, SymbolId)>) {
        for (t, ty) in fresh {
            self.in_terms.entry(ty).or_default().push(t);
        }
    }
}

/// Builds the bottom clause ⊥e for `example` (paper Fig. 1, step 5).
///
/// Returns `None` when the example does not match the head mode (wrong
/// predicate, arity, or a `#` slot the example contradicts — the last case
/// cannot occur since `#` head slots take the example's constant verbatim).
pub fn saturate(
    kb: &KnowledgeBase,
    modes: &ModeSet,
    settings: &Settings,
    example: &Literal,
) -> Option<BottomClause> {
    let hm = &modes.head;
    if example.pred != hm.pred || example.args.len() != hm.args.len() || !example.is_ground() {
        return None;
    }

    let mut sat = Saturator {
        settings,
        var_map: HashMap::new(),
        next_var: 0,
        in_terms: HashMap::new(),
        in_terms_seen: HashSet::new(),
        steps: 0,
    };

    // Head: variablize +/- slots, keep # slots ground. Both + and - head
    // terms seed the input pool (a head output is produced "for free" by
    // the example itself).
    let mut head_args = Vec::with_capacity(hm.args.len());
    let mut head_vars = Vec::new();
    let mut fresh = Vec::new();
    for (slot, ground) in hm.args.iter().zip(example.args.iter()) {
        match slot {
            ModeArg::Input(t) | ModeArg::Output(t) => {
                let v = sat.var_for(ground, *t);
                head_vars.push(v);
                head_args.push(Term::Var(v));
                sat.add_in_term(ground, *t, &mut fresh);
            }
            ModeArg::Const(_) => head_args.push(ground.clone()),
        }
    }
    sat.commit_fresh(fresh);
    let head = Literal::new(hm.pred, head_args);

    let mut lits: Vec<BottomLiteral> = Vec::new();
    let mut body_seen: HashSet<Literal> = HashSet::new();
    let prover = Prover::new(kb, settings.proof);
    // One binding store shared by every saturation query (cleared per call).
    let mut scratch = p2mdie_logic::subst::Bindings::new();

    'depths: for depth in 1..=settings.max_var_depth {
        // Freeze availability: literals at this depth consume only terms
        // discovered at previous depths.
        let available: HashMap<SymbolId, Vec<Term>> = sat.in_terms.clone();
        let mut fresh: Vec<(Term, SymbolId)> = Vec::new();

        for mode in &modes.body {
            // Gather candidate ground terms for each + slot.
            let input_slots: Vec<(usize, SymbolId)> = mode
                .args
                .iter()
                .enumerate()
                .filter_map(|(i, a)| match a {
                    ModeArg::Input(t) => Some((i, *t)),
                    _ => None,
                })
                .collect();
            let candidates: Vec<&[Term]> = input_slots
                .iter()
                .map(|(_, t)| available.get(t).map(|v| v.as_slice()).unwrap_or(&[]))
                .collect();
            if candidates.iter().any(|c| c.is_empty()) && !input_slots.is_empty() {
                continue;
            }

            let total: usize = candidates.iter().map(|c| c.len()).product();
            let combos = total.min(MAX_COMBOS_PER_MODE);

            let mut next_combo = 0;
            while next_combo < combos {
                // Compile one chunk of queries, then plan them in a single
                // batched pass over the shared posting runs.
                let chunk = (combos - next_combo).min(QUERY_BATCH);
                let mut queries = Vec::with_capacity(chunk);
                for combo in next_combo..next_combo + chunk {
                    // Decode the mixed-radix combination index into one
                    // ground term per + slot.
                    let mut pick = Vec::with_capacity(input_slots.len());
                    let mut rem = combo;
                    for c in &candidates {
                        pick.push(&c[rem % c.len()]);
                        rem /= c.len();
                    }

                    // Build the saturation query: + slots ground, -/# slots
                    // are fresh query variables.
                    let mut qargs = Vec::with_capacity(mode.args.len());
                    let mut qvar: VarId = 0;
                    let mut in_pos = 0;
                    for a in &mode.args {
                        match a {
                            ModeArg::Input(_) => {
                                qargs.push(pick[in_pos].clone());
                                in_pos += 1;
                            }
                            ModeArg::Output(_) | ModeArg::Const(_) => {
                                qargs.push(Term::Var(qvar));
                                qvar += 1;
                            }
                        }
                    }
                    queries.push(kb.compile_query(Literal::new(mode.pred, qargs)));
                }
                next_combo += chunk;
                let results =
                    prover.solutions_compiled_batch(&queries, mode.recall as usize, &mut scratch);

                // Consume in combo order; a `break 'depths` below discards
                // the chunk's unconsumed results, so their steps are never
                // added — exactly as if those queries had never run.
                for (solutions, pstats) in results {
                    sat.steps += pstats.steps;

                    for sol in solutions {
                        // Variablize the solution according to the mode.
                        let mut args = Vec::with_capacity(mode.args.len());
                        let mut inputs = Vec::new();
                        let mut outputs = Vec::new();
                        for (slot, ground) in mode.args.iter().zip(sol.args.iter()) {
                            match slot {
                                ModeArg::Input(t) => {
                                    let v = sat.var_for(ground, *t);
                                    inputs.push(v);
                                    args.push(Term::Var(v));
                                }
                                ModeArg::Output(t) => {
                                    let v = sat.var_for(ground, *t);
                                    outputs.push(v);
                                    args.push(Term::Var(v));
                                    sat.add_in_term(ground, *t, &mut fresh);
                                }
                                ModeArg::Const(_) => args.push(ground.clone()),
                            }
                        }
                        let lit = Literal::new(mode.pred, args);
                        if body_seen.insert(lit.clone()) {
                            lits.push(BottomLiteral {
                                lit,
                                inputs,
                                outputs,
                                depth,
                            });
                            if lits.len() >= sat.settings.max_bottom_literals {
                                break 'depths;
                            }
                        }
                    }
                }
            }
        }
        sat.commit_fresh(fresh);
    }

    Some(BottomClause {
        head,
        head_vars,
        lits,
        num_vars: sat.next_var,
        example: example.clone(),
        steps: sat.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::symbol::SymbolTable;

    /// A two-molecule toy world: m1 has a nitrogen double-bonded pair,
    /// m2 is all-carbon.
    fn toy() -> (SymbolTable, KnowledgeBase, ModeSet) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        let c = |n: &str| Term::Sym(t.intern(n));
        let atm = t.intern("atm");
        let bond = t.intern("bond");
        // atm(Mol, Atom, Elem)
        for (m, a, e) in [
            ("m1", "a1", "n"),
            ("m1", "a2", "c"),
            ("m2", "b1", "c"),
            ("m2", "b2", "c"),
        ] {
            kb.assert_fact(Literal::new(atm, vec![c(m), c(a), c(e)]));
        }
        // bond(Mol, A, B, Type)
        kb.assert_fact(Literal::new(
            bond,
            vec![c("m1"), c("a1"), c("a2"), Term::Int(2)],
        ));
        kb.assert_fact(Literal::new(
            bond,
            vec![c("m2"), c("b1"), c("b2"), Term::Int(1)],
        ));
        let modes = ModeSet::parse(
            &t,
            "active(+mol)",
            &[
                (4, "atm(+mol, -atom, #elem)"),
                (4, "bond(+mol, +atom, -atom, #bondtype)"),
            ],
        )
        .expect("toy mode declarations parse");
        (t, kb, modes)
    }

    #[test]
    fn saturates_seed_molecule() {
        let (t, kb, modes) = toy();
        let s = Settings::default();
        let e = Literal::new(t.intern("active"), vec![Term::Sym(t.intern("m1"))]);
        let b = saturate(&kb, &modes, &s, &e).expect("seed matches the head mode");
        // Head is variablized.
        assert_eq!(b.head.args.len(), 1);
        assert!(matches!(b.head.args[0], Term::Var(0)));
        // Body: atm(m1,a1,n), atm(m1,a2,c) at depth 1; bonds at depth 2
        // (atoms only become available after depth 1).
        let atm_count = b
            .lits
            .iter()
            .filter(|l| l.lit.pred == t.intern("atm"))
            .count();
        let bond_count = b
            .lits
            .iter()
            .filter(|l| l.lit.pred == t.intern("bond"))
            .count();
        assert_eq!(atm_count, 2);
        assert_eq!(bond_count, 1, "only m1's bond should appear");
        assert!(b.steps > 0);
        // Producer-before-consumer: every input var of every literal is
        // defined by the head or an earlier literal's output.
        let mut defined: Vec<VarId> = b.head_vars.clone();
        for l in &b.lits {
            for v in &l.inputs {
                assert!(defined.contains(v), "input var {v} used before defined");
            }
            defined.extend(&l.outputs);
        }
    }

    #[test]
    fn hash_slots_stay_ground() {
        let (t, kb, modes) = toy();
        let s = Settings::default();
        let e = Literal::new(t.intern("active"), vec![Term::Sym(t.intern("m1"))]);
        let b = saturate(&kb, &modes, &s, &e).expect("seed matches the head mode");
        for l in &b.lits {
            if l.lit.pred == t.intern("atm") {
                assert!(l.lit.args[2].is_constant(), "elem slot must stay ground");
            }
        }
    }

    #[test]
    fn wrong_predicate_returns_none() {
        let (t, kb, modes) = toy();
        let s = Settings::default();
        let e = Literal::new(t.intern("inactive"), vec![Term::Sym(t.intern("m1"))]);
        assert!(saturate(&kb, &modes, &s, &e).is_none());
    }

    #[test]
    fn depth_one_has_no_bonds() {
        let (t, kb, modes) = toy();
        let s = Settings {
            max_var_depth: 1,
            ..Settings::default()
        };
        let e = Literal::new(t.intern("active"), vec![Term::Sym(t.intern("m1"))]);
        let b = saturate(&kb, &modes, &s, &e).expect("seed matches the head mode");
        assert!(b.lits.iter().all(|l| l.lit.pred != t.intern("bond")));
    }

    #[test]
    fn bottom_cap_is_respected() {
        let (t, kb, modes) = toy();
        let s = Settings {
            max_bottom_literals: 1,
            ..Settings::default()
        };
        let e = Literal::new(t.intern("active"), vec![Term::Sym(t.intern("m1"))]);
        let b = saturate(&kb, &modes, &s, &e).expect("seed matches the head mode");
        assert_eq!(b.lits.len(), 1);
    }

    #[test]
    fn shared_terms_share_variables() {
        let (t, kb, modes) = toy();
        let s = Settings::default();
        let e = Literal::new(t.intern("active"), vec![Term::Sym(t.intern("m1"))]);
        let b = saturate(&kb, &modes, &s, &e).expect("seed matches the head mode");
        // The atom a1 appears both as atm output and bond input: same var.
        let atm_a1_var = b
            .lits
            .iter()
            .find(|l| l.lit.pred == t.intern("atm") && l.lit.args[2] == Term::Sym(t.intern("n")))
            .and_then(|l| l.outputs.first().copied())
            .expect("the nitrogen atm literal has an output var");
        let bond_in = b
            .lits
            .iter()
            .find(|l| l.lit.pred == t.intern("bond"))
            .map(|l| l.inputs[1])
            .expect("the bond literal was saturated");
        assert_eq!(atm_a1_var, bond_in);
    }
}
