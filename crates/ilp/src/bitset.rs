//! A fixed-length bitset used for example coverage.
//!
//! Coverage of a rule over an example set is a pair of bitsets (positive /
//! negative cover). Covering-loop bookkeeping is then cheap set algebra:
//! `live &= !covered`. Stored as `u64` blocks; all binary operations require
//! equal lengths.

/// A fixed-length set of bits.
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Bitset {
    blocks: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates an all-zero bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitset {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset with every bit in `0..len` set.
    pub fn full(len: usize) -> Self {
        let mut b = Self::new(len);
        for i in 0..b.blocks.len() {
            b.blocks[i] = u64::MAX;
        }
        b.trim();
        b
    }

    /// Builds a bitset of `len` bits from set indices.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Self::new(len);
        for i in indices {
            b.set(i);
        }
        b
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears bits beyond `len` in the last block (invariant restorer).
    fn trim(&mut self) {
        let extra = self.blocks.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when at least one bit is set.
    pub fn any(&self) -> bool {
        self.blocks.iter().any(|&b| b != 0)
    }

    /// True when no bit is set.
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// Index of the lowest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        for (bi, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(bi * 64 + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`).
    pub fn difference_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Number of bits set in both.
    pub fn intersection_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True when every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &Bitset) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterator over set-bit indices, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitset[{}/{}]{{", self.count(), self.len)?;
        for (n, i) in self.iter_ones().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            if n >= 16 {
                write!(f, "..")?;
                break;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator produced by [`Bitset::iter_ones`].
pub struct Ones<'a> {
    set: &'a Bitset,
    block: usize,
    bits: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * 64 + tz);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::new(100);
        assert!(!b.get(63));
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(63) && b.get(64) && b.get(99));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn full_respects_length() {
        let b = Bitset::full(70);
        assert_eq!(b.count(), 70);
        let b = Bitset::full(64);
        assert_eq!(b.count(), 64);
        let b = Bitset::full(0);
        assert_eq!(b.count(), 0);
        assert!(b.none());
    }

    #[test]
    fn set_algebra() {
        let a = Bitset::from_indices(10, [1, 3, 5]);
        let b = Bitset::from_indices(10, [3, 5, 7]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![3, 5]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.intersection_count(&b), 2);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn first_and_iteration_order() {
        let b = Bitset::from_indices(200, [150, 3, 64]);
        assert_eq!(b.first(), Some(3));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 64, 150]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = Bitset::new(10);
        b.set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = Bitset::new(10);
        let b = Bitset::new(11);
        a.union_with(&b);
    }
}
