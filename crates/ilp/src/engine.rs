//! The [`IlpEngine`] facade: one bundle of KB + modes + settings used by
//! the sequential baseline, the parallel workers, and the evaluation code.

use crate::bitset::Bitset;
use crate::bottom::{saturate, BottomClause};
use crate::coverage::Coverage;
use crate::examples::Examples;
use crate::mdie::{run_sequential, SequentialOutcome};
use crate::modes::ModeSet;
use crate::refine::{ConstraintStore, RuleShape};
use crate::search::{search_rules, search_rules_guided, SearchGuide, SearchOutcome};
use crate::settings::Settings;
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;

/// An ILP problem instance: background knowledge, language bias, and the
/// search constraints. Cheap to clone (the KB's symbol table is shared).
#[derive(Clone, Debug)]
pub struct IlpEngine {
    /// Background knowledge `B`.
    pub kb: KnowledgeBase,
    /// Language bias (mode declarations).
    pub modes: ModeSet,
    /// Constraints `C`.
    pub settings: Settings,
}

impl IlpEngine {
    /// Bundles an engine. The mode declarations double as an index-tuning
    /// signal: posting lists on argument positions the language bias can
    /// never bind — output slots whose type occurs nowhere else, so no
    /// shared variable can ever reach them bound — are pruned from the KB
    /// (see [`ModeSet::bound_positions`]). Facts asserted *after* this
    /// pruning (late arrivals, incremental loads) respect it: pruned
    /// positions stay pruned and plans remain bit-identical to the
    /// prune-first construction order (pinned by the `late_asserts_*`
    /// regression tests in `crates/logic`).
    pub fn new(mut kb: KnowledgeBase, modes: ModeSet, settings: Settings) -> Self {
        for (key, keep) in modes.bound_positions() {
            kb.retain_indexes(key, &keep);
        }
        IlpEngine {
            kb,
            modes,
            settings,
        }
    }

    /// A clone of this engine with an *empty* KB sharing the symbol table —
    /// the worker-startup shape when the master ships its compiled KB as a
    /// snapshot instead of relying on shared data.
    pub fn with_empty_kb(&self) -> IlpEngine {
        IlpEngine {
            kb: KnowledgeBase::new(self.kb.symbols().clone()),
            modes: self.modes.clone(),
            settings: self.settings.clone(),
        }
    }

    /// Builds ⊥e for a seed example (`build_msh`, Fig. 1 step 5).
    pub fn saturate(&self, example: &Literal) -> Option<BottomClause> {
        saturate(&self.kb, &self.modes, &self.settings, example)
    }

    /// Runs one rule search (`learn_rule`, Fig. 2 / `learn_rule'`, Fig. 7).
    pub fn search(
        &self,
        bottom: &BottomClause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        seeds: &[RuleShape],
    ) -> SearchOutcome {
        search_rules(&self.kb, &self.settings, bottom, examples, live_pos, seeds)
    }

    /// [`IlpEngine::search`] with strategy hooks (lattice slice, seeded
    /// exploration, dead-shape collection, constraint cuts). A default
    /// guide and empty store reduce to the plain search bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    pub fn search_guided(
        &self,
        bottom: &BottomClause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        seeds: &[RuleShape],
        guide: &SearchGuide,
        constraints: Option<&ConstraintStore>,
    ) -> SearchOutcome {
        search_rules_guided(
            &self.kb,
            &self.settings,
            bottom,
            examples,
            live_pos,
            seeds,
            guide,
            constraints,
        )
    }

    /// Evaluates one rule (`evalOnExamples`, Fig. 2 step 6), fanning out
    /// over `settings.eval_threads` when the example set is large enough.
    pub fn evaluate(
        &self,
        rule: &Clause,
        examples: &Examples,
        live_pos: Option<&Bitset>,
        live_neg: Option<&Bitset>,
    ) -> Coverage {
        crate::coverage::evaluate_rule_threads(
            &self.kb,
            self.settings.proof,
            rule,
            examples,
            live_pos,
            live_neg,
            self.settings.eval_threads,
        )
    }

    /// Runs the full sequential covering loop (Fig. 1).
    pub fn run_sequential(&self, examples: &Examples) -> SequentialOutcome {
        run_sequential(&self.kb, &self.modes, &self.settings, examples)
    }

    /// Adds an accepted rule to the background knowledge (the paper's
    /// `mark_covered` asserts `B ∪ {R}`, Fig. 6).
    pub fn assert_rule(&mut self, rule: Clause) {
        self.kb.assert_rule(rule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    #[test]
    fn facade_round_trip() {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=10i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
        }
        let modes = ModeSet::parse(&t, "tgt(+num)", &[(1, "even(+num)")]).unwrap();
        let engine = IlpEngine::new(
            kb,
            modes,
            Settings {
                min_pos: 1,
                ..Settings::default()
            },
        );
        let tgt = t.intern("tgt");
        let ex = Examples::new(
            vec![
                Literal::new(tgt, vec![Term::Int(2)]),
                Literal::new(tgt, vec![Term::Int(4)]),
            ],
            vec![Literal::new(tgt, vec![Term::Int(3)])],
        );
        let bottom = engine.saturate(&ex.pos[0]).unwrap();
        let found = engine.search(&bottom, &ex, None, &[]);
        let best = found.best().unwrap();
        assert_eq!(best.pos, 2);
        assert_eq!(best.neg, 0);
        let clause = best.shape.to_clause(&bottom);
        let cov = engine.evaluate(&clause, &ex, None, None);
        assert_eq!(cov.pos_count(), 2);
        let seq = engine.run_sequential(&ex);
        assert_eq!(seq.theory.len(), 1);
    }
}
