//! Trace containers and encoders: JSONL (streaming, lossless-enough to
//! merge), Chrome `trace_event` JSON (the visual timeline), a textual span
//! tree (deterministic-trace tests), and the Chrome validator behind the
//! CI trace-smoke gate.

use crate::json::{self, JsonValue};
use crate::trace::{Event, Phase, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A finished (or loaded) trace: a flat list of records, canonically
/// sorted by `(virtual time, rank, per-rank sequence)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The records.
    pub events: Vec<Event>,
}

impl Trace {
    /// Restores the canonical ordering. Virtual times are non-negative, so
    /// their bit patterns order like the values; per-rank clocks are
    /// monotone, so this ordering preserves each rank's emission order
    /// (and therefore span nesting).
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.vt.to_bits(), e.rank, e.seq));
    }

    /// Merges several traces (e.g. the master's plus one per worker
    /// process) into one canonical timeline.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut events = Vec::new();
        for t in traces {
            events.extend(t.events);
        }
        let mut merged = Trace { events };
        merged.sort();
        merged
    }

    /// Renders the whole trace as JSONL (one record per line, canonical
    /// order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            jsonl_line(ev, &mut out);
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace (as written by [`Trace::to_jsonl`] or the
    /// session's streaming writer) and restores canonical order. Numeric
    /// field types normalize on reload (JSON has one number type); the
    /// rendered output is unaffected.
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            events.push(event_from_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        let mut t = Trace { events };
        t.sort();
        Ok(t)
    }

    /// Renders the Chrome `trace_event` JSON (load in `chrome://tracing`
    /// or Perfetto). Timestamps are **virtual** microseconds and wall time
    /// is deliberately omitted, so this encoding is byte-identical across
    /// same-seed runs.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("{\"name\":");
            json::escape_into(&ev.name, &mut out);
            let ph = match ev.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let _ = write!(
                out,
                ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{}",
                fmt_f64(ev.vt * 1e6),
                ev.rank
            );
            if ev.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":");
                args_json(&ev.args, &mut out);
            }
            out.push('}');
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders an indented textual span tree per rank on the virtual-time
    /// axis — the compact deterministic artifact the trace tests compare
    /// byte-for-byte. Instant events print inline at their nesting depth.
    pub fn span_tree(&self) -> String {
        let mut out = String::new();
        let mut ranks: Vec<u32> = self.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for rank in ranks {
            let _ = writeln!(out, "rank {rank}");
            let mut depth = 0usize;
            for ev in self.events.iter().filter(|e| e.rank == rank) {
                match ev.phase {
                    Phase::Begin => {
                        indent(&mut out, depth + 1);
                        let _ = write!(out, "{} @{}", ev.name, fmt_f64(ev.vt));
                        args_text(&ev.args, &mut out);
                        out.push('\n');
                        depth += 1;
                    }
                    Phase::End => {
                        depth = depth.saturating_sub(1);
                        indent(&mut out, depth + 1);
                        let _ = write!(out, "end {} @{}", ev.name, fmt_f64(ev.vt));
                        args_text(&ev.args, &mut out);
                        out.push('\n');
                    }
                    Phase::Instant => {
                        indent(&mut out, depth + 1);
                        let _ = write!(out, "* {} @{}", ev.name, fmt_f64(ev.vt));
                        args_text(&ev.args, &mut out);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn args_text(args: &[(Cow<'static, str>, Value)], out: &mut String) {
    for (k, v) in args {
        let _ = write!(out, " {k}=");
        value_text(v, out);
    }
}

fn value_text(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
    }
}

/// Deterministic f64 rendering: Rust's shortest-roundtrip `Display`, with
/// non-finite values (never produced by the virtual clock, but a field
/// could carry one) pinned to JSON-safe spellings.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "\"NaN\"".to_owned()
    } else if x > 0.0 {
        "\"inf\"".to_owned()
    } else {
        "\"-inf\"".to_owned()
    }
}

fn value_json(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => json::escape_into(s, out),
    }
}

fn args_json(args: &[(Cow<'static, str>, Value)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(k, out);
        out.push(':');
        value_json(v, out);
    }
    out.push('}');
}

/// Writes one record as a single JSONL object into `out` (no trailing
/// newline). Both clocks are carried: `vt` (deterministic) and `wall_ns`
/// (diagnostic).
pub fn jsonl_line(ev: &Event, out: &mut String) {
    let ph = match ev.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    };
    let _ = write!(
        out,
        "{{\"rank\":{},\"seq\":{},\"vt\":{},\"wall_ns\":{},\"ph\":\"{ph}\",\"name\":",
        ev.rank,
        ev.seq,
        fmt_f64(ev.vt),
        ev.wall_ns
    );
    json::escape_into(&ev.name, out);
    if !ev.args.is_empty() {
        out.push_str(",\"args\":");
        args_json(&ev.args, out);
    }
    out.push('}');
}

fn event_from_json(v: &JsonValue) -> Result<Event, String> {
    let num = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric `{key}`"))
    };
    let phase = match v.get("ph").and_then(JsonValue::as_str) {
        Some("B") => Phase::Begin,
        Some("E") => Phase::End,
        Some("i") => Phase::Instant,
        other => return Err(format!("bad phase {other:?}")),
    };
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("missing `name`")?
        .to_owned();
    let mut args = Vec::new();
    if let Some(JsonValue::Obj(m)) = v.get("args") {
        for (k, val) in m {
            args.push((Cow::Owned(k.clone()), json_to_value(val)));
        }
    }
    Ok(Event {
        rank: num("rank")? as u32,
        seq: num("seq")? as u64,
        vt: num("vt")?,
        wall_ns: num("wall_ns")? as u64,
        phase,
        name: Cow::Owned(name),
        args,
    })
}

fn json_to_value(v: &JsonValue) -> Value {
    match v {
        JsonValue::Bool(b) => Value::Bool(*b),
        JsonValue::Str(s) => Value::Str(Cow::Owned(s.clone())),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 {
                Value::U64(*n as u64)
            } else if n.fract() == 0.0 && *n < 0.0 && *n >= -((1u64 << 53) as f64) {
                Value::I64(*n as i64)
            } else {
                Value::F64(*n)
            }
        }
        other => Value::Str(Cow::Owned(format!("{other:?}"))),
    }
}

/// Validates a Chrome `trace_event` JSON document: it must parse, every
/// `E` must close the most recent `B` of the *same name on the same tid*,
/// per-tid timestamps must be non-decreasing, and no span may be left
/// open. Returns the number of complete spans.
pub fn validate_chrome(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        if let Some(prev) = last_ts.get(&tid) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: tid {tid} timestamp went backwards ({ts} < {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        match ev.get("ph").and_then(JsonValue::as_str) {
            Some("B") => stacks.entry(tid).or_default().push(name.to_owned()),
            Some("E") => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: orphan E `{name}` on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E `{name}` closes B `{open}` on tid {tid}"
                    ));
                }
                spans += 1;
            }
            Some("i") => {}
            other => return Err(format!("event {i}: bad phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span `{open}` left open on tid {tid}"));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, seq: u64, vt: f64, phase: Phase, name: &'static str) -> Event {
        Event {
            rank,
            seq,
            vt,
            wall_ns: 0,
            phase,
            name: Cow::Borrowed(name),
            args: vec![],
        }
    }

    #[test]
    fn merge_interleaves_on_virtual_time() {
        let a = Trace {
            events: vec![
                ev(0, 0, 0.0, Phase::Begin, "run"),
                ev(0, 1, 3.0, Phase::End, "run"),
            ],
        };
        let b = Trace {
            events: vec![
                ev(1, 0, 1.0, Phase::Begin, "stage"),
                ev(1, 1, 2.0, Phase::End, "stage"),
            ],
        };
        let m = Trace::merge([a, b]);
        let vts: Vec<f64> = m.events.iter().map(|e| e.vt).collect();
        assert_eq!(vts, [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(validate_chrome(&m.chrome_json()), Ok(2));
    }

    #[test]
    fn validator_rejects_orphan_end() {
        let t = Trace {
            events: vec![ev(0, 0, 0.0, Phase::End, "oops")],
        };
        let err = validate_chrome(&t.chrome_json()).unwrap_err();
        assert!(err.contains("orphan E"), "{err}");
    }

    #[test]
    fn validator_rejects_unclosed_span() {
        let t = Trace {
            events: vec![ev(0, 0, 0.0, Phase::Begin, "open")],
        };
        let err = validate_chrome(&t.chrome_json()).unwrap_err();
        assert!(err.contains("left open"), "{err}");
    }

    #[test]
    fn validator_rejects_mismatched_close() {
        let t = Trace {
            events: vec![
                ev(0, 0, 0.0, Phase::Begin, "a"),
                ev(0, 1, 1.0, Phase::End, "b"),
            ],
        };
        let err = validate_chrome(&t.chrome_json()).unwrap_err();
        assert!(err.contains("closes B"), "{err}");
    }

    #[test]
    fn span_tree_is_indented_and_deterministic() {
        let mut t = Trace {
            events: vec![
                ev(0, 0, 0.0, Phase::Begin, "epoch"),
                ev(0, 1, 0.5, Phase::Instant, "note"),
                ev(0, 2, 1.0, Phase::End, "epoch"),
                ev(1, 0, 0.25, Phase::Begin, "stage"),
                ev(1, 1, 0.75, Phase::End, "stage"),
            ],
        };
        t.sort();
        let tree = t.span_tree();
        assert_eq!(
            tree,
            "rank 0\n  epoch @0\n    * note @0.5\n  end epoch @1\nrank 1\n  stage @0.25\n  end stage @0.75\n"
        );
        assert_eq!(tree, t.clone().span_tree());
    }

    #[test]
    fn jsonl_roundtrip_preserves_rendering() {
        let t = Trace {
            events: vec![Event {
                rank: 2,
                seq: 9,
                vt: 1.25,
                wall_ns: 777,
                phase: Phase::Instant,
                name: Cow::Borrowed("warn"),
                args: vec![
                    (Cow::Borrowed("dropped"), Value::U64(3)),
                    (Cow::Borrowed("msg"), Value::Str(Cow::Borrowed("a\"b"))),
                ],
            }],
        };
        let back = Trace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back.chrome_json(), t.chrome_json());
        assert_eq!(back.to_jsonl(), t.to_jsonl());
    }
}
